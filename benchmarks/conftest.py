"""Benchmark-suite helpers.

Every bench (a) times the relevant pipeline stage with pytest-benchmark,
(b) asserts the paper's stated property (shape, not absolute numbers), and
(c) writes the regenerated figure/table as text into benchmarks/results/
so EXPERIMENTS.md can reference concrete artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_result():
    """save_result(name, text): persist a regenerated figure/table."""
    RESULTS.mkdir(exist_ok=True)

    def save(name: str, text: str) -> pathlib.Path:
        path = RESULTS / f"{name}.txt"
        path.write_text(text if text.endswith("\n") else text + "\n")
        return path

    return save
