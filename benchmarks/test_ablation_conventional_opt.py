"""Ablation — conventional optimizations compose with the translation.

The paper's conclusion positions dataflow graphs as an intermediate
representation for parallelizing compilers that should also support
"conventional optimizations".  Here the classic trio (constant folding,
constant propagation, dead assignment elimination) runs on the CFG before
any schema, shrinking both the graphs and the executed work.
"""

from repro.bench import CORPUS, format_table
from repro.dfg import graph_stats
from repro.interp import run_ast
from repro.lang import parse
from repro.translate import compile_program, simulate

# constant-heavy workload where the optimizations have real material
CONST_HEAVY = """
base := 4 * 4;
scale := base / 2;
t := 99;
t := scale;
i := 0; s := 0;
while i < base do {
  s := s + i * scale;
  i := i + 1;
}
if 2 > 3 then { never := 1; never := never + 1; }
r := s + t;
"""


def test_ablation_conventional_opt(benchmark, save_result):
    def run_all():
        rows = []
        cases = [("const_heavy", CONST_HEAVY)] + [
            (wl.name, wl.source)
            for wl in CORPUS
            if wl.name in ("fib", "prime_count", "matmul")
        ]
        for name, src in cases:
            ref = run_ast(parse(src))
            plain = compile_program(src, schema="memory_elim")
            opt = compile_program(src, schema="memory_elim", optimize=True)
            rp = simulate(plain)
            ro = simulate(opt)
            assert rp.memory == ref and ro.memory == ref, name
            rows.append(
                [
                    name,
                    graph_stats(plain.graph).nodes,
                    graph_stats(opt.graph).nodes,
                    rp.metrics.operations,
                    ro.metrics.operations,
                    rp.metrics.cycles,
                    ro.metrics.cycles,
                ]
            )
        return rows

    rows = benchmark(run_all)
    save_result(
        "ablation_conventional_opt",
        format_table(
            [
                "workload",
                "nodes",
                "nodes(opt)",
                "ops",
                "ops(opt)",
                "cycles",
                "cycles(opt)",
            ],
            rows,
        ),
    )
    for name, n0, n1, o0, o1, c0, c1 in rows:
        # never larger, never more work (cycles can wobble a few ticks from
        # constant-trigger timing; static size and executed ops are the
        # meaningful measures)
        assert n1 <= n0 and o1 <= o0, name
    # the constant-heavy case shrinks substantially
    ch = rows[0]
    assert ch[2] < ch[1] * 0.8  # nodes
    assert ch[4] < ch[3] * 0.85  # executed operations
