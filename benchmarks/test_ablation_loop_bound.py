"""Ablation — loop control policies (Section 3 leaves loop entry/exit as
black boxes: "There are many other possible approaches to dataflow loop
control").

Compares k-bounded iteration throttling: k=1 is the strict lockstep
reading of "takes the complete set of access tokens as input and produces
this set again as output"; unbounded is our default per-channel tag
advance.  Measured on a cross-iteration-parallel loop: cycles vs. token
store occupancy.
"""

from repro.bench import format_table
from repro.machine import MachineConfig
from repro.translate import compile_program, simulate

LOOP = """
array a[64];
i := 0;
s: i := i + 1;
   a[i] := i * 2;
   if i < 40 then goto s;
"""


def test_ablation_loop_bound(benchmark, save_result):
    def sweep():
        rows = []
        base = None
        for k in (1, 2, 4, 8, None):
            cp = compile_program(
                LOOP, schema="memory_elim", parallelize_arrays=True
            )
            res = simulate(
                cp, None, MachineConfig(loop_bound=k, memory_latency=20)
            )
            if base is None:
                base = res.memory
            assert res.memory == base
            rows.append(
                [
                    "inf" if k is None else k,
                    res.metrics.cycles,
                    res.metrics.peak_tokens_in_flight,
                    res.metrics.peak_waiting_frames,
                    f"{res.metrics.avg_parallelism:.2f}",
                ]
            )
        return rows

    rows = benchmark(sweep)
    save_result(
        "ablation_loop_bound",
        format_table(
            ["k", "cycles", "peak tokens", "peak frames", "S_avg"], rows
        ),
    )
    cycles = [r[1] for r in rows]
    tokens = [r[2] for r in rows]
    # more concurrency budget -> fewer cycles, more resident tokens
    assert cycles[0] > cycles[-1]
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))
    assert tokens[0] <= tokens[-1]
