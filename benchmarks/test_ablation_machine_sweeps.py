"""Ablation — machine-parameter sweeps.

Two studies the paper's introduction motivates ("a parallel model of
execution ... ideally suited for measuring the extent to which
parallelization techniques can expose parallelism"):

* **memory latency sweep**: how each schema's critical path scales with
  split-phase memory latency — token-per-variable schemas hide latency
  across independent chains, memory elimination is insensitive;
* **PE scaling**: speedup of a finite machine versus width — saturating at
  the program's available parallelism.
"""

from repro.bench import format_table, workload
from repro.machine import MachineConfig
from repro.translate import compile_program, simulate


def test_ablation_latency_sweep(benchmark, save_result):
    wl = workload("prime_count")
    schemas = ["schema1", "schema2_opt", "memory_elim"]

    def sweep():
        rows = []
        for lat in (1, 4, 16):
            cells = [lat]
            for schema in schemas:
                cp = compile_program(wl.source, schema=schema)
                res = simulate(cp, {}, MachineConfig(memory_latency=lat))
                cells.append(res.metrics.cycles)
            rows.append(cells)
        return rows

    rows = benchmark(sweep)
    save_result(
        "ablation_latency_sweep",
        format_table(["mem latency"] + schemas, rows),
    )
    # memory elimination is latency-insensitive (no memory ops at all)
    elim = [r[3] for r in rows]
    assert max(elim) == min(elim)
    # schema1 degrades faster than schema2_opt with latency (serial chain)
    s1_growth = rows[-1][1] - rows[0][1]
    s2_growth = rows[-1][2] - rows[0][2]
    assert s1_growth > s2_growth


def test_ablation_pe_scaling(benchmark, save_result):
    wl = workload("matmul")
    cp = compile_program(wl.source, schema="memory_elim")

    def sweep():
        rows = []
        for pes in (1, 2, 4, 8, 16, None):
            res = simulate(cp, {}, MachineConfig(num_pes=pes))
            rows.append(
                [
                    "inf" if pes is None else pes,
                    res.metrics.cycles,
                    f"{res.metrics.avg_parallelism:.2f}",
                ]
            )
        return rows

    rows = benchmark(sweep)
    save_result(
        "ablation_pe_scaling",
        format_table(["PEs", "cycles", "S_avg"], rows),
    )
    cycles = [r[1] for r in rows]
    # monotone non-increasing, saturating at the idealized critical path
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))
    assert cycles[-2] == cycles[-1] or cycles[-2] <= cycles[0]
    # width-1 machine executes exactly one op per cycle
    one_pe = simulate(cp, {}, MachineConfig(num_pes=1))
    assert one_pe.metrics.peak_parallelism == 1
    assert one_pe.metrics.cycles >= one_pe.metrics.operations
