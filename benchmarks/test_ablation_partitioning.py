"""Ablation — instruction partitioning and network locality.

The paper's abstraction promise: "details such as the number of
processors, communication network topology, distribution of data
structures, etc. are abstracted away".  This ablation un-abstracts them:
a finite-PE machine with per-PE issue and a hop cost for tokens crossing
PE boundaries, under three static partitionings.  Results never change
(confluence); only time does — quantifying what the abstraction hides.
"""

from repro.bench import format_table, workload
from repro.machine import MachineConfig
from repro.translate import compile_program, simulate


def test_ablation_partitioning(benchmark, save_result):
    wl = workload("prime_count")

    def sweep():
        rows = []
        base = None
        for net in (0, 2, 8):
            for part in ("block", "round_robin", "random"):
                cp = compile_program(wl.source, schema="memory_elim")
                res = simulate(
                    cp,
                    None,
                    MachineConfig(
                        num_pes=4,
                        network_latency=net,
                        partition=part,
                        seed=11,
                    ),
                )
                if base is None:
                    base = res.memory
                assert res.memory == base
                rows.append([net, part, res.metrics.cycles])
        return rows

    rows = benchmark(sweep)
    save_result(
        "ablation_partitioning",
        format_table(["net latency", "partition", "cycles"], rows),
    )

    def cyc(net, part):
        return next(r[2] for r in rows if r[0] == net and r[1] == part)

    # with no hop cost, partitioning is irrelevant
    assert cyc(0, "block") == cyc(0, "round_robin") == cyc(0, "random")
    # with hops, locality matters and grows with latency
    assert cyc(8, "block") < cyc(8, "round_robin")
    assert cyc(8, "round_robin") > cyc(2, "round_robin")
