"""Ablation — dataflow graphs vs. program dependence graphs (Section 7).

The conclusions argue dataflow arcs encode both dependence information and
continuations.  Two measurable corollaries:

* the anti/output dependences of the PDG (constraints that exist only
  because locations are multiply assigned) are enforced *dynamically* by
  the access-token threading of Schemas 1-3 — and vanish statically under
  memory elimination, together with the loads/stores;
* every PDG flow dependence of a scalar program corresponds to an actual
  value arc of the memory-eliminated dataflow graph's execution.
"""

from repro.analysis import build_pdg, memory_order_constraints
from repro.analysis.pdg import DepKind
from repro.bench import CORPUS, format_table
from repro.cfg import build_cfg
from repro.dfg import graph_stats
from repro.lang import parse
from repro.translate import compile_program


def test_ablation_pdg_comparison(benchmark, save_result):
    def run_corpus():
        rows = []
        for wl in CORPUS:
            if wl.has_aliasing() or wl.uses_arrays():
                continue
            cfg = build_cfg(parse(wl.source))
            pdg = build_pdg(cfg)
            counts = pdg.count()
            base = graph_stats(
                compile_program(wl.source, schema="schema2_opt").graph
            )
            elim = graph_stats(
                compile_program(wl.source, schema="memory_elim").graph
            )
            rows.append(
                [
                    wl.name,
                    counts["flow"],
                    counts["anti"] + counts["output"],
                    counts["control"],
                    base.memory_ops,
                    elim.memory_ops,
                    elim.value_arcs,
                ]
            )
        return rows

    rows = benchmark(run_corpus)
    save_result(
        "ablation_pdg",
        format_table(
            [
                "workload",
                "flow-deps",
                "anti+output",
                "control-deps",
                "memops(s2opt)",
                "memops(elim)",
                "value-arcs(elim)",
            ],
            rows,
        ),
    )
    for name, flow, mem_order, ctrl, m_base, m_elim, varc in rows:
        # memory elimination removes every scalar memory operation, i.e.
        # every structure the anti/output dependences constrained
        assert m_elim == 0, name
        # flow dependences survive as value arcs (plus control plumbing)
        assert varc >= 1, name


def test_ablation_memory_order_removed_by_ssa(benchmark):
    """Programs with heavy reassignment have many anti/output deps; a
    single-assignment rewrite of the same computation has none — the
    Section 6.1 'more functional' claim, stated on the PDG."""
    multi = "x := a; x := x + b; x := x * c; r := x;"
    single = "x1 := a; x2 := x1 + b; x3 := x2 * c; r := x3;"

    def build_both():
        return (
            build_pdg(build_cfg(parse(multi))),
            build_pdg(build_cfg(parse(single))),
        )

    pdg_multi, pdg_single = benchmark(build_both)
    assert memory_order_constraints(pdg_multi) > 0
    assert memory_order_constraints(pdg_single) == 0
    # the flow dependences are isomorphic in count
    assert len(pdg_multi.of_kind(DepKind.FLOW)) == len(
        pdg_single.of_kind(DepKind.FLOW)
    )
