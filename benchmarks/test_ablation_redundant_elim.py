"""Ablation — iterative redundant switch elimination (the 'earlier version
of this paper' algorithm, Section 4) vs. the direct construction.

The paper replaced the iterative approach because the direct construction
is simpler *and* subsumes the loop-bypass generalization.  Measured here:
on purely conditional structure the two converge to the same switch
counts; on loopy programs the iterative pass leaves bypass switches
behind.
"""

from repro.bench import CORPUS, format_table
from repro.dfg import OpKind
from repro.interp import run_ast
from repro.lang import parse
from repro.translate import compile_program, simulate
from repro.translate.redundant_elim import (
    eliminate_redundant_switches,
    sweep_dead_value_nodes,
)


def test_ablation_redundant_elim(benchmark, save_result):
    def run_corpus():
        rows = []
        for wl in CORPUS:
            if wl.has_aliasing():
                continue
            inputs = wl.inputs[0]
            ref = run_ast(parse(wl.source), inputs)

            base = compile_program(wl.source, schema="schema2")
            s_before = base.graph.count(OpKind.SWITCH)
            removed = eliminate_redundant_switches(base.graph)
            sweep_dead_value_nodes(base.graph)
            assert simulate(base, inputs).memory == ref, wl.name
            s_iter = base.graph.count(OpKind.SWITCH)

            opt = compile_program(wl.source, schema="schema2_opt")
            s_direct = opt.graph.count(OpKind.SWITCH)
            rows.append([wl.name, s_before, s_iter, s_direct, removed])
        return rows

    rows = benchmark(run_corpus)
    save_result(
        "ablation_redundant_elim",
        format_table(
            ["workload", "schema2", "iterative", "direct", "removed"], rows
        ),
    )
    for name, s2, it, direct, removed in rows:
        # iterative never beats the direct construction
        assert direct <= it <= s2, name
    # and on at least one loopy program it is strictly worse (no bypass)
    assert any(direct < it for _, _, it, direct, _ in rows)
