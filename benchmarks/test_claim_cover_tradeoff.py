"""T-C — Section 5 claim: "Choices of cover can provide a tradeoff between
parallelism and synchronization".

Measures synch operations executed vs. critical path for the three
canonical covers on workloads mixing aliased clusters with independent
unaliased chains.
"""

from repro.bench import format_table
from repro.machine import MachineConfig
from repro.translate import compile_program, simulate

MIXED = """
alias (p, q);
p := 1;
a := a + 1; a := a * 2; a := a + 3; a := a * 4;
b := b + 5; b := b * 6; b := b + 7; b := b * 8;
q := p + 2;
"""

HEAVY_ALIAS = """
alias (x, z); alias (y, z);
x := x + 1;
y := y + 2;
z := x + y;
x := z * 2;
y := z * 3;
"""


def test_claim_cover_tradeoff(benchmark, save_result):
    config = MachineConfig(memory_latency=10)

    def run_all():
        rows = []
        for name, src in (("mixed", MIXED), ("heavy_alias", HEAVY_ALIAS)):
            mems = set()
            for cover in ("singletons", "alias_classes", "whole"):
                cp = compile_program(src, schema="schema3", cover=cover)
                res = simulate(cp, config=config)
                mems.add(tuple(sorted(res.memory.items())))
                rows.append(
                    [
                        name,
                        cover,
                        len(cp.streams),
                        res.metrics.synch_ops,
                        res.metrics.cycles,
                        f"{res.metrics.avg_parallelism:.2f}",
                    ]
                )
            assert len(mems) == 1, name
        return rows

    rows = benchmark(run_all)
    save_result(
        "claim_cover_tradeoff",
        format_table(
            ["workload", "cover", "tokens", "synch", "cycles", "S_avg"], rows
        ),
    )

    def row(wl, cover):
        return next(r for r in rows if r[0] == wl and r[1] == cover)

    # the whole cover never synchronizes but serializes the independent
    # chains; singletons pay synchs and win cycles on the mixed workload
    assert row("mixed", "whole")[3] == 0
    assert row("mixed", "singletons")[3] > 0
    assert row("mixed", "singletons")[4] < row("mixed", "whole")[4]
    # alias_classes sits between: no synchs (classes collapse), still
    # parallel on the unaliased chains
    assert row("mixed", "alias_classes")[4] <= row("mixed", "whole")[4]


def test_claim_no_single_best_cover(benchmark, save_result):
    """"in general there will be no one cover that achieves both": on the
    heavily aliased workload the synch overhead of singletons buys nothing
    (all ops share z), while on the mixed workload it wins."""
    config = MachineConfig(memory_latency=10)

    def run():
        out = {}
        for name, src in (("mixed", MIXED), ("heavy_alias", HEAVY_ALIAS)):
            per = {}
            for cover in ("singletons", "whole"):
                res = simulate(
                    compile_program(src, schema="schema3", cover=cover),
                    config=config,
                )
                per[cover] = res.metrics
            out[name] = per
        return out

    metrics = benchmark(run)
    mixed = metrics["mixed"]
    heavy = metrics["heavy_alias"]
    mixed_gain = mixed["whole"].cycles - mixed["singletons"].cycles
    heavy_gain = heavy["whole"].cycles - heavy["singletons"].cycles
    save_result(
        "claim_no_single_best_cover",
        "cycles(whole) - cycles(singletons):\n"
        f"  mixed workload:       {mixed_gain:+d} (fine cover wins)\n"
        f"  heavily aliased:      {heavy_gain:+d} (little or nothing to win;"
        f" singletons still pay {heavy['singletons'].synch_ops} synchs)\n",
    )
    assert mixed_gain > 0
    assert heavy["singletons"].synch_ops > 0
    assert mixed_gain > heavy_gain
