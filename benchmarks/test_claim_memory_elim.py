"""T-D — Section 6.1 claims: memory operations on unaliased scalars can be
"eliminated completely"; the transformation is "similar in effect to ...
conversion to static single assignment form" with merges as implicit phis.
"""

from repro.analysis import construct_ssa
from repro.analysis.ssa import prune_dead_phis
from repro.bench import CORPUS, format_table
from repro.cfg import build_cfg
from repro.dfg import OpKind, graph_stats
from repro.lang import parse
from repro.translate import compile_program, simulate


def test_claim_memory_elimination(benchmark, save_result):
    def run_corpus():
        rows = []
        for wl in CORPUS:
            if wl.uses_arrays() or wl.has_aliasing():
                continue  # scalar-only claim
            inputs = wl.inputs[0]
            base = compile_program(wl.source, schema="schema2_opt")
            me = compile_program(wl.source, schema="memory_elim")
            rb = simulate(base, inputs)
            rm = simulate(me, inputs)
            assert rb.memory == rm.memory, wl.name
            rows.append(
                [
                    wl.name,
                    graph_stats(base.graph).memory_ops,
                    graph_stats(me.graph).memory_ops,
                    rb.metrics.cycles,
                    rm.metrics.cycles,
                ]
            )
        return rows

    rows = benchmark(run_corpus)
    save_result(
        "claim_memory_elim",
        format_table(
            ["workload", "memops(base)", "memops(elim)", "cyc(base)", "cyc(elim)"],
            rows,
        ),
    )
    for name, mb, mm, cb, cm in rows:
        assert mm == 0, f"{name}: scalar memory ops fully eliminated"
        assert mb > 0
        assert cm <= cb, name


def test_claim_merges_cover_ssa_phis(benchmark, save_result):
    """Every pruned-SSA phi has a corresponding value merge in the
    memory-eliminated graph (on acyclic programs; loop header phis are
    subsumed by LOOP_ENTRY channels)."""
    acyclic = [
        wl for wl in CORPUS if wl.name in ("figure_9", "branchy")
    ]

    def run():
        out = []
        for wl in acyclic:
            cp = compile_program(wl.source, schema="memory_elim")
            ssa = prune_dead_phis(construct_ssa(build_cfg(parse(wl.source))))
            out.append((wl.name, cp, ssa))
        return out

    results = benchmark(run)
    lines = ["workload        ssa-phis  value-merges"]
    for name, cp, ssa in results:
        merge_tags = {n.tag for n in cp.graph.of_kind(OpKind.MERGE)}
        phis = [
            (nid, p.var) for nid, ps in ssa.phis.items() for p in ps
        ]
        for nid, var in phis:
            assert f"cfg{nid}:{var}" in merge_tags, (name, nid, var)
        lines.append(
            f"  {name:14s} {len(phis):7d} {cp.graph.count(OpKind.MERGE):10d}"
        )
    save_result("claim_ssa_connection", "\n".join(lines))
