"""T-E — Section 6.2 claims: store-to-load forwarding and maximal read
parallelization ("By parallelizing maximal sequences of load operations,
read parallelism is maximized").
"""

from repro.bench import format_table
from repro.machine import MachineConfig
from repro.translate import compile_program, simulate


def _wide_read(n: int) -> str:
    vars_ = " + ".join(f"r{i}" for i in range(n))
    return f"z := {vars_};"


def test_claim_read_latency_flattens(benchmark, save_result):
    """n serialized loads cost ~n*L; replicated loads cost ~L."""
    config = MachineConfig(memory_latency=20)

    def sweep():
        rows = []
        for n in (2, 4, 8, 16):
            src = _wide_read(n)
            base = simulate(
                compile_program(src, schema="schema1"), {}, config
            )
            par = simulate(
                compile_program(src, schema="schema1", parallel_reads=True),
                {},
                config,
            )
            assert base.memory == par.memory
            rows.append([n, base.metrics.cycles, par.metrics.cycles])
        return rows

    rows = benchmark(sweep)
    save_result(
        "claim_read_parallel",
        format_table(["loads", "chained cycles", "replicated cycles"], rows),
    )
    # chained grows linearly with n; replicated stays nearly flat
    (n0, b0, p0), (n1, b1, p1) = rows[0], rows[-1]
    assert b1 - b0 > 0.8 * (n1 - n0) * 20
    assert p1 - p0 < 3 * (n1 - n0)


def test_claim_store_forwarding(benchmark, save_result):
    """x := e; y := x; z := x — forwarding removes the reloads and drops
    the dependent chain's latency."""
    src = "x := a * b; y := x + 1; z := x + 2;"
    config = MachineConfig(memory_latency=20)

    def run_both():
        base = simulate(compile_program(src, schema="schema1"), {}, config)
        fwd_cp = compile_program(src, schema="schema1", forward_stores=True)
        fwd = simulate(fwd_cp, {}, config)
        return base, fwd, fwd_cp

    base, fwd, fwd_cp = benchmark(run_both)
    assert base.memory == fwd.memory
    assert fwd_cp.stores_forwarded >= 1
    assert fwd.metrics.memory_ops < base.metrics.memory_ops
    assert fwd.metrics.cycles < base.metrics.cycles
    save_result(
        "claim_store_forwarding",
        f"{src}\n  loads+stores executed: {base.metrics.memory_ops} -> "
        f"{fwd.metrics.memory_ops}; cycles {base.metrics.cycles} -> "
        f"{fwd.metrics.cycles}\n",
    )
