"""T-B — the cross-schema ordering the paper's development implies:

* parallelism (S_avg on the idealized machine): schema1 <= schema2-family,
  memory elimination dominates everything;
* static switch counts: optimized <= schema2;
* every schema computes the reference result (checked inside the harness).

This is the paper's evaluation table that never existed — measured over
the whole corpus.
"""

from repro.bench import CORPUS, compare_schemas, format_table
from repro.bench.harness import HEADER


def test_claim_schema_ordering(benchmark, save_result):
    schemas = ["schema1", "schema2", "schema2_opt", "memory_elim"]

    def run_corpus():
        rows = []
        for wl in CORPUS:
            if wl.has_aliasing():
                continue
            rows.extend(compare_schemas(wl, schemas))
        return rows

    rows = benchmark(run_corpus)
    save_result(
        "claim_schema_ordering",
        format_table(HEADER, [r.cells() for r in rows]),
    )

    by = {}
    for r in rows:
        by.setdefault(r.workload, {})[r.schema] = r
    for wl, per in by.items():
        # switches: optimized never more than schema2
        assert per["schema2_opt"].switches <= per["schema2"].switches, wl
        # cycles: schema2 beats schema1 on loopy programs; memory
        # elimination dominates all memory-based schemas
        assert per["memory_elim"].cycles <= per["schema2_opt"].cycles, wl
        assert (
            per["memory_elim"].cycles <= per["schema1"].cycles
        ), wl

    # aggregate parallelism ordering s1 <= s2 <= memelim
    def total(schema, attr):
        return sum(getattr(per[schema], attr) for per in by.values())

    assert total("schema2", "cycles") < total("schema1", "cycles")
    assert total("schema2_opt", "cycles") <= total("schema2", "cycles")
    assert total("memory_elim", "cycles") < total("schema2_opt", "cycles")
