"""T-A — Section 3 claim: "the size of the dataflow graph is O(E·V)".

Sweeps program size (E) and variable count (V) independently and fits the
measured Schema 2 arc counts against E·V.
"""

from repro.dfg import graph_stats
from repro.lang import parse
from repro.translate import compile_program


def _program(n_stmts: int, n_vars: int) -> str:
    lines = []
    for i in range(n_stmts):
        v = f"v{i % n_vars}"
        w = f"v{(i + 1) % n_vars}"
        if i % 4 == 3:
            lines.append(
                f"if {v} < {i} then {{ {w} := {w} + 1; }}"
            )
        else:
            lines.append(f"{v} := {w} + {i};")
    # reference every variable at least once
    for j in range(n_vars):
        lines.append(f"v{j} := v{j};")
    return "\n".join(lines)


def test_claim_size_is_O_EV(benchmark, save_result):
    def sweep():
        rows = []
        for n_stmts, n_vars in [
            (8, 2), (16, 2), (32, 2), (64, 2),
            (16, 4), (16, 8), (16, 16),
            (32, 8), (64, 16),
        ]:
            cp = compile_program(_program(n_stmts, n_vars), schema="schema2")
            E = cp.cfg.num_edges()
            V = len(cp.streams)
            arcs = graph_stats(cp.graph).arcs
            rows.append((n_stmts, n_vars, E, V, arcs, arcs / (E * V)))
        return rows

    rows = benchmark(sweep)
    lines = ["stmts  vars     E    V   arcs  arcs/(E*V)"]
    for n_stmts, n_vars, E, V, arcs, ratio in rows:
        lines.append(
            f"{n_stmts:5d} {n_vars:5d} {E:5d} {V:4d} {arcs:6d}  {ratio:8.2f}"
        )
    save_result("claim_size_scaling", "\n".join(lines))

    # the ratio arcs/(E*V) stays bounded by a small constant across the
    # sweep — the O(E*V) claim
    ratios = [r[-1] for r in rows]
    assert max(ratios) < 4.0
    assert max(ratios) / min(ratios) < 6.0


def test_claim_optimized_is_smaller(benchmark, save_result):
    """The optimized construction only removes operators, so its graphs
    are never larger than Schema 2's."""

    def sweep():
        out = []
        for n_stmts, n_vars in [(16, 4), (32, 8), (64, 8)]:
            src = _program(n_stmts, n_vars)
            base = graph_stats(compile_program(src, schema="schema2").graph)
            opt = graph_stats(
                compile_program(src, schema="schema2_opt").graph
            )
            out.append((n_stmts, n_vars, base, opt))
        return out

    results = benchmark(sweep)
    lines = ["stmts vars   schema2(nodes/arcs)  optimized(nodes/arcs)"]
    for n_stmts, n_vars, base, opt in results:
        assert opt.nodes <= base.nodes
        assert opt.arcs <= base.arcs
        assert opt.switches <= base.switches
        lines.append(
            f"{n_stmts:5d} {n_vars:4d}   {base.nodes:6d}/{base.arcs:<6d}"
            f"      {opt.nodes:6d}/{opt.arcs:<6d}"
        )
    save_result("claim_optimized_smaller", "\n".join(lines))
