"""T-F — Section 7 / related-work claim: unlike Veen & van den Born's
structured-only compiler, this construction handles unstructured control
flow — jumps into loop regions, multi-exit loops, and (with code copying)
irreducible graphs — while still avoiding redundant switches.
"""

from repro.bench.programs import MULTI_EXIT_LOOP, UNSTRUCTURED
from repro.dfg import OpKind
from repro.interp import run_ast
from repro.lang import parse
from repro.translate import compile_program, simulate

IRREDUCIBLE = """
k := 0;
if c == 0 then goto a;
goto b;
a: x := x + 1;
   k := k + 1;
   if k < 6 then goto b;
   goto out;
b: y := y + 1;
   k := k + 1;
   if k < 6 then goto a;
out: r := x * 100 + y;
"""


def test_claim_unstructured_programs(benchmark, save_result):
    cases = [
        ("jump_into_loop", UNSTRUCTURED.source, {}),
        ("multi_exit_loop", MULTI_EXIT_LOOP.source, {}),
        ("irreducible_c0", IRREDUCIBLE, {"c": 0}),
        ("irreducible_c1", IRREDUCIBLE, {"c": 1}),
    ]

    def run_all():
        out = []
        for name, src, inputs in cases:
            cp = compile_program(src, schema="schema2_opt")
            res = simulate(cp, inputs)
            out.append((name, cp, res, run_ast(parse(src), inputs)))
        return out

    results = benchmark(run_all)
    lines = ["case              switches  cycles  result==reference"]
    for name, cp, res, ref in results:
        assert res.memory == ref, name
        lines.append(
            f"  {name:18s} {cp.graph.count(OpKind.SWITCH):6d} "
            f"{res.metrics.cycles:7d}  yes"
        )
    save_result("claim_unstructured", "\n".join(lines))


def test_claim_bypass_on_unstructured(benchmark):
    """Even with goto spaghetti, unneeded tokens bypass: a variable used
    only before and after the tangle crosses it on one arc."""
    src = """
    q := 1;
    goto mid;
    top: x := x + 10;
    mid: x := x + 1;
    if x < 25 then goto top;
    q := q + 1;
    """
    cp = benchmark(compile_program, src, schema="schema2_opt")
    les = cp.graph.of_kind(OpKind.LOOP_ENTRY)
    assert les and all("q" not in le.channel_labels for le in les)
    res = simulate(cp)
    assert res.memory["q"] == 2
