"""Compile throughput — monolithic vs region-partitioned vs
warm-incremental, recorded as ``BENCH_compile.json``.

Three configurations over progen giant programs (one top-level
statement per loop nest, the shape ``GenKnobs.giant`` produces):

* **monolithic** — the ordinary whole-program pipeline
  (``region_compile="off"``).  Whole-program compilation is superlinear
  in statement count (global analyses touch every variable at every
  statement), which is exactly what the region compiler removes.
* **region cold** (``--jobs 4``) — ``region_compile="on"`` through a
  fresh :class:`GraphCache` with a 4-worker region pool attached.  On a
  single-core runner the compiler's cost gate keeps region compiles
  serial (a pool with no parallelism to buy only adds IPC); the JSON
  records whether the pool engaged.
* **warm incremental** — one statement of the program is edited and the
  edited program compiled against the warm cache: every untouched
  region is a cache hit, so the compile re-does one region plus the
  linear parse/plan/stitch work.

Monolithic compile times are measured directly at the ``MONO_POINTS``
calibration scales and power-law extrapolated (log-log least squares
over the measured points) beyond the largest one, flagged
``"extrapolated": true`` in the JSON.  The baseline is near-quadratic
— cost scales with statements x declared variables, and the giant
shape adds ~1.5 variables per statement — so at 10k statements one
monolithic compile is tens of minutes and tens of GB on a 1-CPU
runner; that infeasibility is the point of the region compiler, and
chasing the measurement would burn half a CI hour confirming a fit
three calibration points already pin.

The headline gates (asserted at 10k statements, the ROADMAP's target
scale): region-cold throughput >= 5x monolithic, warm-incremental
>= 20x.  Measured margins run two orders of magnitude past both
gates, so extrapolation error in the baseline cannot decide them.
``BENCH_COMPILE_50K=1`` opts into the full run behind the committed
artifact: the 4k calibration point (~25 min of monolithic compile on
a 1-CPU runner) and the 50k leg (gen + parse + ~3000 region compiles
+ stitch of a ~1.2M-node graph, a few minutes).
"""

import dataclasses
import json
import math
import os
import pathlib
import time

import pytest

from repro.engine import GraphCache, make_pool
from repro.lang import parse
from repro.lang.ast_nodes import IntLit
from repro.lang.pretty import pretty
from repro.translate import CompileOptions, compile_program
from repro.validate.progen import GenKnobs, generate

RESULTS = pathlib.Path(__file__).parent / "results"

#: BENCH_COMPILE_50K=1 selects the full (tens of minutes) run that
#: produced the committed artifact: a third monolithic calibration
#: point at 4k (~25 min alone on a 1-CPU runner) and the 50k leg.
#: The default run keeps CI's non-blocking benchmarks job short.
_FULL = bool(os.environ.get("BENCH_COMPILE_50K"))
SCALES = [1_000, 10_000] + ([50_000] if _FULL else [])
#: scales the monolithic baseline is measured at; the power-law fit
#: over these extrapolates it to the larger scales
MONO_POINTS = [1_000, 2_000] + ([4_000] if _FULL else [])
SCHEMA = "schema2_opt"
JOBS = 4
SEED = 0


def _giant(n_stmts: int) -> str:
    """Progen giant program, normalized by ``pretty`` with an explicit
    ``var`` line: the declaration pins the variable order, so a 1-line
    edit below cannot reorder region interface headers (which would
    conservatively invalidate every region's cache key)."""
    gp = generate(SEED, GenKnobs.giant(n_stmts=n_stmts))
    return pretty(parse(gp.source).with_declared_variables())


def _edit_one_statement(src: str) -> str:
    """Rewrite one unlabelled assignment's expression to a constant —
    the 1-line edit of the incremental story (labels and the variable
    set are untouched, so the partition and interfaces are stable)."""
    prog = parse(src)
    idx = next(
        i
        for i in range(len(prog.body))
        if prog.body[i].label is None
        and getattr(prog.body[i], "expr", None) is not None
    )
    prog.body[idx] = dataclasses.replace(
        prog.body[idx], expr=IntLit(value=idx + 40)
    )
    return pretty(prog)


def _fit_power_law(points: list[tuple[int, float]]) -> tuple[float, float]:
    """Least-squares fit of ``t = a * n**p`` over measured (n, t)."""
    xs = [math.log(n) for n, _ in points]
    ys = [math.log(t) for _, t in points]
    n = len(points)
    mx, my = sum(xs) / n, sum(ys) / n
    denom = sum((x - mx) ** 2 for x in xs) or 1.0
    p = sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / denom
    a = math.exp(my - p * mx)
    return a, p


@pytest.mark.benchmark(group="compile")
def test_compile_throughput(save_result):
    mono_opts = CompileOptions(schema=SCHEMA, region_compile="off")

    # calibrate the monolithic baseline while its cost permits
    mono_points: list[tuple[int, float]] = []
    for n in MONO_POINTS:
        t0 = time.perf_counter()
        compile_program(_giant(n), options=mono_opts)
        mono_points.append((n, time.perf_counter() - t0))
    fit_a, fit_p = _fit_power_law(mono_points)
    mono_measured = dict(mono_points)

    legs = []
    for n in SCALES:
        src = _giant(n)
        body_stmts = len(parse(src).body)
        opts = CompileOptions(schema=SCHEMA, region_compile="on")

        mono_extrapolated = n not in mono_measured
        mono_s = mono_measured.get(n, fit_a * n**fit_p)

        # region-partitioned cold compile, 4 region-pool workers
        cache = GraphCache(capacity=8192)
        pool = make_pool(JOBS)
        try:
            cache.region_pool = pool
            t0 = time.perf_counter()
            cp, hit = cache.lookup(src, opts)
            cold_s = time.perf_counter() - t0
        finally:
            pool.terminate()
            pool.join()
        assert not hit
        cert = cp.pass_log[0]
        assert cert.pass_name == "region_stitch"
        n_regions = cert.metrics["regions"]

        # warm incremental: a 1-line edit against the warm cache
        edited = _edit_one_statement(src)
        t0 = time.perf_counter()
        ecp, hit = cache.lookup(edited, opts)
        warm_s = time.perf_counter() - t0
        assert not hit  # new whole-program key
        hits = ecp.pass_log[0].metrics["region_cache_hits"]
        assert hits == n_regions - 1  # exactly one region recompiled

        legs.append(
            {
                "n_stmts": n,
                "top_level_stmts": body_stmts,
                "regions": n_regions,
                "monolithic": {
                    "seconds": mono_s,
                    "stmts_per_sec": n / mono_s,
                    "extrapolated": mono_extrapolated,
                },
                "region_cold": {
                    "seconds": cold_s,
                    "stmts_per_sec": n / cold_s,
                    "jobs": JOBS,
                    "pool_engaged": (os.cpu_count() or 1) >= 2,
                    "speedup_vs_monolithic": mono_s / cold_s,
                },
                "warm_incremental": {
                    "seconds": warm_s,
                    "stmts_per_sec": n / warm_s,
                    "region_cache_hits": hits,
                    "speedup_vs_monolithic": mono_s / warm_s,
                },
            }
        )

    record = {
        "schema": SCHEMA,
        "seed": SEED,
        "jobs": JOBS,
        "cpu_count": os.cpu_count(),
        "monolithic_calibration": {
            "points": [
                {"n_stmts": n, "seconds": t} for n, t in mono_points
            ],
            "power_law": {"a": fit_a, "p": fit_p},
        },
        "scales": legs,
    }
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / "BENCH_compile.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    lines = [
        f"progen giant programs, schema {SCHEMA}, seed {SEED}, "
        f"--jobs {JOBS}, runner: {os.cpu_count()} CPU(s)",
        "",
        f"{'stmts':>7} {'mono s':>9} {'cold s':>8} {'warm s':>8} "
        f"{'cold x':>7} {'warm x':>7}",
    ]
    for leg in legs:
        mono = leg["monolithic"]
        mark = "~" if mono["extrapolated"] else " "
        lines.append(
            f"{leg['n_stmts']:>7} {mono['seconds']:>8.2f}{mark} "
            f"{leg['region_cold']['seconds']:>8.2f} "
            f"{leg['warm_incremental']['seconds']:>8.2f} "
            f"{leg['region_cold']['speedup_vs_monolithic']:>6.1f}x "
            f"{leg['warm_incremental']['speedup_vs_monolithic']:>6.1f}x"
        )
    lines += ["", "~ = power-law extrapolated monolithic baseline",
              "full points recorded in BENCH_compile.json"]
    save_result("compile_throughput", "\n".join(lines))

    # the ROADMAP's target scale carries the acceptance gates
    ten_k = next(leg for leg in legs if leg["n_stmts"] == 10_000)
    assert ten_k["region_cold"]["speedup_vs_monolithic"] >= 5.0
    assert ten_k["warm_incremental"]["speedup_vs_monolithic"] >= 20.0
