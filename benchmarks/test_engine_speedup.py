"""Engine speedup — the batch engine versus the seed-style workflow.

Three ways to run the identical full corpus × schema sweep:

* **baseline** — what every bench did before the engine existed: compile
  each job from source, simulate with the per-cycle reference loop
  (``sim_mode="step"``), serially;
* **engine serial** — warm `GraphCache` + the event-driven fast path
  (``sim_mode="auto"``), still one process;
* **engine pool** — the same warm-cache sweep fanned across
  ``run_batch(..., pool_size=4)`` workers sharing a disk cache tier.

All three must produce identical final memories (they are the same jobs);
the engine configurations must be measurably faster than the baseline.
"""

import time

import pytest

from repro.bench import corpus_jobs, format_table
from repro.engine import GraphCache, run_batch
from repro.machine import MachineConfig
from repro.translate import compile_program, simulate


def _baseline(jobs):
    """The pre-engine workflow: fresh compiles + per-cycle stepping."""
    out = []
    for job in jobs:
        cp = compile_program(job.source, options=job.options)
        out.append(simulate(cp, job.inputs, MachineConfig(sim_mode="step")))
    return out


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


@pytest.mark.benchmark(group="engine")
def test_engine_speedup(tmp_path, save_result):
    jobs = corpus_jobs()
    cache = GraphCache()
    disk_dir = tmp_path / "graphs"

    base_s, base = _timed(lambda: _baseline(jobs))

    # warm both cache tiers, then measure the steady state the experiment
    # suite actually runs in (every sweep after the first)
    run_batch(jobs, pool_size=1, cache=cache)
    serial_s, serial = _timed(lambda: run_batch(jobs, pool_size=1, cache=cache))

    run_batch(jobs, pool_size=4, cache_dir=disk_dir)
    pool_s, pooled = _timed(lambda: run_batch(jobs, pool_size=4, cache_dir=disk_dir))

    for ref, br_s, br_p in zip(base, serial, pooled):
        assert ref.memory == br_s.result.memory == br_p.result.memory
        assert ref.metrics.operations == br_s.result.metrics.operations
        assert br_s.result.metrics.cycles == br_p.result.metrics.cycles
    assert all(r.cache_hit for r in serial)
    assert all(r.cache_hit for r in pooled)

    rows = [
        ["baseline (fresh compile, per-cycle, serial)", f"{base_s:.3f}", "1.00x"],
        [
            "engine (warm cache, fast path, serial)",
            f"{serial_s:.3f}",
            f"{base_s / serial_s:.2f}x",
        ],
        [
            "engine (warm disk cache, fast path, --jobs 4)",
            f"{pool_s:.3f}",
            f"{base_s / pool_s:.2f}x",
        ],
    ]
    save_result(
        "engine_speedup",
        f"full corpus sweep, {len(jobs)} (program, schema) jobs\n"
        + format_table(["configuration", "wall s", "speedup"], rows)
        + "\npool timing includes spawning 4 worker processes; the pool wins"
        "\ngrow with job cost (repro bench --repeat N amortizes the spawn)",
    )
    # the engine must beat the seed workflow; the margin is asserted loosely
    # because CI runners vary, but locally it is >2x serial and more pooled
    assert serial_s < base_s
