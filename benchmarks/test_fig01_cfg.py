"""F1 — Figure 1: the control-flow graph of the running example.

Regenerates the CFG and checks its inventory against the figure: start,
the labeled join ``l`` (two predecessors), the two assignments, the fork
``x < 5`` (True back to ``l``, False to end), and the start->end convention
edge.  Benchmarks CFG construction.
"""

from repro.bench.programs import RUNNING_EXAMPLE
from repro.cfg import NodeKind, build_cfg, cfg_to_dot
from repro.lang import parse


def test_fig01_running_example_cfg(benchmark, save_result):
    prog = parse(RUNNING_EXAMPLE.source)
    cfg = benchmark(build_cfg, prog)

    kinds = {}
    for n in cfg.nodes.values():
        kinds[n.kind] = kinds.get(n.kind, 0) + 1
    assert kinds == {
        NodeKind.START: 1,
        NodeKind.END: 1,
        NodeKind.ASSIGN: 3,
        NodeKind.FORK: 1,
        NodeKind.JOIN: 1,
    }

    join = next(n for n in cfg.nodes.values() if n.kind is NodeKind.JOIN)
    assert join.label == "l"
    assert len(cfg.pred_ids(join.id)) == 2

    fork = next(n for n in cfg.nodes.values() if n.kind is NodeKind.FORK)
    dirs = {e.direction: e.dst for e in cfg.out_edges(fork.id)}
    assert dirs[True] == join.id
    assert dirs[False] == cfg.exit

    # the convention edge makes start a fork
    start_dirs = {e.direction: e.dst for e in cfg.out_edges(cfg.entry)}
    assert start_dirs[False] == cfg.exit

    save_result("fig01_cfg", cfg_to_dot(cfg, "figure1"))
