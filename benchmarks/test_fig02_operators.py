"""F2 — Figure 2: the switch, merge, and synch operators.

Micro-benchmarks the machine on graphs exercising each operator's firing
rule and asserts the rules themselves: switch routes by its boolean input,
merge fires per token, synch waits for all inputs.
"""

from repro.dfg import DFGraph, OpKind, Seed
from repro.machine import DataMemory, MachineConfig, simulate_graph


def _switch_graph(ctrl: int) -> DFGraph:
    g = DFGraph()
    start = g.add(OpKind.START, seeds=(Seed("value", "d"),))
    end = g.add(OpKind.END, returns=("r",))
    c = g.add(OpKind.CONST, value=ctrl)
    sw = g.add(OpKind.SWITCH)
    m = g.add(OpKind.MERGE, nports=2)
    neg = g.add(OpKind.UNOP, op="-")
    g.connect((start.id, 0), sw.id, 0)
    g.connect((start.id, 0), c.id, 0)
    g.connect((c.id, 0), sw.id, 1)
    g.connect((sw.id, 0), m.id, 0)
    g.connect((sw.id, 1), neg.id, 0)
    g.connect((neg.id, 0), m.id, 1)
    g.connect((m.id, 0), end.id, 0)
    return g


def test_fig02_switch_and_merge(benchmark, save_result):
    def run_both():
        t = simulate_graph(_switch_graph(1), DataMemory(scalars={"d": 7}))
        f = simulate_graph(_switch_graph(0), DataMemory(scalars={"d": 7}))
        return t, f

    t, f = benchmark(run_both)
    assert t.end_values["r"] == 7  # True output taken
    assert f.end_values["r"] == -7  # False output taken
    save_result(
        "fig02_operators",
        "switch(d=7, ctrl=1) -> true output -> r = 7\n"
        "switch(d=7, ctrl=0) -> false output -> negated -> r = -7\n"
        "merge: fired once per arriving token in both runs\n",
    )


def test_fig02_synch_waits_for_all(benchmark):
    def build_and_run(n_inputs: int, slow_port: int):
        g = DFGraph()
        seeds = tuple(Seed("access", f"s{i}") for i in range(n_inputs))
        start = g.add(OpKind.START, seeds=seeds)
        end = g.add(OpKind.END, returns=(None,))
        sy = g.add(OpKind.SYNCH, nports=n_inputs)
        for i in range(n_inputs):
            if i == slow_port:
                slow = g.add(OpKind.SYNCH, nports=1, latency=30)
                g.connect((start.id, i), slow.id, 0, is_access=True)
                g.connect((slow.id, 0), sy.id, i, is_access=True)
            else:
                g.connect((start.id, i), sy.id, i, is_access=True)
        g.connect((sy.id, 0), end.id, 0, is_access=True)
        return simulate_graph(g)

    res = benchmark(build_and_run, 8, 3)
    # the synch could not fire before the slow input's 30-cycle latency
    assert res.metrics.cycles > 30
