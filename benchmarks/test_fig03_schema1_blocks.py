"""F3/F4 — Figures 3-4: the Schema 1 statement schema and its read block.

Checks the per-statement operator inventory: one LOAD per distinct
variable read (chained sequentially on the single access token — the read
block of Figure 4), one STORE for the target, a switch per fork, a merge
per join.  Benchmarks Schema 1 translation.
"""

from repro.dfg import OpKind
from repro.translate import compile_program


def test_fig03_assignment_block(benchmark, save_result):
    src = "z := x + y * x;"
    cp = benchmark(compile_program, src, schema="schema1")
    g = cp.graph
    loads = g.of_kind(OpKind.LOAD)
    stores = g.of_kind(OpKind.STORE)
    # one load per distinct referenced variable (x once despite two uses)
    assert sorted(n.var for n in loads) == ["x", "y"]
    assert [n.var for n in stores] == ["z"]
    # Figure 4: reads chain sequentially on the access token
    chain_links = sum(
        1
        for ld in loads
        for a in g.consumers(ld.id, 1)
        if g.node(a.dst).kind in (OpKind.LOAD, OpKind.STORE)
    )
    assert chain_links == 2  # load -> load -> store
    save_result(
        "fig03_schema1_block",
        "z := x + y * x  under Schema 1:\n"
        f"  loads: {sorted(n.var for n in loads)} (sequentially chained)\n"
        f"  store: z\n"
        f"  access arcs: {sum(1 for a in g.arcs() if a.is_access)}\n",
    )


def test_fig03_fork_block(benchmark):
    src = "l: if x + 1 < y then goto l;"
    cp = benchmark(compile_program, src, schema="schema1")
    g = cp.graph
    assert g.count(OpKind.SWITCH) == 1
    assert g.count(OpKind.MERGE) == 1  # the labeled join
    sw = g.of_kind(OpKind.SWITCH)[0]
    # switch control input comes from the predicate's comparison
    ctrl = g.producer(sw.id, 1)
    assert g.node(ctrl.src).op == "<"


def test_fig04_read_block_sequentialism(benchmark):
    """All memory operations of one statement execute in sequence: with N
    reads at latency L, the statement costs at least N*L cycles."""
    from repro.machine import MachineConfig
    from repro.translate import simulate

    src = "z := a + b + c + d;"
    cp = compile_program(src, schema="schema1")

    def run():
        return simulate(cp, {}, MachineConfig(memory_latency=10))

    res = benchmark(run)
    assert res.metrics.cycles >= 4 * 10  # 4 loads + 1 store, serialized
