"""F5 — Figure 5: the full Schema 1 translation of the running example.

Regenerates the graph, checks the figure's inventory, and demonstrates the
schema's defining property — statements execute one at a time (the access
token is a dataflow program counter) — plus footnote 4: cycles need no
loop control under Schema 1.
"""

from repro.bench.programs import RUNNING_EXAMPLE
from repro.dfg import OpKind, dfg_to_dot, graph_stats
from repro.machine import MachineConfig
from repro.translate import compile_program, simulate


def test_fig05_schema1_translation(benchmark, save_result):
    cp = benchmark(compile_program, RUNNING_EXAMPLE.source, schema="schema1")
    g = cp.graph
    st = graph_stats(g)
    # inventory: loads for x (y:=x+1 and x:=x+1 and the fork read it),
    # stores for x twice and y once, one switch, one merge, no loop control
    assert st.loads == 3
    assert st.stores == 3
    assert st.switches == 1
    assert st.merges == 1
    assert st.loop_controls == 0
    save_result("fig05_schema1_graph", dfg_to_dot(g, "figure5"))


def test_fig05_sequential_execution(benchmark, save_result):
    cp = compile_program(RUNNING_EXAMPLE.source, schema="schema1")

    def run():
        return simulate(cp, {}, MachineConfig(trace=True))

    res = benchmark(run)
    assert res.memory["x"] == 5 and res.memory["y"] == 5
    assert res.metrics.clashes == 0  # footnote 4: cycles are fine

    # memory operations never overlap: strictly increasing firing cycles
    mem_cycles = [
        cyc
        for cyc, _, desc, _ in res.trace
        if desc.split()[0] in ("load", "store")
    ]
    assert mem_cycles == sorted(mem_cycles)
    assert len(mem_cycles) == len(set(mem_cycles))
    save_result(
        "fig05_sequentialism",
        f"{len(mem_cycles)} memory operations, all at distinct cycles "
        f"(strictly serialized)\ncritical path {res.metrics.cycles} cycles, "
        f"avg parallelism {res.metrics.avg_parallelism:.2f}\n",
    )
