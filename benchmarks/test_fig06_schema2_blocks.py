"""F6/F7 — Figures 6-7: the Schema 2 statement schema and read block.

Per-variable access tokens: reads of distinct variables load in parallel
(each on its own token), unreferenced variables flow straight through, and
a read-modify-write chains load before store on that variable's token.
"""

from repro.dfg import OpKind
from repro.machine import MachineConfig
from repro.translate import compile_program, simulate


def test_fig06_reads_are_parallel_across_variables(benchmark, save_result):
    """Figure 7: a+b+c+d loads fire concurrently (contrast Figure 4)."""
    src = "z := a + b + c + d;"
    cp = compile_program(src, schema="schema2")

    def run():
        return simulate(cp, {}, MachineConfig(memory_latency=10, trace=True))

    res = benchmark(run)
    load_cycles = [
        cyc for cyc, _, desc, _ in res.trace if desc.startswith("load")
    ]
    assert len(load_cycles) == 4
    assert len(set(load_cycles)) == 1, "all four loads fire the same cycle"
    save_result(
        "fig06_parallel_reads",
        f"z := a + b + c + d under Schema 2:\n"
        f"  4 loads all fired at cycle {load_cycles[0]} "
        "(each on its own access token)\n",
    )


def test_fig06_read_modify_write_chains(benchmark):
    """x := x + 1 must load x before storing x on the same token."""
    src = "x := x + 1;"
    cp = benchmark(compile_program, src, schema="schema2")
    g = cp.graph
    (load,) = g.of_kind(OpKind.LOAD)
    (store,) = g.of_kind(OpKind.STORE)
    # the load's access output reaches the store's access input
    assert any(
        a.dst == store.id and a.dst_port == 1
        for a in g.consumers(load.id, 1)
    )


def test_fig06_unreferenced_tokens_flow_through(benchmark):
    """Tokens for variables a statement does not use take a direct arc to
    the next statement: no extra operators, same arc count per variable."""
    src = "a := 1; b := 2;"
    cp = benchmark(compile_program, src, schema="schema2")
    g = cp.graph
    # a's token passes b's statement untouched: no consumer of a's store
    # completion is a memory operation on another variable
    (store_a,) = [n for n in g.of_kind(OpKind.STORE) if n.var == "a"]
    for arc in g.consumers(store_a.id, 0):
        dst = g.node(arc.dst)
        assert not (
            dst.kind in (OpKind.LOAD, OpKind.STORE) and dst.var != "a"
        )
    res = simulate(cp)
    assert res.memory["a"] == 1 and res.memory["b"] == 2


def test_fig06_independent_statements_overlap(benchmark, save_result):
    """The Schema 2 headline: independent memory chains proceed in
    parallel; makespan is max, not sum."""
    src = "a := a + 1; b := b + 1; c := c + 1;"
    config = MachineConfig(memory_latency=10)
    s1 = simulate(compile_program(src, schema="schema1"), {}, config)
    s2 = simulate(compile_program(src, schema="schema2"), {}, config)

    def run():
        return simulate(compile_program(src, schema="schema2"), {}, config)

    benchmark(run)
    # three overlapped chains: close to 1/3 the makespan, allow slack for
    # the fixed pipeline fill
    assert s2.metrics.cycles < s1.metrics.cycles * 0.6
    save_result(
        "fig06_overlap",
        "three independent read-modify-writes, memory latency 10:\n"
        f"  Schema 1 (single token):   {s1.metrics.cycles} cycles\n"
        f"  Schema 2 (token/variable): {s2.metrics.cycles} cycles\n",
    )
