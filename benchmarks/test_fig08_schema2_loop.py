"""F8 — Figure 8: Schema 2 on the running example — loop control.

Three demonstrations from Section 3's discussion of the figure:

* operations on x proceed independently of operations on y;
* WITHOUT loop entry/exit, the load L can fire again before the increment
  I consumes its input: same-tag token clash ("the graph does not specify
  a meaningful dataflow computation");
* WITH loop control, every iteration gets a fresh tag context and the
  graph executes cleanly.
"""

from repro.bench.programs import RUNNING_EXAMPLE
from repro.dfg import OpKind, dfg_to_dot
from repro.machine import MachineConfig
from repro.translate import compile_program, simulate


def test_fig08_graph_inventory(benchmark, save_result):
    cp = benchmark(compile_program, RUNNING_EXAMPLE.source, schema="schema2")
    g = cp.graph
    assert g.count(OpKind.LOOP_ENTRY) == 1
    assert g.count(OpKind.LOOP_EXIT) == 1
    assert g.count(OpKind.SWITCH) == 2  # the fork switches both x and y
    le = g.of_kind(OpKind.LOOP_ENTRY)[0]
    assert set(le.channel_labels) == {"x", "y"}
    save_result("fig08_schema2_graph", dfg_to_dot(g, "figure8"))


def test_fig08_x_and_y_chains_overlap(benchmark):
    cp = compile_program(RUNNING_EXAMPLE.source, schema="schema2")

    LAT = 10

    def run():
        return simulate(cp, {}, MachineConfig(trace=True, memory_latency=LAT))

    res = benchmark(run)
    # split-phase ops occupy [t, t+LAT); an x-op and a y-op must be in
    # flight simultaneously at some point
    intervals = {}
    for cyc, _, desc, _ in res.trace:
        kind, var = (desc.split() + [""])[:2]
        if kind in ("load", "store"):
            intervals.setdefault(var, []).append((cyc, cyc + LAT))
    overlap = any(
        xs < ye and ys < xe
        for (xs, xe) in intervals["x"]
        for (ys, ye) in intervals["y"]
    )
    assert overlap, "an x-op and a y-op are in flight simultaneously"


def test_fig08_without_loop_control_clashes(benchmark, save_result):
    """Delay y's store so x's chain races ahead into iteration k+1 while
    iteration k's token still occupies the y-side adder."""

    def build_and_run():
        cp = compile_program(
            RUNNING_EXAMPLE.source, schema="schema2", insert_loops=False
        )
        for node in cp.graph.nodes.values():
            if node.kind is OpKind.STORE and node.var == "y":
                node.latency = 60
        return simulate(
            cp, None, MachineConfig(on_clash="record", memory_latency=8)
        )

    res = benchmark(build_and_run)
    assert res.metrics.clashes > 0
    save_result(
        "fig08_no_loop_control",
        f"Schema 2 without loop entry/exit, slow y-store:\n"
        f"  {res.metrics.clashes} same-tag token clash(es) recorded — the\n"
        "  graph does not specify a meaningful dataflow computation "
        "(Section 3)\n",
    )


def test_fig08_with_loop_control_clean(benchmark, save_result):
    def build_and_run():
        cp = compile_program(RUNNING_EXAMPLE.source, schema="schema2")
        for node in cp.graph.nodes.values():
            if node.kind is OpKind.STORE and node.var == "y":
                node.latency = 60
        return simulate(cp, None, MachineConfig(memory_latency=8))

    res = benchmark(build_and_run)
    assert res.metrics.clashes == 0
    assert res.memory["x"] == 5 and res.memory["y"] == 5
    save_result(
        "fig08_with_loop_control",
        "same graph with LOOP_ENTRY/LOOP_EXIT tag management:\n"
        f"  0 clashes, correct result {dict(sorted(res.memory.items()))}, "
        f"{res.metrics.cycles} cycles\n",
    )
