"""F9 — Figure 9: restrictive sequential ordering from redundant switches.

The program: x is not referenced inside the if-then-else.  Schema 2 routes
access_x through a switch at the fork anyway; the optimized construction
sends it straight from ``x := x + 1`` to ``x := 0``, so the second
assignment no longer waits for the predicate.
"""

from repro.bench.programs import FIGURE_9
from repro.dfg import OpKind, dfg_to_dot
from repro.machine import MachineConfig
from repro.translate import compile_program, simulate

SRC = FIGURE_9.source


def test_fig09_switch_counts(benchmark, save_result):
    base = compile_program(SRC, schema="schema2")
    opt = benchmark(compile_program, SRC, schema="schema2_opt")
    assert base.graph.count(OpKind.SWITCH) == 3  # w, x, y
    assert opt.graph.count(OpKind.SWITCH) == 1  # y only
    save_result(
        "fig09_switch_counts",
        "figure 9 program (x unused inside the conditional):\n"
        f"  Schema 2 switches:  {base.graph.count(OpKind.SWITCH)} "
        "(w, x, y all routed through the fork)\n"
        f"  optimized switches: {opt.graph.count(OpKind.SWITCH)} "
        "(y only; w read-and-forwarded; x bypasses)\n",
    )
    save_result("fig09_optimized_graph", dfg_to_dot(opt.graph, "figure9b_opt"))


def test_fig09_no_order_between_predicate_and_x(benchmark, save_result):
    """"...a more parallel program with no order imposed between the
    calculation of the predicate w = 0 and the execution of the second
    assignment to x"."""

    def measure(schema):
        cp = compile_program(SRC, schema=schema)
        for n in cp.graph.nodes.values():
            if n.kind is OpKind.BINOP and n.op == "==":
                n.latency = 50  # slow predicate
        res = simulate(cp, {"w": 0}, MachineConfig(trace=True))
        x_stores = [
            cyc for cyc, _, desc, _ in res.trace if desc == "store x"
        ]
        return x_stores[-1], res

    base_cycle, base_res = measure("schema2")
    opt_cycle, opt_res = benchmark(measure, "schema2_opt")
    assert base_res.memory == opt_res.memory
    assert opt_cycle < 50 < base_cycle
    save_result(
        "fig09_ordering",
        "second store to x fires at cycle (predicate takes 50 cycles):\n"
        f"  Schema 2:  cycle {base_cycle} (waits for the switch)\n"
        f"  optimized: cycle {opt_cycle} (independent of the predicate)\n",
    )
