"""F10 — Figure 10: the switch placement algorithm.

Validates the worklist algorithm (CD+ of the reference sites) against the
brute-force Definition 2/3 path-search oracle over the corpus and random
graphs — the executable content of Theorem 1 — and benchmarks it.
"""

from repro.analysis.control_dep import needs_switch_brute_force
from repro.analysis.dominance import postdominator_tree
from repro.bench.generators import random_program
from repro.bench.programs import CORPUS
from repro.cfg import build_cfg, decompose
from repro.lang import parse
from repro.translate import streams_for, switch_placement


def test_fig10_algorithm_matches_oracle(benchmark, save_result):
    cases = []
    for wl in CORPUS:
        prog = parse(wl.source)
        if prog.subs:
            from repro.lang import expand_subroutines
            prog, _ = expand_subroutines(prog)
        cfg, _ = decompose(build_cfg(prog))
        streams = streams_for(prog, "schema3")
        cases.append((wl.name, cfg, streams))
    for seed in range(6):
        prog = random_program(seed)
        cfg, _ = decompose(build_cfg(prog))
        cases.append((f"random{seed}", cfg, streams_for(prog, "schema2")))

    def run_all():
        return [
            (name, switch_placement(cfg, streams))
            for name, cfg, streams in cases
        ]

    results = benchmark(run_all)

    lines = ["program            forks needing switches (algorithm == oracle)"]
    for (name, placement), (_, cfg, streams) in zip(results, cases):
        pdom = postdominator_tree(cfg)
        total = 0
        for s in streams:
            for f in (n for n in cfg.nodes if cfg.is_fork(n)):
                oracle = any(
                    needs_switch_brute_force(cfg, f, v, pdom)
                    for v in s.governs
                )
                assert (f in placement[s.name]) == oracle, (name, f, s.name)
                total += f in placement[s.name]
        lines.append(f"  {name:20s} {total}")
    save_result("fig10_placement", "\n".join(lines))


def test_fig10_scaling(benchmark):
    """The worklist is near-linear; brute force is quadratic.  Check the
    algorithm stays fast on a larger graph."""
    body = "".join(
        f"if v{i % 4} < {i} then {{ v{(i + 1) % 4} := v{i % 4} + {i}; }}\n"
        for i in range(60)
    )
    prog = parse(body)
    cfg, _ = decompose(build_cfg(prog))
    streams = streams_for(prog, "schema2")
    placement = benchmark(switch_placement, cfg, streams)
    assert all(isinstance(v, frozenset) for v in placement.values())
