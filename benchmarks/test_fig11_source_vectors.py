"""F11 — Figure 11: the source-vector computation.

Checks the paper's stated invariants of the computed SVs over the corpus
(single source at referencing statements and needed switches; merges only
where a token has more than one source; every token reaches end) and
benchmarks the full optimized construction it drives.
"""

from repro.bench.programs import CORPUS
from repro.cfg import NodeKind, build_cfg, decompose
from repro.dfg import OpKind
from repro.lang import parse
from repro.translate import (
    compile_program,
    compute_source_vectors,
    streams_for,
    switch_placement,
)
from repro.translate.optimized import close_carried_streams


def test_fig11_sv_invariants(benchmark, save_result):
    def compute_all():
        out = []
        for wl in CORPUS:
            prog = parse(wl.source)
            if prog.subs:
                from repro.lang import expand_subroutines
                prog, _ = expand_subroutines(prog)
            cfg, loops = decompose(build_cfg(prog))
            streams = streams_for(prog, "schema3")
            cfg, placement = close_carried_streams(cfg, streams, loops)
            out.append(
                (wl.name, cfg, streams,
                 compute_source_vectors(cfg, streams, placement, loops))
            )
        return out

    results = benchmark(compute_all)
    lines = ["program             merges needed (joins with >1 source)"]
    for name, cfg, streams, svs in results:
        merges = 0
        for nid in cfg.nodes:
            node = cfg.node(nid)
            for s in streams:
                srcs = svs.at(nid, s.name)
                if node.kind is NodeKind.ASSIGN and s.referenced_by(node):
                    assert len(srcs) == 1, (name, nid, s.name)
                if node.kind is NodeKind.JOIN and len(srcs) > 1:
                    merges += 1
            if node.kind is NodeKind.END:
                for s in streams:
                    assert svs.at(cfg.exit, s.name), (name, s.name)
        lines.append(f"  {name:20s} {merges}")
    save_result("fig11_source_vectors", "\n".join(lines))


def test_fig11_drives_valid_graphs(benchmark):
    """The construction from SVs wires every input port exactly once on
    every corpus program (DFGraph.validate enforces it)."""

    def build_all():
        return [
            compile_program(wl.source, schema="schema3_opt")
            for wl in CORPUS
        ]

    compiled = benchmark(build_all)
    for cp in compiled:
        cp.graph.validate(allow_dangling_outputs=True)


def test_fig11_single_source_joins_are_wires(benchmark):
    """A join with a single source is equivalent to no operator: merges in
    the graph exist only at multi-source joins or loop-entry merge points."""
    cp = benchmark(
        compile_program,
        next(wl for wl in CORPUS if wl.name == "gcd").source,
        schema="schema2_opt",
    )
    for m in cp.graph.of_kind(OpKind.MERGE):
        assert m.nports >= 2
