"""F12/F13 — Figures 12-13: Schema 3 and its read block under aliasing.

Regenerates the paper's FORTRAN example ([X]={X,Z}, [Y]={Y,Z},
[Z]={X,Y,Z}) and checks that memory operations collect exactly their
access sets via synch trees, with completions replicated to every
collected stream.
"""

from repro.analysis import AliasStructure, Cover
from repro.bench.programs import FORTRAN_ALIAS
from repro.dfg import OpKind
from repro.lang import parse
from repro.translate import compile_program, simulate

SRC = FORTRAN_ALIAS.source


def test_fig12_access_sets(benchmark, save_result):
    prog = parse(SRC)
    alias = AliasStructure.from_program(prog)
    cover = Cover.singletons(alias)
    cp = benchmark(compile_program, SRC, schema="schema3", cover="singletons")

    lines = ["the paper's Section 5 example, singleton cover:"]
    for v in ("x", "y", "z"):
        els = sorted("+".join(sorted(el)) for el in cover.access_set(v))
        lines.append(
            f"  [{v}] = {{{', '.join(sorted(alias.alias_class(v)))}}}"
            f"   C[{v}] = {{{', '.join(els)}}}"
            f"   -> collect {cover.synch_cost(v)} tokens"
        )
    assert cover.synch_cost("x") == 2
    assert cover.synch_cost("y") == 2
    assert cover.synch_cost("z") == 3

    # the z store's collection synch has 3 inputs (Figure 12's synch tree)
    g = cp.graph
    z_store = next(
        n for n in g.nodes.values() if n.kind is OpKind.STORE and n.var == "z"
    )
    trig = g.producer(z_store.id, 1)
    synch = g.node(trig.src)
    assert synch.kind is OpKind.SYNCH and synch.nports == 3
    lines.append(
        f"  z's store collects through a synch{synch.nports} "
        "and its completion fans out to "
        f"{len(g.consumers(z_store.id, 0))} continuations"
    )
    save_result("fig12_schema3", "\n".join(lines))


def test_fig13_read_block_execution(benchmark, save_result):
    """Execution under each cover gives the same (reference) result while
    trading synch operations for parallelism."""

    def run_all():
        out = {}
        for cover in ("singletons", "alias_classes", "whole"):
            cp = compile_program(SRC, schema="schema3", cover=cover)
            out[cover] = simulate(cp)
        return out

    results = benchmark(run_all)
    mems = {tuple(sorted(r.memory.items())) for r in results.values()}
    assert len(mems) == 1, "all covers compute the same memory"
    lines = ["cover           synch-ops  cycles"]
    for cover, res in results.items():
        lines.append(
            f"  {cover:14s} {res.metrics.synch_ops:8d} {res.metrics.cycles:6d}"
        )
    save_result("fig13_cover_execution", "\n".join(lines))
