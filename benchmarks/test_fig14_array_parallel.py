"""F14 — Figure 14: parallelizing array operations.

Regenerates the Section 6.3 loop (stores to successive elements of x),
applies the Figure 14 token-duplication/synchronization rewrite, and
measures the critical-path shape: serialized ~ n*L, pipelined ~ n + L.
Also the write-once/I-structure enhancement.
"""

from repro.bench.programs import ARRAY_LOOP
from repro.machine import MachineConfig
from repro.translate import compile_program, simulate

N = 50
BIG = f"""
array a[{N + 8}];
i := 0;
s: i := i + 1;
   a[i] := i * 2;
   if i < {N} then goto s;
"""


def test_fig14_rewrite_applies(benchmark, save_result):
    cp = benchmark(
        compile_program,
        ARRAY_LOOP.source,
        schema="memory_elim",
        parallelize_arrays=True,
    )
    assert cp.array_report.pipelined == ((0, "x"),)
    res = simulate(cp)
    assert res.memory["x"][1:11] == [1] * 10
    save_result(
        "fig14_applies",
        f"Section 6.3 loop: pipelined {cp.array_report.pipelined}, "
        f"skipped {cp.array_report.skipped}\n",
    )


def test_fig14_critical_path_shape(benchmark, save_result):
    """The headline measurement: who wins and by what shape."""

    def sweep():
        rows = []
        for lat in (5, 10, 20, 40, 80):
            config = MachineConfig(memory_latency=lat)
            base = simulate(
                compile_program(BIG, schema="memory_elim"), config=config
            )
            fast = simulate(
                compile_program(
                    BIG, schema="memory_elim", parallelize_arrays=True
                ),
                config=config,
            )
            assert base.memory == fast.memory
            rows.append((lat, base.metrics.cycles, fast.metrics.cycles))
        return rows

    rows = benchmark(sweep)
    lines = [f"{N}-iteration store loop   L    serialized  pipelined"]
    for lat, b, f in rows:
        lines.append(f"{'':24s}{lat:4d}  {b:10d}  {f:9d}")
    save_result("fig14_critical_path", "\n".join(lines))

    # shape: serialized grows ~linearly with L (slope ~n); pipelined is
    # insensitive to L (additive)
    (l0, b0, f0), (l1, b1, f1) = rows[0], rows[-1]
    assert (b1 - b0) > 0.8 * N * (l1 - l0)  # slope ≈ n per unit latency
    assert (f1 - f0) < 3 * (l1 - l0)  # additive in L
    for lat, b, f in rows:
        assert f < b


def test_fig14_istructure_reader_concurrency(benchmark, save_result):
    """Write-once arrays on I-structure memory: a read issued before the
    writer's iteration completes is deferred and released by the write —
    reads and writes proceed concurrently."""
    src = BIG + f"q := a[{N // 2}];"

    def run():
        cp = compile_program(
            src,
            schema="memory_elim",
            parallelize_arrays=True,
            use_istructures=True,
        )
        return cp, simulate(cp, {}, MachineConfig(memory_latency=25))

    cp, res = benchmark(run)
    assert cp.istructure_arrays == ["a"]
    assert res.memory["q"] == N  # a[N/2] = 2*(N/2)
    plain = simulate(
        compile_program(src, schema="memory_elim"),
        config=MachineConfig(memory_latency=25),
    )
    assert plain.memory == res.memory
    assert res.metrics.cycles < plain.metrics.cycles
    save_result(
        "fig14_istructures",
        "reader after write-once store loop (memory latency 25):\n"
        f"  updatable memory:      {plain.metrics.cycles} cycles\n"
        f"  I-structures + fig14:  {res.metrics.cycles} cycles\n",
    )
