"""Fleet vs single-server saturation — the evidence for the sharded
router: the same seeded open-loop campaign swept over offered rates
against one PR-2 server and against a 2-shard fleet, recorded as
``BENCH_service.json`` so the perf trajectory survives re-anchors.

On a multi-core runner the fleet must reach >= 1.5x the single-server
saturation throughput at equal-or-better p99.  On starved runners (the
1-CPU container this repo grows in) both configurations share one core
— every shard is time-sliced against the router and the loadgen — so
the ratio is meaningless there; the JSON is still written, and the
ratio assertion is gated on ``os.cpu_count() >= 4``.
"""

import json
import os
import pathlib

import pytest

from repro.bench.loadgen import _default_jobs, saturation_sweep
from repro.fleet import running_fleet
from repro.service import running_server

RESULTS = pathlib.Path(__file__).parent / "results"

SHARDS = 2
RATES = [50.0, 100.0, 200.0, 400.0]
DURATION_S = 3.0
CONNECTIONS = 4
SEED = 7


@pytest.mark.benchmark(group="service")
def test_fleet_vs_single_saturation(save_result):
    jobs = _default_jobs(n_programs=8, iters=400)

    with running_server(
        max_queue=256, max_batch=8, max_wait_ms=2.0
    ) as (ep, _server):
        single = saturation_sweep(
            ep, jobs, RATES, duration_s=DURATION_S,
            connections=CONNECTIONS, seed=SEED,
        )

    with running_fleet(
        shards=SHARDS, max_queue=256, max_batch=8, max_wait_ms=2.0,
        max_pending=512,
    ) as (ep, _router):
        fleet = saturation_sweep(
            ep, jobs, RATES, duration_s=DURATION_S,
            connections=CONNECTIONS, seed=SEED,
        )

    s_sat, f_sat = single["saturation"], fleet["saturation"]
    ratio = (
        f_sat["throughput"] / s_sat["throughput"]
        if s_sat["throughput"] > 0 else 0.0
    )
    record = {
        "campaign": {
            "jobs": len(jobs),
            "rates": RATES,
            "duration_s": DURATION_S,
            "connections": CONNECTIONS,
            "seed": SEED,
        },
        "cpu_count": os.cpu_count(),
        "single": single,
        "fleet": {"shards": SHARDS, **fleet},
        "comparison": {
            "throughput_ratio": ratio,
            "single_p99_ms": s_sat["p99_ms"],
            "fleet_p99_ms": f_sat["p99_ms"],
        },
    }
    RESULTS.mkdir(exist_ok=True)
    # read-modify-write: other service benches (the tiering JIT one)
    # keep their own top-level keys in the same file
    path = RESULTS / "BENCH_service.json"
    try:
        merged = json.loads(path.read_text())
    except (OSError, ValueError):
        merged = {}
    merged.update(record)
    path.write_text(json.dumps(merged, indent=2) + "\n")

    # both configurations actually served the campaign
    assert s_sat["throughput"] > 0
    assert f_sat["throughput"] > 0

    lines = [
        f"seeded open-loop sweep, rates {RATES} jobs/s, "
        f"{DURATION_S:.0f}s x {CONNECTIONS} connections, seed {SEED}",
        f"runner: {os.cpu_count()} CPU(s)",
        "",
        f"single server saturation: {s_sat['throughput']:.1f} jobs/s "
        f"(offered {s_sat['offered_rate']:.0f}/s, p99 "
        f"{s_sat['p99_ms']:.1f}ms)",
        f"fleet ({SHARDS} shards)  saturation: {f_sat['throughput']:.1f} "
        f"jobs/s (offered {f_sat['offered_rate']:.0f}/s, p99 "
        f"{f_sat['p99_ms']:.1f}ms)",
        f"fleet/single throughput ratio: {ratio:.2f}x",
        "",
        "full per-rate points recorded in BENCH_service.json",
    ]
    if os.cpu_count() and os.cpu_count() >= 4:
        # the acceptance bar, only meaningful when shards get real cores
        assert ratio >= 1.5, record["comparison"]
        assert f_sat["p99_ms"] <= s_sat["p99_ms"] * 1.05, (
            record["comparison"]
        )
        lines.append("acceptance: fleet >= 1.5x at equal-or-better p99 — "
                     "PASS")
    else:
        lines.append("acceptance ratio not asserted: runner has "
                     f"{os.cpu_count()} CPU(s) (< 4); shards are "
                     "time-sliced on one core so the ratio is noise")
    save_result("fleet_throughput", "\n".join(lines))
