"""Packed-backend speedup — the flat-array interpreter versus the object
graph loops, and payload shipping versus whole-program shipping.

Two acceptance claims, measured on the full corpus × schema sweep (the
114-job workload every experiment suite revolves around):

* **serial**: with a warm graph cache, the packed interpreter's summed
  simulation time is ≥3x faster than the per-cycle reference loop
  (``sim_mode="step"``) — and faster than the event-driven fast loop too;
* **pooled**: ``--jobs 4`` beats the serial sweep outright.  Workers
  receive the compact :class:`~repro.machine.packed.PackedProgram`
  payload (parent-compiled, chunk-dispatched), which is what turned the
  pool from a regression into a win.

Every configuration must agree bit-for-bit on results — the differential
suite (tests/engine/test_packed_differential.py) enforces that per field;
here we spot-check memory and cycle counts across configurations.
"""

import time

import pytest

from repro.bench import corpus_jobs, format_table
from repro.engine import GraphCache, make_pool, run_batch
from repro.machine import MachineConfig


def _sweep(jobs, cache, pool=None, repeats=3):
    """Best-of-N warm sweep: (wall seconds, summed sim seconds, results)."""
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        results = run_batch(jobs, cache=cache, pool=pool)
        wall = time.perf_counter() - t0
        if best is None or wall < best[0]:
            best = (wall, sum(r.sim_time for r in results), results)
    return best


def _median(xs):
    xs = sorted(xs)
    return xs[len(xs) // 2]


def _interleaved_walls(jobs, cache, pool, repeats=11):
    """Alternate serial and pooled sweeps and report median walls.

    Interleaving cancels environmental drift (frequency scaling, noisy
    neighbours) that would otherwise dominate a back-to-back comparison;
    the median is robust to the stray slow sweep either side takes."""
    serial, pooled = [], []
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_batch(jobs, cache=cache)
        serial.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_batch(jobs, cache=cache, pool=pool)
        pooled.append(time.perf_counter() - t0)
    return _median(serial), _median(pooled)


@pytest.mark.benchmark(group="engine")
def test_packed_speedup(tmp_path, save_result):
    modes = {
        mode: corpus_jobs(config=MachineConfig(sim_mode=mode))
        for mode in ("step", "fast", "packed")
    }
    auto_jobs = corpus_jobs()
    cache = GraphCache()
    run_batch(auto_jobs, cache=cache)  # warm the cache once for all modes

    serial = {
        mode: _sweep(jobs, cache) for mode, jobs in modes.items()
    }

    pool = make_pool(4, cache_dir=tmp_path)
    try:
        pooled_results = run_batch(auto_jobs, cache=cache, pool=pool)
        serial_wall, pooled_wall = _interleaved_walls(
            auto_jobs, cache, pool
        )
    finally:
        pool.terminate()
        pool.join()
    serial_results = run_batch(auto_jobs, cache=cache)

    # identical observables across every configuration
    for mode in ("fast", "packed"):
        for ref, br in zip(serial["step"][2], serial[mode][2]):
            assert ref.ok and br.ok, (ref.error, br.error)
            assert ref.result.memory == br.result.memory
            assert ref.result.metrics.cycles == br.result.metrics.cycles
            assert (
                ref.result.metrics.operations == br.result.metrics.operations
            )
    for ref, br in zip(serial_results, pooled_results):
        assert ref.ok and br.ok, (ref.error, br.error)
        assert br.result.backend == "vectorized"  # auto on idealized config
        assert ref.result.memory == br.result.memory
        assert ref.result.metrics.cycles == br.result.metrics.cycles

    step_sim, fast_sim, packed_sim = (
        serial["step"][1],
        serial["fast"][1],
        serial["packed"][1],
    )
    n = len(auto_jobs)
    rows = [
        ["serial, sim_mode=step (reference loop)", f"{step_sim:.3f}", "1.00x"],
        [
            "serial, sim_mode=fast (event-driven, object graph)",
            f"{fast_sim:.3f}",
            f"{step_sim / fast_sim:.2f}x",
        ],
        [
            "serial, sim_mode=packed (flat-array interpreter)",
            f"{packed_sim:.3f}",
            f"{step_sim / packed_sim:.2f}x",
        ],
    ]
    pool_rows = [
        ["serial sweep (auto -> packed)", f"{serial_wall:.3f}"],
        ["--jobs 4 sweep (packed payload shipping)", f"{pooled_wall:.3f}"],
    ]
    save_result(
        "packed_speedup",
        f"full corpus sweep, {n} (program, schema) jobs, warm graph cache\n\n"
        "simulation-loop time (sum over jobs, best of 3 sweeps):\n"
        + format_table(["configuration", "sim s", "speedup"], rows)
        + "\n\nwall time per sweep (median of 11 interleaved runs,"
        " persistent 4-worker pool):\n"
        + format_table(["configuration", "wall s"], pool_rows)
        + f"\n\npool speedup: {serial_wall / pooled_wall:.2f}x — workers"
        "\nskip graph validation/frame-store setup and receive flat"
        "\nPackedProgram payloads in chunked dispatches, so the pool wins"
        "\neven where cores are scarce; the margin grows with core count",
    )

    # the tentpole's acceptance bar
    assert packed_sim * 3 <= step_sim, (
        f"packed {packed_sim:.3f}s not >=3x faster than step {step_sim:.3f}s"
    )
    assert packed_sim < fast_sim
    assert pooled_wall < serial_wall, (
        f"pooled sweep median {pooled_wall:.3f}s not faster than serial "
        f"median {serial_wall:.3f}s"
    )
