"""Service throughput under concurrent load — the evidence that the
always-on server beats one-shot invocation and that backpressure engages
instead of collapse.

Three measurements over the full bench corpus:

* **cold one-shot** — a fresh ``python -m repro bench`` subprocess
  (interpreter start, imports, cold cache), the per-job cost every
  pre-service caller paid;
* **warm service** — 8 closed-loop socket clients against one resident
  server with a warm cache: sustained jobs/s and client-observed
  submit->result latency percentiles;
* **overload** — 8 pipelining clients against ``max_queue=4`` while a
  slow job holds the engine: ``queue_full`` rejections are counted,
  every accepted job still completes, and the server stays live.
"""

import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.bench.harness import corpus_jobs
from repro.bench.loadgen import run_load
from repro.engine import BatchJob
from repro.service import ServiceClient, running_server

REPO = Path(__file__).resolve().parents[1]

SLOW_SRC = "i := 0;\nl: i := i + 1;\n   if i < 4000 then goto l;\n"


def _cold_bench_seconds(*extra_args: str) -> float:
    """Wall time of a fresh ``python -m repro bench`` subprocess: the
    cost every pre-service caller paid (interpreter, imports, cold
    cache) for whatever job subset the args select."""
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "bench", *extra_args],
        cwd=REPO,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=600,
    )
    wall = time.perf_counter() - t0
    assert proc.returncode == 0, proc.stderr[-2000:]
    return wall


@pytest.mark.benchmark(group="service")
def test_service_throughput(tmp_path, save_result):
    jobs = corpus_jobs()
    # cold baselines: (a) one process per job — what invoking the CLI
    # for a single program costs; (b) one process for the whole corpus —
    # the best case a one-shot caller can amortize to
    single_shot_ms = _cold_bench_seconds(
        "--programs", "gcd", "--schemas", "schema2_opt"
    ) * 1e3
    cold_s = _cold_bench_seconds()
    cold_per_job_ms = cold_s / len(jobs) * 1e3

    # -- warm service: unloaded latency, then 8-client sustained load ---
    rounds = 3
    with running_server(
        max_queue=256,
        max_batch=16,
        max_wait_ms=2.0,
    ) as (ep, _server):
        with ServiceClient(**ep) as warmup:
            warm = warmup.submit_many(jobs)
            assert all(r.ok for r in warm)
        unloaded = run_load(ep, jobs, clients=1, rounds=1)
        report = run_load(ep, jobs, clients=8, rounds=rounds)
        with ServiceClient(**ep) as probe:
            live_stats = probe.stats()

    assert report.rejected == 0
    assert report.completed == report.offered == len(jobs) * rounds
    assert report.cache_hits == report.completed  # fully warm
    # warm submit->result must be well under cold one-shot cost: the
    # unloaded p50 beats even the fully-amortized cold per-job cost, and
    # under 8-client saturation (latency is then mostly queueing behind
    # the other clients' jobs) it still beats a per-job cold invocation
    # by a wide margin — asserted at 2x for noisy CI runners.
    assert unloaded.latency_ms.p50 < cold_per_job_ms
    assert report.latency_ms.p50 < single_shot_ms / 2

    # -- overload: tiny queue, pipelined bursts, engine held busy -------
    fast = [BatchJob(jobs[0].source, jobs[0].options, jobs[0].inputs,
                     name=f"burst{i}") for i in range(48)]
    with running_server(
        max_queue=4,
        max_batch=1,
        max_wait_ms=0.0,
    ) as (ep2, server2):
        with ServiceClient(**ep2) as holder:
            anchor = holder.start(BatchJob(SLOW_SRC, name="anchor"))
            deadline = time.monotonic() + 10
            while not (server2.batcher.in_flight == 1
                       and server2.batcher.depth == 0):
                assert time.monotonic() < deadline
                time.sleep(0.01)
            overload = run_load(ep2, fast, clients=8, rounds=1, burst=6)
            assert holder.result(anchor).ok
            # the server survived the overload and still serves
            with ServiceClient(**ep2) as probe:
                assert probe.submit(fast[0]).ok
                tiny_stats = probe.stats()

    assert overload.rejected > 0, "queue_full backpressure never engaged"
    assert overload.completed + overload.rejected == overload.offered
    assert tiny_stats["rejected"] == overload.rejected

    lat = live_stats["latency_ms"]
    lines = [
        f"bench corpus: {len(jobs)} (program, schema) jobs",
        "",
        "cold one-shot baselines (fresh `python -m repro bench` process):",
        f"  single job:   {single_shot_ms:.0f}ms "
        "(interpreter + imports + compile + sim)",
        f"  full corpus:  {cold_s:.2f}s wall = {cold_per_job_ms:.2f}ms "
        "per job fully amortized",
        "",
        "warm service, 1 client (unloaded submit->result latency):",
        f"  {unloaded.summary()}",
        f"  p50 is {cold_per_job_ms / unloaded.latency_ms.p50:.1f}x under "
        "even the fully-amortized cold per-job cost",
        "",
        f"warm service, 8 concurrent clients x {rounds} rounds "
        "(max_queue=256 max_batch=16 max_wait_ms=2):",
        f"  {report.summary()}",
        f"  p50 vs cold single-job one-shot: "
        f"{single_shot_ms / report.latency_ms.p50:.1f}x faster",
        "  server-side stage latencies (ms):",
        *[
            f"    {stage:8s} p50={lat[stage]['p50']:.2f} "
            f"p95={lat[stage]['p95']:.2f} p99={lat[stage]['p99']:.2f}"
            for stage in ("queue", "compile", "sim", "total")
        ],
        f"  server cache hit rate: "
        f"{live_stats['cache']['hit_rate'] * 100:.1f}%",
        "",
        "overload (max_queue=4 max_batch=1, engine held by a slow job, "
        "8 clients pipelining 6 submits each):",
        f"  {overload.summary()}",
        f"  server counters: {tiny_stats['rejected']} rejected, "
        f"{tiny_stats['completed']} completed, server stayed live",
        "",
        "backpressure contract: overflow is rejected immediately with "
        "queue_full; every accepted job completed (zero lost).",
    ]
    save_result("service_throughput", "\n".join(lines))
