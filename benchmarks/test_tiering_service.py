"""Adaptive tiering under a Zipf workload — the evidence for the
service-as-JIT: the same seeded open-loop campaign (200 distinct graphs,
Zipf s=1.1 popularity — the Labyrinth shape: a hot head of resubmitted
graphs over a long cold tail) against two identically provisioned
servers that differ only in policy:

* **tiering off**: every job pinned to the ``step`` reference loop
  (``tier_entry == tier_max == "step"`` — the no-JIT baseline);
* **tiering on**: entry at ``step``, hotness-driven promotion up the
  full ladder to ``vectorized``.

Each server first serves a seeded warmup campaign (a JIT benchmark
measures steady state, not the cold ramp — the warmup also fills both
graph caches identically), then the rate sweep.  The acceptance
comparison is matched-load: p50 at the *pinned server's saturation
rate*, where the tiered server must be >= 1.5x faster — the hot head
runs vectorized at interpreter-free speed while the baseline pays the
reference loop for every job.

A second phase drains the tiered server (writing its snapshot),
restarts it over the same snapshot directory, and requires >= 90 of the
first 100 resubmissions to be cache hits — the warm restart the
snapshot subsystem exists for.  Both results land in
``BENCH_service.json`` under the ``"tiering"`` key (read-modify-write:
the fleet bench owns the other keys).
"""

import itertools
import json
import os
import pathlib
import random

import pytest

from repro.bench.loadgen import (
    _default_jobs,
    run_open_loop,
    saturation_sweep,
    zipf_weights,
)
from repro.service import ServiceClient, running_server

RESULTS = pathlib.Path(__file__).parent / "results"

N_PROGRAMS = 200
ZIPF_S = 1.1
RATES = [25.0, 50.0, 100.0, 200.0]
DURATION_S = 3.0
WARMUP_RATE = 50.0
WARMUP_S = 6.0
CONNECTIONS = 4
SEED = 13

_SERVER_KW = dict(
    max_queue=256, max_batch=8, max_wait_ms=2.0, capacity=512,
    tiering=True, tier_entry="step", tier_decay_s=0.0,
)


def _campaign(ep, jobs, weights):
    """Warmup to steady state, then the rate sweep."""
    run_open_loop(
        ep, jobs, WARMUP_RATE, WARMUP_S,
        connections=CONNECTIONS, seed=SEED - 1, weights=weights,
    )
    return saturation_sweep(
        ep, jobs, RATES, duration_s=DURATION_S,
        connections=CONNECTIONS, seed=SEED, weights=weights,
    )


def _point_at(sweep: dict, rate: float) -> dict:
    return next(p for p in sweep["points"] if p["offered_rate"] == rate)


@pytest.mark.benchmark(group="service")
def test_tiering_vs_pinned_zipf_saturation(save_result, tmp_path):
    jobs = _default_jobs(n_programs=N_PROGRAMS, iters=300)
    weights = zipf_weights(len(jobs), ZIPF_S)
    snap_dir = str(tmp_path / "snap")

    with running_server(
        **_SERVER_KW, tier_max="step", tier_thresholds=(),
    ) as (ep, _server):
        pinned = _campaign(ep, jobs, weights)

    with running_server(
        **_SERVER_KW, tier_max="vectorized", tier_thresholds=(2, 3, 4),
        snapshot_dir=snap_dir,
    ) as (ep, server):
        tiered = _campaign(ep, jobs, weights)
        server.tiering.join_prewarms(timeout=60)
        tiers = server.tiers_snapshot()
    # the hot head really climbed the ladder
    assert tiers["promotions"] >= 1, tiers
    assert tiers["by_tier"].get("vectorized", 0) >= 1, tiers

    # matched-load comparison: p50 at the pinned server's saturation
    # rate — the heaviest load the no-JIT baseline handles best
    p_sat, t_sat = pinned["saturation"], tiered["saturation"]
    base_rate = p_sat["offered_rate"]
    pinned_p50 = _point_at(pinned, base_rate)["latency_ms"]["p50"]
    tiered_p50 = _point_at(tiered, base_rate)["latency_ms"]["p50"]
    p50_ratio = pinned_p50 / tiered_p50 if tiered_p50 > 0 else 0.0

    # -- phase 2: warm restart over the drained server's snapshot ------
    rng = random.Random(SEED + 1)
    cum = list(itertools.accumulate(weights))
    warm_hits = 0
    with running_server(
        **_SERVER_KW, tier_max="vectorized", tier_thresholds=(2, 3, 4),
        snapshot_dir=snap_dir,
    ) as (ep, server):
        restored = server.tiers_snapshot()["snapshot"]["restored"]
        with ServiceClient(**ep, timeout=120.0, retries=20) as client:
            for _ in range(100):
                idx = rng.choices(range(len(jobs)), cum_weights=cum,
                                  k=1)[0]
                br = client.submit(jobs[idx])
                assert br.ok, br.error
                warm_hits += bool(br.cache_hit)

    record = {
        "campaign": {
            "programs": N_PROGRAMS,
            "zipf_s": ZIPF_S,
            "rates": RATES,
            "duration_s": DURATION_S,
            "warmup": {"rate": WARMUP_RATE, "duration_s": WARMUP_S},
            "connections": CONNECTIONS,
            "seed": SEED,
        },
        "cpu_count": os.cpu_count(),
        "pinned_step": pinned,
        "tiered": tiered,
        "tiers": {k: tiers[k] for k in
                  ("graphs", "by_tier", "promotions", "prewarms")},
        "comparison": {
            "rate": base_rate,
            "p50_ratio_at_pinned_saturation": p50_ratio,
            "pinned_p50_ms": pinned_p50,
            "tiered_p50_ms": tiered_p50,
            "pinned_saturation_throughput": p_sat["throughput"],
            "tiered_saturation_throughput": t_sat["throughput"],
        },
        "warm_restart": {
            "restored_entries": restored,
            "first_100_cache_hits": warm_hits,
        },
    }
    RESULTS.mkdir(exist_ok=True)
    path = RESULTS / "BENCH_service.json"
    try:
        merged = json.loads(path.read_text())
    except (OSError, ValueError):
        merged = {}
    merged["tiering"] = record
    path.write_text(json.dumps(merged, indent=2) + "\n")

    lines = [
        f"Zipf(s={ZIPF_S}) over {N_PROGRAMS} graphs, warmup "
        f"{WARMUP_RATE:.0f}/s x {WARMUP_S:.0f}s, rates {RATES} jobs/s, "
        f"{DURATION_S:.0f}s x {CONNECTIONS} connections, seed {SEED}",
        f"runner: {os.cpu_count()} CPU(s)",
        "",
        f"pinned-to-step saturation: {p_sat['throughput']:.1f} jobs/s "
        f"at {base_rate:.0f}/s offered",
        f"tiered (step->vectorized) saturation: "
        f"{t_sat['throughput']:.1f} jobs/s",
        f"matched-load p50 at {base_rate:.0f}/s offered: pinned "
        f"{pinned_p50:.1f}ms vs tiered {tiered_p50:.1f}ms = "
        f"{p50_ratio:.2f}x",
        f"tier census: {tiers['by_tier']} "
        f"({tiers['promotions']} promotions, {tiers['prewarms']} "
        f"pre-warms)",
        "",
        f"warm restart: {restored} entries restored, "
        f"{warm_hits}/100 first resubmissions were cache hits",
        "",
        "full per-rate points recorded in BENCH_service.json (tiering)",
    ]
    save_result("tiering_service", "\n".join(lines))

    assert p_sat["throughput"] > 0 and t_sat["throughput"] > 0
    # acceptance: the JIT wins the hot-head workload on latency...
    assert p50_ratio >= 1.5, record["comparison"]
    # ...and the restarted server comes up warm
    assert warm_hits >= 90, record["warm_restart"]
