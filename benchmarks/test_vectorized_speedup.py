"""Vectorized-backend speedup — graph-as-matrices transport versus the
packed heap on wide graphs.

The vectorized backend's claim is about *width*: when a cycle's ready
front is wide and homogeneous, firing becomes one record comprehension
and token delivery becomes a handful of numpy column updates against the
CSR frame store, while the packed loop pays a heap push/pop and a scalar
frame walk per token.  The acceptance workload is therefore a family of
synthetic barrier graphs built directly at the DFG layer (the program
generator's ``fanout_width`` knob emits the same shape at source level,
but wide programs pay a superlinear compile the benchmark does not
want to time): per layer, one CONST fans out to ``width`` UNOPs whose
results all SYNCH-join before seeding the next layer.

Acceptance: >=3x over packed on wide graphs (width >= 1024), with every
configuration bit-identical on metrics, memory, and occupancy.  Results
are recorded in benchmarks/results/BENCH_sim.json plus a text table.
"""

import json
import pathlib
import time

import pytest

from repro.bench import format_table
from repro.dfg.graph import DFGraph, Port
from repro.dfg.nodes import OpKind, Seed
from repro.machine import (
    MachineConfig,
    PackedSimulator,
    VectorizedSimulator,
    pack_graph,
)
from repro.machine.istructure import IStructureMemory
from repro.machine.memory import DataMemory

RESULTS = pathlib.Path(__file__).parent / "results"

#: (width, depth) per workload — ~5k-16k fired operations each, so a
#: sweep stays well under a second per backend
SHAPES = ((256, 20), (1024, 8), (4096, 3), (8192, 2))


def _barrier_graph(width: int, depth: int) -> DFGraph:
    """``depth`` layers of: CONST -> width parallel UNOPs -> SYNCH."""
    g = DFGraph()
    start = g.add(OpKind.START, seeds=[Seed("access", "go")])
    prev = Port(start.id, 0)
    for layer in range(depth):
        c = g.add(OpKind.CONST, value=layer + 1)
        g.connect(prev, c.id, 0, is_access=True)
        s = g.add(OpKind.SYNCH, nports=width)
        for i in range(width):
            u = g.add(OpKind.UNOP, op="-", latency=1)
            g.connect(Port(c.id, 0), u.id, 0)
            g.connect(Port(u.id, 0), s.id, i, is_access=True)
        prev = Port(s.id, 0)
    end = g.add(OpKind.END, returns=[None])
    g.connect(prev, end.id, 0, is_access=True)
    return g


def _median(xs):
    xs = sorted(xs)
    return xs[len(xs) // 2]


def _interleaved(pg, repeats=9):
    """Median wall seconds per backend, alternated to cancel drift;
    asserts bit-identical observables on every pair of runs."""
    pw, vw = [], []
    for _ in range(repeats):
        rp = PackedSimulator(
            pg, DataMemory(), IStructureMemory(), MachineConfig()
        ).run()
        rv = VectorizedSimulator(
            pg, DataMemory(), IStructureMemory(), MachineConfig()
        ).run()
        pw.append(rp.wall_time)
        vw.append(rv.wall_time)
        assert rv.metrics == rp.metrics
        assert rv.memory == rp.memory
        assert rv.end_values == rp.end_values
        assert [tuple(s) for s in rv.occupancy] == [
            tuple(s) for s in rp.occupancy
        ]
    return _median(pw), _median(vw), rp.metrics


@pytest.mark.benchmark(group="engine")
def test_vectorized_speedup_wide_graphs(save_result):
    rows = []
    record = {
        "benchmark": "vectorized_vs_packed_wide_graphs",
        "workload": "synthetic barrier graphs: per layer one CONST "
        "fans out to `width` unit-latency UNOPs joined by one SYNCH",
        "shapes": [],
    }
    wide_ratios = []
    for width, depth in SHAPES:
        pg = pack_graph(_barrier_graph(width, depth))
        t0 = time.perf_counter()
        packed_s, vec_s, metrics = _interleaved(pg)
        ratio = packed_s / vec_s
        record["shapes"].append(
            {
                "width": width,
                "depth": depth,
                "nodes": pg.n,
                "operations": metrics.operations,
                "cycles": metrics.cycles,
                "packed_ms": round(packed_s * 1e3, 3),
                "vectorized_ms": round(vec_s * 1e3, 3),
                "speedup": round(ratio, 2),
                "bench_wall_s": round(time.perf_counter() - t0, 3),
            }
        )
        rows.append(
            [
                f"{width}x{depth}",
                str(metrics.operations),
                f"{packed_s * 1e3:.1f}",
                f"{vec_s * 1e3:.1f}",
                f"{ratio:.2f}x",
            ]
        )
        if width >= 1024:
            wide_ratios.append(ratio)

    record["acceptance"] = {
        "bar": ">=3x over packed at width >= 1024",
        "wide_speedups": [round(r, 2) for r in wide_ratios],
        "passed": all(r >= 3.0 for r in wide_ratios),
    }
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / "BENCH_sim.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )
    save_result(
        "vectorized_speedup",
        "synthetic barrier graphs, interleaved median of 9 runs per "
        "backend,\nevery run bit-identical (metrics, memory, "
        "occupancy):\n\n"
        + format_table(
            ["width x depth", "ops", "packed ms", "vec ms", "speedup"],
            rows,
        )
        + "\n\nwide-front fires collapse to one record comprehension "
        "and token\ndelivery to a few numpy column updates; the packed "
        "loop pays a\nheap push/pop and a scalar frame walk per token, "
        "so the margin\ngrows with fan-out width",
    )

    # the tentpole's wide-graph acceptance bar
    assert wide_ratios, "no wide shapes measured"
    for (width, depth), shape in zip(SHAPES, record["shapes"]):
        if width >= 1024:
            assert shape["speedup"] >= 3.0, (
                f"width={width}: vectorized only {shape['speedup']}x "
                f"over packed (packed {shape['packed_ms']}ms, "
                f"vectorized {shape['vectorized_ms']}ms)"
            )
