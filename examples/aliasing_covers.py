#!/usr/bin/env python3
"""Aliasing and covers (paper Section 5).

Reproduces the paper's FORTRAN example — SUBROUTINE F(X, Y, Z) called as
F(A, B, A) and F(C, D, D), giving [X]={X,Z}, [Y]={Y,Z}, [Z]={X,Y,Z} — and
explores the parallelism/synchronization tradeoff across covers.

Run:  python examples/aliasing_covers.py
"""

from repro.analysis import AliasStructure, Cover
from repro.bench import format_table
from repro.lang import parse
from repro.machine import MachineConfig
from repro.translate import compile_program, simulate

FORTRAN = """
alias (x, z); alias (y, z);
x := 1;
y := x + 2;
z := y * 3;
w := z + x;
"""

# the same alias structure derived automatically: F compiled once must be
# correct under the aliasing any call site induces
FORTRAN_SUBS = """
sub f(x, y, z) {
  t := x + y;
  z := t;
}
a := 1; b := 2; c := 3; d := 4;
call f(a, b, a);
call f(c, d, d);
"""

# independent chains on unaliased a/b alongside an aliased p/q cluster
MIXED = """
alias (p, q);
p := 1;
a := a + 1; a := a * 2; a := a + 3; a := a * 4;
b := b + 5; b := b * 6; b := b + 7; b := b * 8;
q := p + 2;
"""


def main() -> None:
    prog = parse(FORTRAN)
    alias = AliasStructure.from_program(prog)
    print("alias classes (the paper's example, declared):")
    for v in ("x", "y", "z"):
        print(f"  [{v}] = {{{', '.join(sorted(alias.alias_class(v)))}}}")

    from repro.lang import expand_subroutines

    _, report = expand_subroutines(parse(FORTRAN_SUBS))
    print(
        "\nthe same structure derived from CALL F(A,B,A); CALL F(C,D,D):\n"
        f"  formal alias pairs of f: {sorted(report.formal_aliases['f'])}"
    )

    print("\naccess sets under the singleton cover (C[x] = elements "
          "intersecting [x]):")
    cover = Cover.singletons(alias)
    for v in ("x", "y", "z"):
        names = sorted("+".join(sorted(el)) for el in cover.access_set(v))
        print(f"  C[{v}] = {{{', '.join(names)}}}  ->  "
              f"{cover.synch_cost(v)} tokens per operation")

    print("\ncover tradeoff on the mixed workload "
          "(memory latency 10, idealized machine):")
    config = MachineConfig(memory_latency=10)
    rows = []
    for cover_name in ("singletons", "alias_classes", "whole"):
        cp = compile_program(MIXED, schema="schema3", cover=cover_name)
        res = simulate(cp, config=config)
        rows.append(
            [
                cover_name,
                len(cp.streams),
                res.metrics.synch_ops,
                res.metrics.cycles,
                f"{res.metrics.avg_parallelism:.2f}",
            ]
        )
    print(
        format_table(
            ["cover", "tokens", "synch ops", "cycles", "S_avg"], rows
        )
    )
    print(
        "\nFiner covers buy parallelism (fewer cycles) at the price of "
        "synchronization\n(more synch operations), exactly the Section 5 "
        "tradeoff."
    )


if __name__ == "__main__":
    main()
