#!/usr/bin/env python3
"""Array store parallelization (paper Section 6.3, Figure 14).

Sweeps memory latency and shows the critical path of the Section 6.3 loop
under (a) the plain optimized schema, (b) the Figure 14 store-pipelining
rewrite, and (c) write-once promotion to I-structure memory with a reader
racing the writer loop.

Run:  python examples/array_parallelization.py
"""

from repro.bench import format_table
from repro.machine import MachineConfig
from repro.translate import compile_program, simulate

N = 50
LOOP = f"""
array a[{N + 8}];
i := 0;
s: i := i + 1;
   a[i] := i * 2;
   if i < {N} then goto s;
"""

LOOP_WITH_READER = LOOP + f"q := a[{N // 2}];"


def main() -> None:
    print(f"store loop, {N} iterations; critical path in cycles:")
    rows = []
    for lat in (1, 5, 10, 20, 40, 80):
        config = MachineConfig(memory_latency=lat)
        base = simulate(
            compile_program(LOOP, schema="memory_elim"), config=config
        )
        fig14 = simulate(
            compile_program(
                LOOP, schema="memory_elim", parallelize_arrays=True
            ),
            config=config,
        )
        assert base.memory == fig14.memory
        rows.append(
            [
                lat,
                base.metrics.cycles,
                fig14.metrics.cycles,
                f"{base.metrics.cycles / fig14.metrics.cycles:.1f}x",
            ]
        )
    print(format_table(["mem latency", "serialized", "fig14", "speedup"], rows))
    print(
        f"\nThe serialized loop grows like n*L (~{N} stores each waiting "
        "a full memory\nround trip); the pipelined loop grows like n + L — "
        "the paper's point."
    )

    print("\nwrite-once array on I-structure memory, reader after the loop:")
    config = MachineConfig(memory_latency=25)
    plain = simulate(
        compile_program(LOOP_WITH_READER, schema="memory_elim"),
        config=config,
    )
    istr = simulate(
        compile_program(
            LOOP_WITH_READER,
            schema="memory_elim",
            parallelize_arrays=True,
            use_istructures=True,
        ),
        config=config,
    )
    assert plain.memory == istr.memory
    print(f"  plain updatable memory : {plain.metrics.cycles} cycles")
    print(f"  I-structures + fig14   : {istr.metrics.cycles} cycles")
    print(
        "  (the deferred read gets its value as soon as the writing "
        "iteration\n   stores it; it never waits for the whole loop)"
    )


if __name__ == "__main__":
    main()
