#!/usr/bin/env python3
"""The Section 5 FORTRAN scenario, end to end.

The paper's motivating example for aliasing is::

    SUBROUTINE F(X, Y, Z)
    ...
    CALL F(A, B, A)
    CALL F(C, D, D)

F is compiled once, so its body must be correct under the aliasing any
call site can induce: X~Z (first call), Y~Z (second call), but never X~Y.
This example writes that program in our language, shows the derived alias
structure, compiles under Schema 3, and demonstrates that ignoring the
aliasing would compute the wrong answer.

Run:  python examples/fortran_subroutines.py
"""

from repro.analysis import AliasStructure
from repro.interp import run_ast
from repro.lang import expand_subroutines, parse, pretty
from repro.translate import compile_program, simulate

SRC = """
sub f(x, y, z) {
  t := x + y;
  z := t * 2;
  y := z - x;
}
a := 1; b := 2; c := 3; d := 4;
call f(a, b, a);
call f(c, d, d);
r := a + b + c + d;
"""


def main() -> None:
    prog = parse(SRC)
    flat, report = expand_subroutines(prog)

    print("derived formal-level alias pairs (union over call sites):")
    for name, pairs in report.formal_aliases.items():
        print(f"  sub {name}: {sorted(pairs)}")

    alias = AliasStructure.from_program(flat)
    print("\ninherited may-alias pairs at the call sites "
          "(the price of compiling F once):")
    for g in sorted(set(tuple(sorted(p)) for p in flat.alias_groups)):
        print(f"  {g[0]} ~ {g[1]}")

    print("\nexpanded program:")
    for line in pretty(flat).splitlines():
        print("  " + line)

    ref = run_ast(prog)
    print(f"\nsequential reference: {ref}")
    for schema in ("schema3", "schema3_opt", "memory_elim"):
        cp = compile_program(SRC, schema=schema)
        res = simulate(cp)
        assert res.memory == ref, (schema, res.memory)
        synch = res.metrics.synch_ops
        print(
            f"  {schema:12s} matches "
            f"({synch} synchronization ops collected the aliased tokens)"
        )

    print(
        "\nWhy it matters: a ~ b at the first call site because Y~Z holds\n"
        "for F as compiled — even though a and b are different locations\n"
        "there, the translation must order their memory operations as if\n"
        "they could collide, and the access-set collection does exactly "
        "that."
    )


if __name__ == "__main__":
    main()
