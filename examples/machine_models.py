#!/usr/bin/env python3
"""Machine-model studies: what the paper's abstraction hides.

The introduction promises a model where "details such as the number of
processors, communication network topology, distribution of data
structures, etc. are abstracted away".  The simulator can optionally
un-abstract two of them:

* k-bounded loops (Monsoon-style iteration throttling) — the
  parallelism/token-store-occupancy tradeoff behind the Section 3 loop
  control black box;
* a multi-PE locality model (static instruction partitioning + a hop cost
  for tokens that cross PE boundaries).

Results never change — only time and resource usage do.

Run:  python examples/machine_models.py
"""

from repro.bench import format_table, workload
from repro.machine import MachineConfig
from repro.translate import compile_program, simulate

LOOP = """
array a[64];
i := 0;
s: i := i + 1;
   a[i] := i * 2;
   if i < 40 then goto s;
"""


def main() -> None:
    print("k-bounded loops on a store-pipelined loop (memory latency 20):")
    rows = []
    for k in (1, 2, 4, None):
        cp = compile_program(LOOP, schema="memory_elim", parallelize_arrays=True)
        res = simulate(cp, None, MachineConfig(loop_bound=k, memory_latency=20))
        rows.append(
            [
                "inf" if k is None else k,
                res.metrics.cycles,
                res.metrics.peak_tokens_in_flight,
            ]
        )
    print(format_table(["k", "cycles", "peak tokens"], rows))

    print("\ninstruction partitioning, 4 PEs, one op per PE per cycle "
          "(prime_count):")
    wl = workload("prime_count")
    rows = []
    for net in (0, 2, 8):
        for part in ("block", "round_robin"):
            cp = compile_program(wl.source, schema="memory_elim")
            res = simulate(
                cp,
                None,
                MachineConfig(num_pes=4, network_latency=net, partition=part),
            )
            rows.append([net, part, res.metrics.cycles])
    print(format_table(["hop cost", "partition", "cycles"], rows))
    print(
        "\nBlock partitioning keeps the program-order chains local; "
        "round-robin pays\na network hop on almost every arc.  Both compute "
        "the same memory (verified)."
    )


if __name__ == "__main__":
    main()
