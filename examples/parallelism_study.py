#!/usr/bin/env python3
"""Parallelism study: how much instruction-level parallelism does each
translation schema expose, across the workload corpus?

This is the measurement the paper motivates in its introduction: the
dataflow model as a way of "measuring the extent to which parallelization
techniques can expose parallelism in imperative language programs".  Every
run is validated against the sequential reference interpreter.

Run:  python examples/parallelism_study.py
"""

from repro.bench import CORPUS, compare_schemas, format_table
from repro.bench.harness import HEADER
from repro.machine import MachineConfig


def main() -> None:
    schemas = ["schema1", "schema2", "schema2_opt", "memory_elim"]
    rows = []
    for wl in CORPUS:
        if wl.has_aliasing():
            continue  # schema2 rejects aliasing; see aliasing_covers.py
        rows.extend(compare_schemas(wl, schemas))
    print(format_table(HEADER, [r.cells() for r in rows]))

    print("\nGeometric-mean parallelism by schema (idealized machine):")
    for schema in schemas:
        vals = [r.avg_parallelism for r in rows if r.schema == schema]
        gm = 1.0
        for v in vals:
            gm *= v
        gm **= 1 / len(vals)
        print(f"  {schema:12s} {gm:5.2f}")

    print("\nFinite machines (running_example, prime_count):")
    for wl in [w for w in CORPUS if w.name in ("running_example", "prime_count")]:
        for pes in (1, 2, 4, 8, None):
            rows = compare_schemas(
                wl, ["memory_elim"], config=MachineConfig(num_pes=pes)
            )
            (r,) = rows
            label = "inf" if pes is None else str(pes)
            print(
                f"  {wl.name:16s} PEs={label:>3s}: {r.cycles:5d} cycles, "
                f"avg parallelism {r.avg_parallelism:.2f}"
            )


if __name__ == "__main__":
    main()
