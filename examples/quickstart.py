#!/usr/bin/env python3
"""Quickstart: compile the paper's running example to a dataflow graph and
execute it on the simulated explicit-token-store machine.

Run:  python examples/quickstart.py
"""

from repro import compile_program, run_source, simulate
from repro.dfg import dfg_to_dot, graph_stats

RUNNING_EXAMPLE = """
x := 0;
l: y := x + 1;
   x := x + 1;
   if x < 5 then goto l;
"""


def main() -> None:
    # One call: parse -> CFG -> loop intervals -> dataflow graph -> simulate.
    result = run_source(RUNNING_EXAMPLE, schema="schema2_opt")
    print("final memory:", result.memory)
    print("execution:   ", result.metrics.summary())
    print()

    # The same, in steps, with access to every intermediate artifact.
    for schema in ("schema1", "schema2", "schema2_opt", "memory_elim"):
        cp = compile_program(RUNNING_EXAMPLE, schema=schema)
        res = simulate(cp)
        st = graph_stats(cp.graph)
        print(
            f"{schema:12s}  graph: {st.nodes:3d} nodes, "
            f"{st.switches} switches, {st.memory_ops:2d} memory ops | "
            f"run: {res.metrics.cycles:3d} cycles, "
            f"avg parallelism {res.metrics.avg_parallelism:.2f}"
        )

    # Export the optimized graph for graphviz (dot -Tpng ...).
    cp = compile_program(RUNNING_EXAMPLE, schema="schema2_opt")
    dot = dfg_to_dot(cp.graph, "running_example")
    print(f"\nDOT export: {len(dot.splitlines())} lines "
          "(pipe through `dot -Tpng` to draw the paper's Figure 8 analogue)")


if __name__ == "__main__":
    main()
