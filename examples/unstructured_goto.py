#!/usr/bin/env python3
"""Unstructured control flow (the paper's Section 4 motivation).

Veen & van den Born's earlier work handled only structured single-exit
loops, where syntactic analysis suffices.  This paper's construction works
on arbitrary goto spaghetti: jumps into loop bodies, multi-exit loops, and
irreducible regions (handled by code copying).  This example compiles such
programs, shows where switches were (and were not) placed, and validates
against the sequential interpreter.

Run:  python examples/unstructured_goto.py
"""

from repro.cfg import NodeKind
from repro.interp import run_ast
from repro.lang import parse
from repro.translate import compile_program, simulate

JUMP_INTO_LOOP = """
goto mid;
top: x := x + 10;
     y := y + 1;
mid: x := x + 1;
if x < 25 then goto top;
z := x + y;
"""

MULTI_EXIT = """
i := 0; s := 0;
l: i := i + 1;
   s := s + i;
   if s > 40 then goto done;
   if i < 20 then goto l;
done: r := s;
"""

# two labels jumping at each other, entered from two sides: irreducible
IRREDUCIBLE = """
k := 0;
if c == 0 then goto a;
goto b;
a: x := x + 1;
   k := k + 1;
   if k < 6 then goto b;
   goto out;
b: y := y + 1;
   k := k + 1;
   if k < 6 then goto a;
out: r := x * 100 + y;
"""


def describe(name: str, src: str, inputs: dict) -> None:
    cp = compile_program(src, schema="schema2_opt")
    res = simulate(cp, inputs)
    ref = run_ast(parse(src), inputs)
    assert res.memory == ref, (res.memory, ref)
    forks = [
        n for n in cp.cfg.nodes if cp.cfg.node(n).kind is NodeKind.FORK
    ]
    print(f"{name}:")
    print(f"  CFG: {len(cp.cfg.nodes)} nodes, {len(forks)} forks, "
          f"{len(cp.loops)} loop intervals")
    for f in forks:
        switched = sorted(cp.translation.switches.get(f, {}))
        bypassed = sorted(
            s.name for s in cp.streams if s.name not in switched
        )
        print(
            f"  fork {f} ({cp.cfg.node(f).describe()}): "
            f"switches {switched or 'none'}, bypassed {bypassed or 'none'}"
        )
    print(f"  result {res.memory} in {res.metrics.cycles} cycles "
          f"(validated against the sequential interpreter)\n")


def main() -> None:
    describe("goto into the middle of a loop", JUMP_INTO_LOOP, {})
    describe("loop with two exits", MULTI_EXIT, {})
    describe("irreducible region (code copying applied)", IRREDUCIBLE, {"c": 0})


if __name__ == "__main__":
    main()
