"""Setup shim.

The execution environment has setuptools but no ``wheel`` package, so PEP 660
editable installs (``pip install -e .``) cannot build the editable wheel.
This shim lets ``pip install -e . --no-use-pep517 --no-build-isolation`` use
the legacy ``setup.py develop`` path.  Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
