"""repro — reproduction of *From Control Flow to Dataflow*
(Beck, Johnson, Pingali; Cornell TR 89-1050 / ICPP 1990).

Translates programs in a small imperative language (unstructured control
flow, arrays, aliasing) into dataflow graphs executable on a simulated
explicit-token-store dataflow machine, via the paper's three translation
schemas and the Section 4/6 optimizations.

Quick start::

    from repro import run_source

    result = run_source('''
        x := 0;
        l: y := x + 1;
           x := x + 1;
           if x < 5 then goto l;
    ''', schema="schema2_opt")
    print(result.memory["x"], result.metrics.critical_path)
"""

__version__ = "0.1.0"

from .lang import parse

_PIPELINE_NAMES = {"CompileOptions", "compile_program", "run_source", "simulate"}


def __getattr__(name: str):
    # The pipeline facade pulls in every subpackage; load it lazily so that
    # using one layer (e.g. repro.lang alone) stays cheap.
    if name in _PIPELINE_NAMES:
        from . import pipeline_api

        return getattr(pipeline_api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CompileOptions",
    "__version__",
    "compile_program",
    "parse",
    "run_source",
    "simulate",
]
