"""Command-line front end: compile, run, inspect.

Usage::

    python -m repro run PROG.df [--schema schema2_opt] [--input x=3 ...]
                               [--mem-latency N] [--pes N] [--seed N]
                               [--parallel-reads] [--forward-stores]
                               [--parallelize-arrays] [--istructures]
    python -m repro stats PROG.df [--schema ...]       # graph inventory
    python -m repro dot PROG.df [--stage cfg|dfg] [--schema ...]
    python -m repro trace PROG.df [--schema ...] [...run options]
    python -m repro schemas                            # list schemas
"""

from __future__ import annotations

import argparse
import sys

from .cfg.dot import cfg_to_dot
from .dfg.dot import dfg_to_dot
from .dfg.stats import graph_stats
from .machine.config import MachineConfig
from .translate.pipeline import SCHEMAS, compile_program, simulate


def _add_compile_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("file", help="source file (use - for stdin)")
    p.add_argument("--schema", default="schema2_opt", choices=SCHEMAS)
    p.add_argument(
        "--cover",
        default="singletons",
        choices=("singletons", "whole", "alias_classes"),
    )
    p.add_argument("--optimize", action="store_true",
                   help="classic CFG optimizations first")
    p.add_argument("--parallel-reads", action="store_true")
    p.add_argument("--forward-stores", action="store_true")
    p.add_argument("--parallelize-arrays", action="store_true")
    p.add_argument("--istructures", action="store_true")


def _add_run_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--input",
        action="append",
        default=[],
        metavar="VAR=INT",
        help="initial scalar value (repeatable)",
    )
    p.add_argument("--mem-latency", type=int, default=2)
    p.add_argument("--pes", type=int, default=0, help="0 = unlimited")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--loop-bound", type=int, default=0, help="0 = unbounded")
    p.add_argument(
        "--net-latency", type=int, default=0,
        help="token hop cost between PEs (needs --pes)",
    )
    p.add_argument(
        "--partition", default="round_robin",
        choices=("round_robin", "block", "random"),
    )


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as f:
        return f.read()


def _compile(args) -> object:
    return compile_program(
        _read_source(args.file),
        schema=args.schema,
        cover=args.cover,
        optimize=args.optimize,
        parallel_reads=args.parallel_reads,
        forward_stores=args.forward_stores,
        parallelize_arrays=args.parallelize_arrays,
        use_istructures=args.istructures,
    )


def _config(args, trace: bool = False) -> MachineConfig:
    return MachineConfig(
        num_pes=args.pes or None,
        memory_latency=args.mem_latency,
        seed=args.seed,
        trace=trace,
        loop_bound=args.loop_bound or None,
        network_latency=args.net_latency,
        partition=args.partition,
    )


def _inputs(args) -> dict[str, int]:
    out = {}
    for item in args.input:
        var, _, value = item.partition("=")
        if not value.lstrip("-").isdigit():
            raise SystemExit(f"bad --input {item!r}: expected VAR=INT")
        out[var] = int(value)
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Imperative-to-dataflow compiler and ETS machine "
        "(Beck/Johnson/Pingali, ICPP 1990)",
    )
    subs = parser.add_subparsers(dest="command", required=True)

    p_run = subs.add_parser("run", help="compile and execute")
    _add_compile_args(p_run)
    _add_run_args(p_run)

    p_stats = subs.add_parser("stats", help="print graph inventory")
    _add_compile_args(p_stats)

    p_dot = subs.add_parser("dot", help="emit graphviz")
    _add_compile_args(p_dot)
    p_dot.add_argument("--stage", default="dfg", choices=("cfg", "dfg"))

    p_trace = subs.add_parser("trace", help="execute and dump firings")
    _add_compile_args(p_trace)
    _add_run_args(p_trace)

    subs.add_parser("schemas", help="list translation schemas")

    args = parser.parse_args(argv)

    if args.command == "schemas":
        for s in SCHEMAS:
            print(s)
        return 0

    cp = _compile(args)

    if args.command == "stats":
        st = graph_stats(cp.graph)
        print(st.summary())
        for kind, count in sorted(st.by_kind.items()):
            print(f"  {kind:12s} {count}")
        if cp.loops:
            print(f"  loops: {len(cp.loops)}")
        if cp.array_report:
            print(f"  fig14: {cp.array_report}")
        return 0

    if args.command == "dot":
        if args.stage == "cfg":
            print(cfg_to_dot(cp.cfg), end="")
        else:
            print(dfg_to_dot(cp.graph), end="")
        return 0

    res = simulate(cp, _inputs(args), _config(args, trace=args.command == "trace"))
    if args.command == "trace":
        for cyc, nid, desc, ctx in res.trace:
            print(f"{cyc:6d}  n{nid:<4d} {desc:24s} {ctx}")
    for var, value in sorted(res.memory.items()):
        print(f"{var} = {value}")
    print(f"# {res.metrics.summary()}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
