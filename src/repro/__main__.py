"""Command-line front end: compile, run, inspect.

Usage::

    python -m repro run PROG.df [--schema schema2_opt] [--input x=3 ...]
                               [--mem-latency N] [--pes N] [--seed N]
                               [--parallel-reads] [--forward-stores]
                               [--parallelize-arrays] [--istructures]
                               [--verify-passes off|cheap|full]
    python -m repro compile PROG.df [--verify-passes ...] [--json]
                                                       # certificate log
    python -m repro stats PROG.df [--schema ...]       # graph inventory
    python -m repro dot PROG.df [--stage cfg|dfg] [--schema ...]
    python -m repro trace PROG.df [--schema ...] [...run options]
    python -m repro trace PROG.df --spans              # pipeline span tree
    python -m repro schemas                            # list schemas
    python -m repro bench [--jobs N] [--cache-dir DIR] [--repeat N]
                          [--schemas s1,s2] [--programs p1,p2] [--verify]
                          [--sim-mode auto|step|fast|packed|vectorized]
    python -m repro fuzz [--seed N] [--count N] [--budget-s F]
                         [--knob k=v ...] [--minimize] [--out DIR]
                         [--no-pool] [--replay FILE] [--blame]
                         [--verify-passes off|cheap|full]  # diff oracle

Service mode (always-on compile/simulate server, JSON-lines protocol)::

    python -m repro serve --socket /tmp/repro.sock [--max-queue N]
                          [--max-batch N] [--max-wait-ms F] [--jobs N]
                          [--cache-dir DIR] [--snapshot-dir DIR]
                          [--snapshot-interval S] [--tiering]
                          [--tier-entry T] [--tier-max T]
                          [--tier-thresholds N,M] [--tier-decay-s S]
    python -m repro fleet --socket /tmp/repro.sock --shards N
                          [--replication R] [--hot-threshold N]
                          [--max-pending N] [--socket-dir DIR]
                          [--no-respawn] [...serve knobs per shard]
    python -m repro submit PROG.df --socket /tmp/repro.sock [...run options]
    python -m repro stats --socket /tmp/repro.sock     # live server stats
    python -m repro metrics --socket /tmp/repro.sock [--json]
    python -m repro tiers --socket /tmp/repro.sock [--json]  # JIT state
    python -m repro trace PROG.df --socket /tmp/repro.sock  # traced submit
    python -m repro trace --trace-id ID --socket ...   # server-held spans
    python -m repro shutdown --socket /tmp/repro.sock  # graceful drain
"""

from __future__ import annotations

import argparse
import os
import sys

from .cfg.dot import cfg_to_dot
from .dfg.dot import dfg_to_dot
from .dfg.stats import graph_stats
from .machine.config import MachineConfig
from .translate.pipeline import SCHEMAS, compile_program, simulate


def _add_compile_args(
    p: argparse.ArgumentParser, optional_file: bool = False
) -> None:
    if optional_file:
        p.add_argument("file", nargs="?", default=None,
                       help="source file (use - for stdin)")
    else:
        p.add_argument("file", help="source file (use - for stdin)")
    p.add_argument("--schema", default="schema2_opt", choices=SCHEMAS)
    p.add_argument(
        "--cover",
        default="singletons",
        choices=("singletons", "whole", "alias_classes"),
    )
    p.add_argument("--optimize", action="store_true",
                   help="classic CFG optimizations first")
    p.add_argument("--parallel-reads", action="store_true")
    p.add_argument("--forward-stores", action="store_true")
    p.add_argument("--parallelize-arrays", action="store_true")
    p.add_argument("--istructures", action="store_true")
    p.add_argument("--redundant-elim", action="store_true",
                   help="iterative redundant-switch elimination pass")
    p.add_argument(
        "--verify-passes", default="off",
        choices=("off", "cheap", "full"),
        help="check each pass's certificate as it runs",
    )
    p.add_argument(
        "--region-compile", default="off",
        choices=("off", "auto", "on"),
        help="multiresolution region compilation: partition at legal "
             "cuts, compile regions independently, stitch (auto = only "
             "for large programs)",
    )
    p.add_argument(
        "--region-target", type=int, default=64, metavar="N",
        help="statements per region before the next legal cut closes it",
    )


def _add_run_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--input",
        action="append",
        default=[],
        metavar="VAR=INT",
        help="initial scalar value (repeatable)",
    )
    p.add_argument("--mem-latency", type=int, default=2)
    p.add_argument("--pes", type=int, default=0, help="0 = unlimited")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--loop-bound", type=int, default=0, help="0 = unbounded")
    p.add_argument(
        "--net-latency", type=int, default=0,
        help="token hop cost between PEs (needs --pes)",
    )
    p.add_argument(
        "--partition", default="round_robin",
        choices=("round_robin", "block", "random"),
    )


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as f:
        return f.read()


def _options(args):
    from .translate.pipeline import CompileOptions

    return CompileOptions(
        schema=args.schema,
        cover=args.cover,
        optimize=args.optimize,
        parallel_reads=args.parallel_reads,
        forward_stores=args.forward_stores,
        parallelize_arrays=args.parallelize_arrays,
        use_istructures=args.istructures,
        redundant_elim=args.redundant_elim,
        verify_passes=args.verify_passes,
        region_compile=args.region_compile,
        region_target_stmts=args.region_target,
    )


def _compile(args) -> object:
    return compile_program(_read_source(args.file), options=_options(args))


def _config(args, trace: bool = False) -> MachineConfig:
    return MachineConfig(
        num_pes=args.pes or None,
        memory_latency=args.mem_latency,
        seed=args.seed,
        trace=trace,
        loop_bound=args.loop_bound or None,
        network_latency=args.net_latency,
        partition=args.partition,
    )


def _inputs(args) -> dict[str, int]:
    out = {}
    for item in args.input:
        var, _, value = item.partition("=")
        if not value.lstrip("-").isdigit():
            raise SystemExit(f"bad --input {item!r}: expected VAR=INT")
        out[var] = int(value)
    return out


def _bench(args) -> int:
    import time

    from .bench.harness import (
        HEADER,
        corpus_jobs,
        format_table,
        sweep_latency_line,
    )
    from .engine import run_batch

    schemas = args.schemas.split(",") if args.schemas else None
    programs = args.programs.split(",") if args.programs else None
    if schemas:
        bad = [s for s in schemas if s not in SCHEMAS]
        if bad:
            raise SystemExit(f"unknown schemas {bad}; pick from {list(SCHEMAS)}")
    config = (
        None if args.sim_mode == "auto"
        else MachineConfig(sim_mode=args.sim_mode)
    )
    jobs = corpus_jobs(programs=programs, schemas=schemas, config=config)
    if not jobs:
        raise SystemExit("no jobs selected (check --programs/--schemas)")

    # one persistent pool across repeats: repeated sweeps measure the
    # engine warm, not pool spawn + per-repeat worker re-priming
    pool = None
    if args.jobs and args.jobs > 1:
        from .engine import make_pool

        pool = make_pool(args.jobs, cache_dir=args.cache_dir)
    sweeps = []
    try:
        for rep in range(max(1, args.repeat)):
            t0 = time.perf_counter()
            results = run_batch(
                jobs, pool_size=args.jobs, cache_dir=args.cache_dir,
                pool=pool,
            )
            sweeps.append((time.perf_counter() - t0, results))
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()

    failures = [br for br in sweeps[-1][1] if not br.ok]
    for br in failures:
        print(f"# FAILED {br.name}: {br.error}", file=sys.stderr)

    if args.verify:
        from .interp.ast_interp import run_ast
        from .lang.parser import parse

        for job, br in zip(jobs, sweeps[-1][1]):
            if not br.ok:
                continue
            ref = run_ast(parse(job.source), job.inputs)
            if br.result.memory != ref:
                raise SystemExit(
                    f"{br.name}: dataflow result {br.result.memory} != "
                    f"reference {ref}"
                )

    rows = []
    for br in sweeps[-1][1]:
        if not br.ok:
            continue
        name, _, schema = br.name.partition("/")
        st, m = br.stats, br.result.metrics
        rows.append(
            [
                name,
                schema,
                st.nodes,
                st.arcs,
                st.switches,
                st.merges,
                st.synchs,
                st.memory_ops,
                m.cycles,
                m.operations,
                f"{m.avg_parallelism:.2f}",
                m.peak_parallelism,
            ]
        )
    print(format_table(HEADER, rows))
    for rep, (wall, results) in enumerate(sweeps):
        hits = sum(r.cache_hit for r in results)
        compile_s = sum(r.compile_time for r in results)
        sim_s = sum(r.sim_time for r in results)
        print(
            f"# sweep {rep}: {len(results)} jobs in {wall:.3f}s wall "
            f"(jobs={args.jobs}); compile {compile_s:.3f}s, sim {sim_s:.3f}s, "
            f"cache hits {hits}/{len(results)}",
            file=sys.stderr,
        )
        print(f"# sweep {rep}: {sweep_latency_line(results)}", file=sys.stderr)
        # which scheduler loop each job actually ran, with its sim time
        by_mode: dict[str, list[float]] = {}
        for r in results:
            if r.ok:
                by_mode.setdefault(r.result.backend, []).append(r.sim_time)
        breakdown = ", ".join(
            f"{mode}: {len(times)} jobs {sum(times):.3f}s"
            for mode, times in sorted(by_mode.items())
        )
        print(f"# sweep {rep}: sim backends — {breakdown}", file=sys.stderr)
    if args.verify:
        print("# all results match the reference interpreter", file=sys.stderr)
    return 1 if failures else 0


def _compile_cmd(args) -> int:
    """``repro compile``: compile once and print the per-pass
    certificate log (timings, verification level, metrics)."""
    from .translate.verify import CertificateError

    source = _read_source(args.file)
    options = _options(args)
    pool = None
    try:
        if options.region_compile != "off" and (
            args.jobs > 1 or args.cache_dir
        ):
            from .engine.batch import make_pool
            from .engine.cache import GraphCache

            cache = GraphCache(cache_dir=args.cache_dir)
            if args.jobs > 1:
                pool = make_pool(args.jobs, cache_dir=args.cache_dir)
                cache.region_pool = pool
            cp, _ = cache.lookup(source, options)
        else:
            cp = compile_program(source, options=options)
    except CertificateError as exc:
        where = f" [{exc.region}]" if exc.region else ""
        print(f"# certificate rejected — guilty pass: "
              f"{exc.pass_name}{where}", file=sys.stderr)
        print(f"# {exc.diff}", file=sys.stderr)
        return 1
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()
    if args.json:
        import json
        from dataclasses import asdict

        print(json.dumps([asdict(c) for c in cp.pass_log], indent=2))
        return 0
    print(f"{'pass':18s} {'ms':>8s} {'verified':>8s} {'verify ms':>10s}  metrics")
    for c in cp.pass_log:
        metrics = " ".join(f"{k}={v}" for k, v in c.metrics.items())
        print(f"{c.pass_name:18s} {c.elapsed_ms:8.2f} {c.verified:>8s} "
              f"{c.verify_ms:10.2f}  {metrics}")
    st = graph_stats(cp.graph)
    print(f"# {st.summary()}", file=sys.stderr)
    return 0


def _fuzz(args) -> int:
    from .validate import GenKnobs, RegressionFormatError, run_fuzz
    from .validate.fuzz import replay

    if args.replay:
        try:
            report = replay(args.replay)
        except RegressionFormatError as exc:
            print(f"fuzz: bad regression file: {exc}", file=sys.stderr)
            return 2
        if report.ok:
            print(f"# {args.replay}: no divergence "
                  f"({report.routes_run} routes agree)", file=sys.stderr)
            return 0
        for d in report.divergences:
            print(f"{d.kind}  {d.route} vs {d.baseline}: {d.detail}")
        return 1

    try:
        knobs = GenKnobs.from_items(args.knob)
    except ValueError as exc:
        raise SystemExit(f"fuzz: {exc}") from None

    def progress(i: int, oracle_report) -> None:
        if not oracle_report.ok:
            print(f"# seed {args.seed + i}: {oracle_report.summary()}",
                  file=sys.stderr, flush=True)
        elif (i + 1) % 25 == 0:
            print(f"# {i + 1}/{args.count} programs checked",
                  file=sys.stderr, flush=True)

    report = run_fuzz(
        seed=args.seed,
        count=args.count,
        budget_s=args.budget_s,
        knobs=knobs,
        minimize_findings=args.minimize,
        out_dir=args.out,
        pooled=not args.no_pool,
        cache_dir=args.cache_dir,
        progress=progress,
        verify_passes=args.verify_passes,
        blame=args.blame,
    )
    print(f"# fuzz: {report.summary()}", file=sys.stderr)
    hist = report.metrics.get("histograms", {}).get("fuzz.check_ms")
    if hist and hist["count"]:
        print(
            f"# check latency: n={hist['count']} "
            f"mean={hist['sum'] / hist['count']:.1f}ms",
            file=sys.stderr,
        )
    for f in report.findings:
        d = f.divergence
        blame = f"  [guilty pass: {d.guilty_pass}]" if d.guilty_pass else ""
        print(f"{f.program.name}  {d.kind}  {d.route} vs {d.baseline}: "
              f"{d.detail}{blame}")
        if f.regression_path is not None:
            via = f" via {f.minimized_via}" if f.minimized_via else ""
            print(f"  minimized to {f.minimized_lines} lines{via}: "
                  f"{f.regression_path}")
    for d in report.batch_divergences:
        print(f"batch  {d.kind}  {d.route} vs {d.baseline}: {d.detail}")
    return 0 if report.ok else 1


# -- service front ends -----------------------------------------------------


def _add_endpoint_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="UNIX socket path of the service")
    p.add_argument("--host", default="127.0.0.1",
                   help="TCP host (with --port)")
    p.add_argument("--port", type=int, default=None, help="TCP port")


def _require_endpoint(args) -> None:
    if args.socket is None and args.port is None:
        raise SystemExit(
            f"{args.command}: need --socket PATH or --port N "
            "(optionally --host)"
        )


def _client(args):
    from .service import ServiceClient

    _require_endpoint(args)
    return ServiceClient(
        path=args.socket, host=args.host, port=args.port,
        timeout=getattr(args, "timeout", None),
    )


def _parse_thresholds(text: str) -> tuple[int, ...]:
    """``"8,64"`` → ``(8, 64)`` for --tier-thresholds."""
    try:
        return tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise SystemExit(
            f"--tier-thresholds: expected comma-separated ints, got {text!r}"
        )


def _add_tiering_args(p) -> None:
    """Snapshot + adaptive-tiering flags shared by serve and fleet."""
    p.add_argument(
        "--snapshot-dir", default=None,
        help="warm-restart directory: cache entries + tier state are "
        "restored on start and snapshotted on drain",
    )
    p.add_argument(
        "--snapshot-interval", type=float, default=0.0, metavar="S",
        help="also snapshot every S seconds (0 = on drain only)",
    )
    p.add_argument(
        "--tiering", action="store_true",
        help="adaptive tiering: auto-promote hot cached graphs through "
        "the execution-tier ladder by observed hit count",
    )
    p.add_argument(
        "--tier-entry", default="fast",
        choices=("step", "fast", "packed", "vectorized"),
        help="tier a graph starts at (default fast)",
    )
    p.add_argument(
        "--tier-max", default="vectorized",
        choices=("step", "fast", "packed", "vectorized"),
        help="highest tier a graph may be promoted to",
    )
    p.add_argument(
        "--tier-thresholds", default="8,64", metavar="N,M",
        help="hit counts at which a graph climbs each rung",
    )
    p.add_argument(
        "--tier-decay-s", type=float, default=10.0,
        help="hotness half-life tick; 0 disables decay/demotion",
    )


def _serve(args) -> int:
    import asyncio
    import signal

    from .service import ServiceConfig, ServiceServer

    _require_endpoint(args)
    config = ServiceConfig(
        path=args.socket,
        host=args.host,
        port=args.port or 0,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        pool_size=args.jobs,
        cache_dir=args.cache_dir,
        snapshot_dir=args.snapshot_dir,
        snapshot_interval_s=args.snapshot_interval,
        tiering=args.tiering,
        tier_entry=args.tier_entry,
        tier_max=args.tier_max,
        tier_thresholds=_parse_thresholds(args.tier_thresholds),
        tier_decay_s=args.tier_decay_s,
    )

    async def run() -> None:
        server = ServiceServer(config)
        await server.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, server.begin_shutdown)
        print(
            f"# repro service listening on {server.endpoint} "
            f"(max_queue={config.max_queue} max_batch={config.max_batch} "
            f"max_wait_ms={config.max_wait_ms} jobs={config.pool_size})",
            file=sys.stderr,
            flush=True,
        )
        await server.serve_forever()
        print("# repro service drained and stopped", file=sys.stderr)

    asyncio.run(run())
    return 0


def _fleet(args) -> int:
    import asyncio
    import signal
    import tempfile

    from .fleet import FleetConfig, FleetRouter

    _require_endpoint(args)
    socket_dir = args.socket_dir or tempfile.mkdtemp(prefix="repro-fleet-")
    config = FleetConfig(
        path=args.socket,
        host=args.host,
        port=args.port or 0,
        shards=args.shards,
        replication=args.replication,
        hot_threshold=args.hot_threshold,
        max_pending=args.max_pending,
        respawn=not args.no_respawn,
        socket_dir=socket_dir,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        pool_size=args.jobs,
        cache_dir=args.cache_dir,
        snapshot_dir=args.snapshot_dir,
        snapshot_interval_s=args.snapshot_interval,
        tiering=args.tiering,
        tier_entry=args.tier_entry,
        tier_max=args.tier_max,
        tier_thresholds=_parse_thresholds(args.tier_thresholds),
        tier_decay_s=args.tier_decay_s,
    )

    async def run() -> None:
        router = FleetRouter(config)
        await router.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, router.begin_shutdown)
        print(
            f"# repro fleet listening on {router.endpoint}: "
            f"{config.shards} shards in {socket_dir} "
            f"(replication={config.replication} "
            f"hot_threshold={config.hot_threshold} "
            f"max_pending={config.max_pending})",
            file=sys.stderr,
            flush=True,
        )
        await router.serve_forever()
        print("# repro fleet drained and stopped", file=sys.stderr)

    asyncio.run(run())
    return 0


def _submit(args) -> int:
    from .engine import BatchJob
    from .service import JobRejected

    job = BatchJob(
        source=_read_source(args.file),
        options=_options(args),
        inputs=_inputs(args),
        config=_config(args),
        name=args.file,
    )
    with _client(args) as client:
        try:
            br = client.submit(job, deadline_ms=args.deadline_ms)
        except JobRejected as exc:
            print(f"# rejected: {exc}", file=sys.stderr)
            return 2
    if not br.ok:
        if br.traceback:
            print(br.traceback, file=sys.stderr, end="")
        print(f"# job failed: {br.error}", file=sys.stderr)
        return 1
    for var, value in sorted(br.result.memory.items()):
        print(f"{var} = {value}")
    print(f"# {br.result.metrics.summary()}", file=sys.stderr)
    print(
        f"# cache_hit={br.cache_hit} compile={br.compile_time * 1e3:.1f}ms "
        f"sim={br.sim_time * 1e3:.1f}ms",
        file=sys.stderr,
    )
    return 0


def _service_stats(args) -> int:
    with _client(args) as client:
        st = client.stats()
    if args.json:
        import json

        print(json.dumps(st, indent=2, sort_keys=True))
        return 0
    pool = "serial" if st["pool_size"] <= 1 else f"{st['pool_size']} workers"
    print(
        f"uptime {st['uptime_s']:.1f}s  queue {st['queue_depth']}"
        f"/{st['max_queue']}  in-flight {st['in_flight']}  pool {pool}  "
        f"draining {'yes' if st['draining'] else 'no'}"
    )
    print(
        f"jobs: {st['submitted']} submitted, {st['completed']} completed, "
        f"{st['failed']} failed, {st['rejected']} rejected, "
        f"{st['expired']} expired, {st['cancelled']} cancelled "
        f"({st['jobs_per_s']:.1f} jobs/s over {st['batches']} batches)"
    )
    cache = st["cache"]
    line = (
        f"cache: {cache['hit_rate'] * 100:.1f}% job hit rate "
        f"({cache['jobs_hit']}/{cache['jobs_done']})"
    )
    if "engine" in cache:
        e = cache["engine"]
        line += (
            f"; memory {e['memory_hits']} hits, {e['disk_hits']} disk, "
            f"{e['compiles']} compiles, {e['entries']} entries"
        )
    print(line)
    for stage in ("queue", "compile", "sim", "total"):
        s = st["latency_ms"][stage]
        print(
            f"latency {stage:8s} n={s['count']:<6d} "
            f"p50={s['p50']:.2f}ms p95={s['p95']:.2f}ms "
            f"p99={s['p99']:.2f}ms max={s['max']:.2f}ms"
        )
    return 0


def _trace_spans(args) -> int:
    """Span-tree tracing: locally (--spans) or through a service."""
    from .obs.trace import render_tree

    if args.socket or args.port:
        if args.trace_id:
            with _client(args) as client:
                spans = client.trace(args.trace_id)
            if not spans:
                print(f"# no spans held for trace {args.trace_id}",
                      file=sys.stderr)
                return 1
            print(render_tree(spans))
            return 0
        if args.file is None:
            raise SystemExit(
                "trace: give a source file to submit, or --trace-id for "
                "a past trace"
            )
        from .engine import BatchJob
        from .obs.trace import new_trace_id
        from .service import JobRejected

        tid = new_trace_id()
        job = BatchJob(
            source=_read_source(args.file),
            options=_options(args),
            inputs=_inputs(args),
            config=_config(args),
            name=args.file,
            trace_id=tid,
        )
        with _client(args) as client:
            try:
                br = client.submit(job)
            except JobRejected as exc:
                print(f"# rejected: {exc}", file=sys.stderr)
                return 2
        if not br.ok:
            print(f"# job failed: {br.error}", file=sys.stderr)
            return 1
        print(render_tree(br.spans))
        print(f"# trace {tid}: {len(br.spans)} spans", file=sys.stderr)
        return 0

    # local: activate a fresh trace around compile + simulate so every
    # pipeline stage span lands in one renderable tree
    from .obs.trace import activate, deactivate, new_trace_id, tracer

    if args.file is None:
        raise SystemExit("trace: need a source file")
    tid = new_trace_id()
    token = activate(tid)
    try:
        with tracer.span("cli.compile"):
            cp = _compile(args)
        with tracer.span("cli.simulate"):
            res = simulate(cp, _inputs(args), _config(args))
    finally:
        deactivate(token)
    print(render_tree(tracer.take(tid)))
    for var, value in sorted(res.memory.items()):
        print(f"# {var} = {value}", file=sys.stderr)
    print(f"# {res.metrics.summary()}", file=sys.stderr)
    return 0


def _service_metrics(args) -> int:
    with _client(args) as client:
        m = client.metrics()
    if args.json:
        import json

        print(json.dumps(m, indent=2, sort_keys=True))
        return 0
    for name, value in sorted(m["counters"].items()):
        print(f"counter    {name:32s} {value}")
    for name, value in sorted(m["gauges"].items()):
        print(f"gauge      {name:32s} {value:g}")
    for name, h in sorted(m["histograms"].items()):
        mean = h["sum"] / h["count"] if h["count"] else 0.0
        print(
            f"histogram  {name:32s} count={h['count']} "
            f"mean={mean:.3f} sum={h['sum']:.3f}"
        )
    return 0


def _service_tiers(args) -> int:
    with _client(args) as client:
        t = client.tiers()
    if args.json:
        import json

        print(json.dumps(t, indent=2, sort_keys=True))
        return 0
    if not t.get("enabled"):
        print("tiering: disabled")
    else:
        if "entry_tier" in t:
            print(
                f"tiering: {t['entry_tier']} -> {t['max_tier']} "
                f"at hits {','.join(str(x) for x in t['thresholds'])}"
            )
        print(
            f"graphs: {t.get('graphs', 0)}  "
            f"promotions {t.get('promotions', 0)}  "
            f"demotions {t.get('demotions', 0)}  "
            f"prewarms {t.get('prewarms', 0)}"
        )
        if t.get("by_tier"):
            print("by tier: " + "  ".join(
                f"{tier}={n}" for tier, n in t["by_tier"].items()
            ))
        for row in t.get("top", [])[:10]:
            shard = f" shard={row['shard']}" if "shard" in row else ""
            print(
                f"  {row['key']}  {row['tier']:<10s} "
                f"hits={row['hits']:<6d} hotness={row['hotness']:.1f} "
                f"prewarmed={'yes' if row.get('prewarmed') else 'no'}"
                f"{shard}"
            )
    snap = t.get("snapshot") or {}
    if snap.get("dir"):
        print(
            f"snapshot: dir={snap['dir']} interval={snap.get('interval_s')}s"
            + (
                f" writes={snap['writes']} restored={snap['restored']}"
                if "writes" in snap
                else ""
            )
        )
    return 0


def _shutdown(args) -> int:
    with _client(args) as client:
        draining = client.shutdown()
    print(f"# shutdown acknowledged, {draining} jobs draining",
          file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Imperative-to-dataflow compiler and ETS machine "
        "(Beck/Johnson/Pingali, ICPP 1990)",
    )
    subs = parser.add_subparsers(dest="command", required=True)

    p_run = subs.add_parser("run", help="compile and execute")
    _add_compile_args(p_run)
    _add_run_args(p_run)

    p_compile = subs.add_parser(
        "compile",
        help="compile only and print the per-pass certificate log",
    )
    _add_compile_args(p_compile)
    p_compile.add_argument("--json", action="store_true",
                           help="certificate log as raw JSON")
    p_compile.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for region-compile fan-out "
             "(with --region-compile auto|on)",
    )
    p_compile.add_argument(
        "--cache-dir", default=None,
        help="disk tier for memoized region/whole-program graphs",
    )

    p_stats = subs.add_parser(
        "stats",
        help="graph inventory for a source file, or live service stats "
        "with --socket/--port",
    )
    _add_compile_args(p_stats, optional_file=True)
    _add_endpoint_args(p_stats)
    p_stats.add_argument("--json", action="store_true",
                         help="service stats as raw JSON")
    p_stats.add_argument("--timeout", type=float, default=10.0,
                         help="service RPC timeout (seconds)")

    p_dot = subs.add_parser("dot", help="emit graphviz")
    _add_compile_args(p_dot)
    p_dot.add_argument("--stage", default="dfg", choices=("cfg", "dfg"))

    p_trace = subs.add_parser(
        "trace",
        help="execute and dump firings; --spans renders the pipeline "
        "span tree instead, --socket/--port traces through a service",
    )
    _add_compile_args(p_trace, optional_file=True)
    _add_run_args(p_trace)
    _add_endpoint_args(p_trace)
    p_trace.add_argument("--spans", action="store_true",
                         help="render compile/simulate spans as a tree")
    p_trace.add_argument("--trace-id", default=None, metavar="ID",
                         help="fetch a past trace from the service")
    p_trace.add_argument("--timeout", type=float, default=60.0,
                         help="socket timeout (seconds)")

    subs.add_parser("schemas", help="list translation schemas")

    p_bench = subs.add_parser(
        "bench",
        help="batch corpus sweep through the engine (cache + process pool)",
    )
    p_bench.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = serial in-process)",
    )
    p_bench.add_argument(
        "--cache-dir", default=None,
        help="on-disk compiled-graph cache shared across runs and workers",
    )
    p_bench.add_argument(
        "--repeat", type=int, default=1,
        help="sweep repetitions (2+ shows warm-cache speedup)",
    )
    p_bench.add_argument(
        "--schemas", default=None, metavar="S1,S2",
        help="comma-separated schema subset (default: all legal per program)",
    )
    p_bench.add_argument(
        "--programs", default=None, metavar="P1,P2",
        help="comma-separated corpus program subset",
    )
    p_bench.add_argument(
        "--verify", action="store_true",
        help="check every result against the reference interpreter",
    )
    p_bench.add_argument(
        "--sim-mode", default="auto",
        choices=("auto", "step", "fast", "packed", "vectorized"),
        help="scheduler loop for every job (auto = vectorized where exact)",
    )

    p_fuzz = subs.add_parser(
        "fuzz",
        help="differential fuzzing: generated programs through every "
        "semantic route, divergences minimized into regression repros",
    )
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="base seed; program i uses seed+i")
    p_fuzz.add_argument("--count", type=int, default=100,
                        help="programs to generate and check")
    p_fuzz.add_argument("--budget-s", type=float, default=None,
                        help="wall-clock budget; stop generating past it")
    p_fuzz.add_argument(
        "--knob", action="append", default=[], metavar="K=V",
        help="generator knob override, e.g. --knob n_stmts=20 "
        "--knob irreducible=0.5 (repeatable)",
    )
    p_fuzz.add_argument("--minimize", action="store_true",
                        help="ddmin-shrink each divergence and persist it")
    p_fuzz.add_argument("--out", default=None, metavar="DIR",
                        help="where minimized repros land "
                        "(default tests/corpus/regressions/)")
    p_fuzz.add_argument("--no-pool", action="store_true",
                        help="skip the serial-vs-pooled batch route")
    p_fuzz.add_argument("--cache-dir", default=None,
                        help="disk tier for the cached-route check")
    p_fuzz.add_argument("--replay", default=None, metavar="FILE",
                        help="re-run the oracle on one regression file")
    p_fuzz.add_argument(
        "--verify-passes", default="off",
        choices=("off", "cheap", "full"),
        help="per-pass certificate checking during the oracle's compiles",
    )
    p_fuzz.add_argument(
        "--blame", action="store_true",
        help="recompile findings with full pass verification to label "
        "the guilty pass; minimize against that pass's verifier",
    )

    p_serve = subs.add_parser(
        "serve",
        help="run the always-on compile/simulate service "
        "(UNIX socket or TCP, JSON-lines protocol)",
    )
    _add_endpoint_args(p_serve)
    p_serve.add_argument(
        "--max-queue", type=int, default=64,
        help="waiting-job bound; beyond it submits get queue_full",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=8,
        help="flush a micro-batch at this many jobs",
    )
    p_serve.add_argument(
        "--max-wait-ms", type=float, default=5.0,
        help="flush a partial micro-batch after this long",
    )
    p_serve.add_argument(
        "--jobs", type=int, default=1,
        help="persistent engine workers (1 = serial in-process)",
    )
    p_serve.add_argument(
        "--cache-dir", default=None,
        help="on-disk compiled-graph cache shared with other runs",
    )
    _add_tiering_args(p_serve)

    p_fleet = subs.add_parser(
        "fleet",
        help="run a consistent-hash router over N backend shard servers "
        "(same wire protocol as serve; existing clients work unchanged)",
    )
    _add_endpoint_args(p_fleet)
    p_fleet.add_argument(
        "--shards", type=int, default=2,
        help="backend server processes to spawn and route over",
    )
    p_fleet.add_argument(
        "--replication", type=int, default=2,
        help="ring successors a hot graph may be served from",
    )
    p_fleet.add_argument(
        "--hot-threshold", type=int, default=4,
        help="routings of one graph key before it counts as hot",
    )
    p_fleet.add_argument(
        "--max-pending", type=int, default=128,
        help="per-shard outstanding-job bound at the router; beyond it "
        "submits get queue_full",
    )
    p_fleet.add_argument(
        "--socket-dir", default=None,
        help="directory for shard sockets and logs (default: a fresh "
        "temp dir)",
    )
    p_fleet.add_argument(
        "--no-respawn", action="store_true",
        help="do not restart a crashed shard (default is to respawn)",
    )
    p_fleet.add_argument(
        "--max-queue", type=int, default=64,
        help="per-shard waiting-job bound (passed to each shard)",
    )
    p_fleet.add_argument(
        "--max-batch", type=int, default=8,
        help="per-shard micro-batch size",
    )
    p_fleet.add_argument(
        "--max-wait-ms", type=float, default=5.0,
        help="per-shard micro-batch flush timeout",
    )
    p_fleet.add_argument(
        "--jobs", type=int, default=1,
        help="engine workers per shard (1 = serial in-process)",
    )
    p_fleet.add_argument(
        "--cache-dir", default=None,
        help="disk cache shared by all shards (atomic content-addressed "
             "writes); respawned shards come back warm",
    )
    _add_tiering_args(p_fleet)

    p_submit = subs.add_parser(
        "submit", help="compile and run one program on a running service"
    )
    _add_compile_args(p_submit)
    _add_run_args(p_submit)
    _add_endpoint_args(p_submit)
    p_submit.add_argument(
        "--deadline-ms", type=float, default=None,
        help="submit-to-result deadline; expiry returns an error",
    )
    p_submit.add_argument("--timeout", type=float, default=60.0,
                          help="socket timeout (seconds)")

    p_metrics = subs.add_parser(
        "metrics",
        help="metrics-registry snapshot from a running service "
        "(counters, gauges, histograms)",
    )
    _add_endpoint_args(p_metrics)
    p_metrics.add_argument("--json", action="store_true",
                           help="raw JSON snapshot")
    p_metrics.add_argument("--timeout", type=float, default=10.0,
                           help="socket timeout (seconds)")

    p_tiers = subs.add_parser(
        "tiers",
        help="adaptive-tiering state of a running service or fleet "
        "(ladder, hottest graphs, promotion counts, snapshot status)",
    )
    _add_endpoint_args(p_tiers)
    p_tiers.add_argument("--json", action="store_true",
                         help="raw JSON snapshot")
    p_tiers.add_argument("--timeout", type=float, default=10.0,
                         help="socket timeout (seconds)")

    p_shutdown = subs.add_parser(
        "shutdown", help="gracefully drain and stop a running service"
    )
    _add_endpoint_args(p_shutdown)
    p_shutdown.add_argument("--timeout", type=float, default=10.0,
                            help="socket timeout (seconds)")

    args = parser.parse_args(argv)

    if args.command == "schemas":
        for s in SCHEMAS:
            print(s)
        return 0

    if args.command == "bench":
        return _bench(args)
    if args.command == "compile":
        return _compile_cmd(args)
    if args.command == "fuzz":
        return _fuzz(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "fleet":
        return _fleet(args)
    if args.command == "submit":
        return _submit(args)
    if args.command == "shutdown":
        return _shutdown(args)
    if args.command == "metrics":
        return _service_metrics(args)
    if args.command == "tiers":
        return _service_tiers(args)
    if args.command == "stats" and (args.socket or args.port):
        return _service_stats(args)
    if args.command == "stats" and args.file is None:
        raise SystemExit(
            "stats: give a source file for a graph inventory, or "
            "--socket/--port for live service stats"
        )
    if args.command == "trace" and (
        args.spans or args.socket or args.port
    ):
        return _trace_spans(args)
    if args.command == "trace" and args.file is None:
        raise SystemExit("trace: need a source file")

    cp = _compile(args)

    if args.command == "stats":
        st = graph_stats(cp.graph)
        print(st.summary())
        for kind, count in sorted(st.by_kind.items()):
            print(f"  {kind:12s} {count}")
        if cp.loops:
            print(f"  loops: {len(cp.loops)}")
        if cp.array_report:
            print(f"  fig14: {cp.array_report}")
        return 0

    if args.command == "dot":
        if args.stage == "cfg":
            print(cfg_to_dot(cp.cfg), end="")
        else:
            print(dfg_to_dot(cp.graph), end="")
        return 0

    res = simulate(cp, _inputs(args), _config(args, trace=args.command == "trace"))
    if args.command == "trace":
        for cyc, nid, desc, ctx in res.trace:
            print(f"{cyc:6d}  n{nid:<4d} {desc:24s} {ctx}")
    for var, value in sorted(res.memory.items()):
        print(f"{var} = {value}")
    print(f"# {res.metrics.summary()}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # downstream pager/head closed the pipe; exit quietly like a
        # well-behaved filter (devnull swallows the flush at shutdown)
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)
