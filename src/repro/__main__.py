"""Command-line front end: compile, run, inspect.

Usage::

    python -m repro run PROG.df [--schema schema2_opt] [--input x=3 ...]
                               [--mem-latency N] [--pes N] [--seed N]
                               [--parallel-reads] [--forward-stores]
                               [--parallelize-arrays] [--istructures]
    python -m repro stats PROG.df [--schema ...]       # graph inventory
    python -m repro dot PROG.df [--stage cfg|dfg] [--schema ...]
    python -m repro trace PROG.df [--schema ...] [...run options]
    python -m repro schemas                            # list schemas
    python -m repro bench [--jobs N] [--cache-dir DIR] [--repeat N]
                          [--schemas s1,s2] [--programs p1,p2] [--verify]
"""

from __future__ import annotations

import argparse
import sys

from .cfg.dot import cfg_to_dot
from .dfg.dot import dfg_to_dot
from .dfg.stats import graph_stats
from .machine.config import MachineConfig
from .translate.pipeline import SCHEMAS, compile_program, simulate


def _add_compile_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("file", help="source file (use - for stdin)")
    p.add_argument("--schema", default="schema2_opt", choices=SCHEMAS)
    p.add_argument(
        "--cover",
        default="singletons",
        choices=("singletons", "whole", "alias_classes"),
    )
    p.add_argument("--optimize", action="store_true",
                   help="classic CFG optimizations first")
    p.add_argument("--parallel-reads", action="store_true")
    p.add_argument("--forward-stores", action="store_true")
    p.add_argument("--parallelize-arrays", action="store_true")
    p.add_argument("--istructures", action="store_true")


def _add_run_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--input",
        action="append",
        default=[],
        metavar="VAR=INT",
        help="initial scalar value (repeatable)",
    )
    p.add_argument("--mem-latency", type=int, default=2)
    p.add_argument("--pes", type=int, default=0, help="0 = unlimited")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--loop-bound", type=int, default=0, help="0 = unbounded")
    p.add_argument(
        "--net-latency", type=int, default=0,
        help="token hop cost between PEs (needs --pes)",
    )
    p.add_argument(
        "--partition", default="round_robin",
        choices=("round_robin", "block", "random"),
    )


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as f:
        return f.read()


def _compile(args) -> object:
    return compile_program(
        _read_source(args.file),
        schema=args.schema,
        cover=args.cover,
        optimize=args.optimize,
        parallel_reads=args.parallel_reads,
        forward_stores=args.forward_stores,
        parallelize_arrays=args.parallelize_arrays,
        use_istructures=args.istructures,
    )


def _config(args, trace: bool = False) -> MachineConfig:
    return MachineConfig(
        num_pes=args.pes or None,
        memory_latency=args.mem_latency,
        seed=args.seed,
        trace=trace,
        loop_bound=args.loop_bound or None,
        network_latency=args.net_latency,
        partition=args.partition,
    )


def _inputs(args) -> dict[str, int]:
    out = {}
    for item in args.input:
        var, _, value = item.partition("=")
        if not value.lstrip("-").isdigit():
            raise SystemExit(f"bad --input {item!r}: expected VAR=INT")
        out[var] = int(value)
    return out


def _bench(args) -> int:
    import time

    from .bench.harness import HEADER, corpus_jobs, format_table
    from .engine import run_batch

    schemas = args.schemas.split(",") if args.schemas else None
    programs = args.programs.split(",") if args.programs else None
    if schemas:
        bad = [s for s in schemas if s not in SCHEMAS]
        if bad:
            raise SystemExit(f"unknown schemas {bad}; pick from {list(SCHEMAS)}")
    jobs = corpus_jobs(programs=programs, schemas=schemas)
    if not jobs:
        raise SystemExit("no jobs selected (check --programs/--schemas)")

    sweeps = []
    for rep in range(max(1, args.repeat)):
        t0 = time.perf_counter()
        results = run_batch(
            jobs, pool_size=args.jobs, cache_dir=args.cache_dir
        )
        sweeps.append((time.perf_counter() - t0, results))

    if args.verify:
        from .interp.ast_interp import run_ast
        from .lang.parser import parse

        for job, br in zip(jobs, sweeps[-1][1]):
            ref = run_ast(parse(job.source), job.inputs)
            if br.result.memory != ref:
                raise SystemExit(
                    f"{br.name}: dataflow result {br.result.memory} != "
                    f"reference {ref}"
                )

    rows = []
    for br in sweeps[-1][1]:
        name, _, schema = br.name.partition("/")
        st, m = br.stats, br.result.metrics
        rows.append(
            [
                name,
                schema,
                st.nodes,
                st.arcs,
                st.switches,
                st.merges,
                st.synchs,
                st.memory_ops,
                m.cycles,
                m.operations,
                f"{m.avg_parallelism:.2f}",
                m.peak_parallelism,
            ]
        )
    print(format_table(HEADER, rows))
    for rep, (wall, results) in enumerate(sweeps):
        hits = sum(r.cache_hit for r in results)
        compile_s = sum(r.compile_time for r in results)
        sim_s = sum(r.sim_time for r in results)
        print(
            f"# sweep {rep}: {len(results)} jobs in {wall:.3f}s wall "
            f"(jobs={args.jobs}); compile {compile_s:.3f}s, sim {sim_s:.3f}s, "
            f"cache hits {hits}/{len(results)}",
            file=sys.stderr,
        )
    if args.verify:
        print("# all results match the reference interpreter", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Imperative-to-dataflow compiler and ETS machine "
        "(Beck/Johnson/Pingali, ICPP 1990)",
    )
    subs = parser.add_subparsers(dest="command", required=True)

    p_run = subs.add_parser("run", help="compile and execute")
    _add_compile_args(p_run)
    _add_run_args(p_run)

    p_stats = subs.add_parser("stats", help="print graph inventory")
    _add_compile_args(p_stats)

    p_dot = subs.add_parser("dot", help="emit graphviz")
    _add_compile_args(p_dot)
    p_dot.add_argument("--stage", default="dfg", choices=("cfg", "dfg"))

    p_trace = subs.add_parser("trace", help="execute and dump firings")
    _add_compile_args(p_trace)
    _add_run_args(p_trace)

    subs.add_parser("schemas", help="list translation schemas")

    p_bench = subs.add_parser(
        "bench",
        help="batch corpus sweep through the engine (cache + process pool)",
    )
    p_bench.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = serial in-process)",
    )
    p_bench.add_argument(
        "--cache-dir", default=None,
        help="on-disk compiled-graph cache shared across runs and workers",
    )
    p_bench.add_argument(
        "--repeat", type=int, default=1,
        help="sweep repetitions (2+ shows warm-cache speedup)",
    )
    p_bench.add_argument(
        "--schemas", default=None, metavar="S1,S2",
        help="comma-separated schema subset (default: all legal per program)",
    )
    p_bench.add_argument(
        "--programs", default=None, metavar="P1,P2",
        help="comma-separated corpus program subset",
    )
    p_bench.add_argument(
        "--verify", action="store_true",
        help="check every result against the reference interpreter",
    )

    args = parser.parse_args(argv)

    if args.command == "schemas":
        for s in SCHEMAS:
            print(s)
        return 0

    if args.command == "bench":
        return _bench(args)

    cp = _compile(args)

    if args.command == "stats":
        st = graph_stats(cp.graph)
        print(st.summary())
        for kind, count in sorted(st.by_kind.items()):
            print(f"  {kind:12s} {count}")
        if cp.loops:
            print(f"  loops: {len(cp.loops)}")
        if cp.array_report:
            print(f"  fig14: {cp.array_report}")
        return 0

    if args.command == "dot":
        if args.stage == "cfg":
            print(cfg_to_dot(cp.cfg), end="")
        else:
            print(dfg_to_dot(cp.graph), end="")
        return 0

    res = simulate(cp, _inputs(args), _config(args, trace=args.command == "trace"))
    if args.command == "trace":
        for cyc, nid, desc, ctx in res.trace:
            print(f"{cyc:6d}  n{nid:<4d} {desc:24s} {ctx}")
    for var, value in sorted(res.memory.items()):
        print(f"{var} = {value}")
    print(f"# {res.metrics.summary()}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
