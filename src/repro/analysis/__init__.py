"""Program analyses over control-flow graphs.

* :mod:`dominance` — dominators, postdominators, dominator trees, dominance
  frontiers (the paper's Section 4.1 footnote 6).
* :mod:`control_dep` — control dependence (Definition 4), iterated control
  dependence ``CD+`` (Definition 5), and brute-force oracles for Theorem 1.
* :mod:`framework` — generic forward/backward worklist dataflow solver with
  reaching definitions, liveness, and def-use chains built on it.
* :mod:`alias` — alias structures (Definition 6), covers and access sets
  (Definition 7, Section 5).
* :mod:`array_dep` — subscript analysis (ZIV/SIV/GCD tests) gating the
  Section 6.3 array store parallelization.
* :mod:`ssa` — static single assignment construction, used to exhibit the
  Section 6.1 connection between memory elimination and SSA.
"""

from .dominance import DomTree, dominator_tree, postdominator_tree
from .control_dep import (
    between_brute_force,
    cd_plus,
    cd_plus_of_set,
    control_dependence,
    control_dependence_directed,
)
from .framework import (
    DefUse,
    def_use_chains,
    liveness,
    reaching_definitions,
    solve_dataflow,
)
from .alias import AliasStructure, Cover, access_set  # noqa: F401
from .array_dep import (
    AffineSubscript,
    basic_induction_variables,
    extract_affine,
    gcd_test,
    store_is_iteration_independent,
)
from .pdg import PDG, DepEdge, DepKind, build_pdg, memory_order_constraints
from .ssa import SSAProgram, construct_ssa

__all__ = [
    "AffineSubscript",
    "AliasStructure",
    "Cover",
    "DefUse",
    "DepEdge",
    "DepKind",
    "DomTree",
    "PDG",
    "build_pdg",
    "memory_order_constraints",
    "SSAProgram",
    "access_set",
    "basic_induction_variables",
    "between_brute_force",
    "cd_plus",
    "cd_plus_of_set",
    "construct_ssa",
    "control_dependence",
    "control_dependence_directed",
    "def_use_chains",
    "dominator_tree",
    "extract_affine",
    "gcd_test",
    "liveness",
    "postdominator_tree",
    "reaching_definitions",
    "solve_dataflow",
    "store_is_iteration_independent",
]
