"""Alias structures and covers — Section 5.

Definition 6: an alias structure over a set of variable names ``V`` is a
pair ``(V, ~)`` with ``~`` a reflexive, symmetric binary relation.  The
alias *class* ``[x]`` is the set of names that may denote ``x``'s location.
Note the paper's FORTRAN example: the relation is deliberately NOT
transitive (``X ~ Z`` and ``Y ~ Z`` but not ``X ~ Y``), so alias classes
are neighbor sets, not equivalence classes.

Definition 7: a *cover* is a collection of subsets of ``V`` whose union is
``V``.  Each access token denotes one cover element; a memory operation on
``x`` must collect every token whose element intersects ``[x]`` — the
*access set* ``C[x]``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.ast_nodes import Program


@dataclass(frozen=True)
class AliasStructure:
    """The pair (V, ~) of Definition 6.

    ``pairs`` holds the symmetric closure of the declared aliasing pairs
    (excluding the reflexive diagonal, which is implicit).
    """

    variables: tuple[str, ...]
    pairs: frozenset[tuple[str, str]] = frozenset()

    @staticmethod
    def from_program(prog: Program) -> "AliasStructure":
        """Build the alias structure from ``alias (a, b, ...)`` declarations:
        each declaration makes its names mutually aliased."""
        # Note Program.variables() includes alias-declared names: declaring
        # an alias makes a name a program variable even if never referenced
        # (like an unused FORTRAN reference parameter).
        variables = tuple(prog.variables())
        pairs: set[tuple[str, str]] = set()
        for group in prog.alias_groups:
            for i, a in enumerate(group):
                for b in group[i + 1 :]:
                    if a != b:
                        pairs.add((a, b))
                        pairs.add((b, a))
        return AliasStructure(variables, frozenset(pairs))

    @staticmethod
    def trivial(variables: tuple[str, ...] | list[str]) -> "AliasStructure":
        """No aliasing: every class is a singleton."""
        return AliasStructure(tuple(variables))

    def related(self, a: str, b: str) -> bool:
        """The alias relation ~ (reflexive, symmetric)."""
        return a == b or (a, b) in self.pairs

    def alias_class(self, x: str) -> frozenset[str]:
        """``[x]`` — every name possibly denoting ``x``'s location."""
        if x not in self.variables:
            raise KeyError(x)
        return frozenset(v for v in self.variables if self.related(x, v))

    def is_unaliased(self, x: str) -> bool:
        return self.alias_class(x) == {x}

    def validate(self) -> None:
        for a, b in self.pairs:
            if (b, a) not in self.pairs:
                raise ValueError(f"alias relation not symmetric: {(a, b)}")
            if a not in self.variables or b not in self.variables:
                raise ValueError(f"alias pair {(a, b)} names unknown variables")


@dataclass(frozen=True)
class Cover:
    """A cover of an alias structure (Definition 7).

    ``elements`` are the cover elements; each access token in Schema 3
    corresponds to one element.
    """

    alias: AliasStructure
    elements: tuple[frozenset[str], ...]

    def __post_init__(self) -> None:
        union: set[str] = set()
        for el in self.elements:
            if not el:
                raise ValueError("empty cover element")
            union |= el
        if union != set(self.alias.variables):
            missing = set(self.alias.variables) - union
            extra = union - set(self.alias.variables)
            raise ValueError(
                f"not a cover: missing {sorted(missing)}, extraneous {sorted(extra)}"
            )

    # -- canonical covers --------------------------------------------------

    @staticmethod
    def singletons(alias: AliasStructure) -> "Cover":
        """One element per variable — maximizes parallelism; an operation on
        ``x`` must collect |[x]| tokens."""
        return Cover(alias, tuple(frozenset({v}) for v in alias.variables))

    @staticmethod
    def whole(alias: AliasStructure) -> "Cover":
        """The single element V — minimizes synchronization (one token per
        operation) at the cost of all cross-variable parallelism; this makes
        Schema 3 degenerate to Schema 1's single access token."""
        return Cover(alias, (frozenset(alias.variables),))

    @staticmethod
    def alias_classes(alias: AliasStructure) -> "Cover":
        """One element per distinct alias class.  Unaliased variables get
        singleton tokens (full parallelism among them); aliased clusters
        share, reducing synch-tree arity versus singletons."""
        seen: dict[frozenset[str], None] = {}
        for v in alias.variables:
            seen.setdefault(alias.alias_class(v), None)
        # drop classes strictly contained in another (they add tokens
        # without separating any locations)
        classes = list(seen)
        kept = [
            c
            for c in classes
            if not any(c < other for other in classes)
        ]
        return Cover(alias, tuple(kept))

    # -- access sets ---------------------------------------------------------

    def access_set(self, x: str) -> tuple[frozenset[str], ...]:
        """``C[x]``: the cover elements intersecting the alias class of
        ``x`` — the access tokens an operation on ``x`` must collect."""
        cls = self.alias.alias_class(x)
        return tuple(el for el in self.elements if el & cls)

    def synch_cost(self, x: str) -> int:
        """Number of tokens collected per memory operation on ``x``."""
        return len(self.access_set(x))

    def element_index(self) -> dict[frozenset[str], int]:
        return {el: i for i, el in enumerate(self.elements)}

    def token_names(self) -> list[str]:
        """Stable printable names for the access tokens, one per element."""
        return ["+".join(sorted(el)) for el in self.elements]


def access_set(cover: Cover, x: str) -> tuple[frozenset[str], ...]:
    """Module-level convenience mirroring the paper's ``C[x]`` notation."""
    return cover.access_set(x)
