"""Array subscript dependence analysis (Section 6.3).

The paper parallelizes stores like ``x[i] := 1`` across loop iterations when
"standard disambiguation techniques such as subscript analysis" show the
stores independent.  This module provides the standard machinery for that
decision on our language:

* detection of *basic induction variables* (``i := i + c`` once per
  iteration),
* extraction of subscripts *affine* in the induction variable
  (``a*i + b`` with loop-invariant ``b``),
* the ZIV/SIV GCD dependence test between two affine subscripts,
* the legality predicates used by the Figure 14 transform and the
  write-once/I-structure variant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cfg.graph import CFG, NodeKind
from ..cfg.intervals import Loop
from ..lang.ast_nodes import ArrayRef, BinOp, Expr, IntLit, UnOp, Var
from .dominance import dominator_tree


@dataclass(frozen=True)
class AffineSubscript:
    """``coeff * iv + offset`` with a loop-invariant integer offset."""

    iv: str
    coeff: int
    offset: int

    def at(self, i: int) -> int:
        return self.coeff * i + self.offset


def _const_value(e: Expr) -> int | None:
    """Evaluate an expression to an integer constant if possible."""
    if isinstance(e, IntLit):
        return e.value
    if isinstance(e, UnOp) and e.op == "-":
        v = _const_value(e.operand)
        return None if v is None else -v
    if isinstance(e, BinOp):
        a, b = _const_value(e.left), _const_value(e.right)
        if a is None or b is None:
            return None
        if e.op == "+":
            return a + b
        if e.op == "-":
            return a - b
        if e.op == "*":
            return a * b
    return None


def extract_affine(e: Expr, iv: str) -> AffineSubscript | None:
    """Write ``e`` as ``a*iv + b`` with integer constants, or None.

    Conservative: any appearance of a variable other than ``iv`` makes the
    expression non-affine (we do not track loop-invariant symbolics).
    """

    def walk(x: Expr) -> tuple[int, int] | None:  # (coeff, offset)
        if isinstance(x, IntLit):
            return (0, x.value)
        if isinstance(x, Var):
            return (1, 0) if x.name == iv else None
        if isinstance(x, UnOp) and x.op == "-":
            r = walk(x.operand)
            return None if r is None else (-r[0], -r[1])
        if isinstance(x, BinOp):
            l, r = walk(x.left), walk(x.right)
            if l is None or r is None:
                return None
            if x.op == "+":
                return (l[0] + r[0], l[1] + r[1])
            if x.op == "-":
                return (l[0] - r[0], l[1] - r[1])
            if x.op == "*":
                # at least one side must be constant
                if l[0] == 0:
                    return (l[1] * r[0], l[1] * r[1])
                if r[0] == 0:
                    return (l[0] * r[1], l[1] * r[1])
                return None
        return None

    res = walk(e)
    if res is None:
        return None
    return AffineSubscript(iv, res[0], res[1])


def basic_induction_variables(cfg: CFG, loop: Loop) -> dict[str, int]:
    """Variables with exactly one definition in the loop body, of the form
    ``v := v + c`` or ``v := v - c`` (``c`` a constant), where the defining
    node executes on every trip around the loop (it dominates every backedge
    source).  Maps the variable to its per-iteration step."""
    dom = dominator_tree(cfg)
    candidates: dict[str, tuple[int, int]] = {}  # var -> (node, step)
    rejected: set[str] = set()
    for nid in loop.body:
        node = cfg.node(nid)
        if node.kind is not NodeKind.ASSIGN:
            continue
        for v in node.stores():
            if v in rejected:
                continue
            if v in candidates:
                rejected.add(v)
                del candidates[v]
                continue
            step = _induction_step(node.target, node.expr)
            if step is None:
                rejected.add(v)
            else:
                candidates[v] = (nid, step)
    out: dict[str, int] = {}
    for v, (nid, step) in candidates.items():
        if all(dom.dominates(nid, b) for b in loop.back_sources):
            out[v] = step
    return out


def _induction_step(target, expr: Expr) -> int | None:
    """Match ``v := v + c`` / ``v := v - c`` / ``v := c + v``."""
    if not isinstance(target, Var):
        return None
    v = target.name
    if isinstance(expr, BinOp) and expr.op in ("+", "-"):
        if isinstance(expr.left, Var) and expr.left.name == v:
            c = _const_value(expr.right)
            if c is not None:
                return c if expr.op == "+" else -c
        if (
            expr.op == "+"
            and isinstance(expr.right, Var)
            and expr.right.name == v
        ):
            c = _const_value(expr.left)
            if c is not None:
                return c
    return None


def gcd_test(a: AffineSubscript, b: AffineSubscript) -> bool:
    """True iff a dependence between the two subscripts is *possible*
    (conservative).  Solves ``a.coeff*i - b.coeff*j = b.offset - a.offset``
    for integers: solvable iff gcd(coeffs) divides the offset difference."""
    g = math.gcd(abs(a.coeff), abs(b.coeff))
    diff = b.offset - a.offset
    if g == 0:
        return diff == 0
    return diff % g == 0


def array_references_in_loop(
    cfg: CFG, loop: Loop, array: str
) -> tuple[list[int], list[int]]:
    """(store_nodes, load_nodes) touching ``array`` inside the loop body."""
    stores: list[int] = []
    loads: list[int] = []

    def expr_reads_array(e: Expr) -> bool:
        if isinstance(e, ArrayRef):
            return e.name == array or expr_reads_array(e.index)
        if isinstance(e, BinOp):
            return expr_reads_array(e.left) or expr_reads_array(e.right)
        if isinstance(e, UnOp):
            return expr_reads_array(e.operand)
        return False

    for nid in sorted(loop.body):
        node = cfg.node(nid)
        if node.kind is NodeKind.ASSIGN:
            if isinstance(node.target, ArrayRef) and node.target.name == array:
                stores.append(nid)
                if expr_reads_array(node.target.index):
                    loads.append(nid)
            if expr_reads_array(node.expr):
                loads.append(nid)
        elif node.kind is NodeKind.FORK and expr_reads_array(node.pred):
            loads.append(nid)
    return stores, loads


def store_is_iteration_independent(cfg: CFG, loop: Loop, store_node: int) -> bool:
    """The Figure 14 legality condition for pipelining a store across
    iterations:

    * the store's subscript is affine ``a*iv + b`` in a basic induction
      variable with ``a != 0`` (distinct iterations write distinct
      elements), and
    * no other node in the loop references the array (conservatively,
      including reads — read/write forwarding is the separate Section 6.2
      transform).
    """
    node = cfg.node(store_node)
    if node.kind is not NodeKind.ASSIGN or not isinstance(node.target, ArrayRef):
        return False
    array = node.target.name
    stores, loads = array_references_in_loop(cfg, loop, array)
    if stores != [store_node] or loads:
        return False
    ivs = basic_induction_variables(cfg, loop)
    for iv, step in ivs.items():
        if step == 0:
            continue
        aff = extract_affine(node.target.index, iv)
        if aff is not None and aff.coeff != 0:
            return True
    return False


def array_is_write_once(cfg: CFG, loops: list[Loop], array: str) -> bool:
    """Detect the Section 6.3 "write-once" pattern: every store to ``array``
    is a single iteration-independent store in some loop, and no store to it
    exists outside loops.  Such arrays can live in I-structure memory, where
    reads and writes proceed concurrently."""
    store_nodes = [
        nid
        for nid, node in cfg.nodes.items()
        if node.kind is NodeKind.ASSIGN
        and isinstance(node.target, ArrayRef)
        and node.target.name == array
    ]
    if not store_nodes:
        return True
    in_some_loop = set()
    for lp in loops:
        for nid in store_nodes:
            if nid in lp.body and store_is_iteration_independent(cfg, lp, nid):
                in_some_loop.add(nid)
    return set(store_nodes) == in_some_loop
