"""Control dependence and iterated control dependence (Section 4.1).

Definition 4: ``N`` is control dependent on ``F`` iff there is a non-null
path ``F => N`` such that ``N`` postdominates every node after ``F`` on the
path, and ``N`` does not strictly postdominate ``F``.

Computed the standard way (Ferrante–Ottenstein–Warren): for each edge
``F -(d)-> S`` where ``F`` is a fork and ``S`` is not an ancestor of ``F``
in the postdominator tree, every node on the postdominator-tree path from
``S`` up to (but excluding) ``ipostdom(F)`` is control dependent on ``F``
with branch direction ``d``.

Definition 5: ``CD+`` is the transitive closure under "control dependence of
the controlling forks"; Theorem 1 shows ``F ∈ CD+(N)`` iff ``N`` lies
*between* ``F`` and its immediate postdominator.  :func:`between_brute_force`
checks the latter directly by path search, giving an independent oracle.
"""

from __future__ import annotations

from collections import deque

from ..cfg.graph import CFG
from .dominance import DomTree, postdominator_tree


def control_dependence_directed(
    cfg: CFG, pdom: DomTree | None = None
) -> dict[int, set[tuple[int, bool]]]:
    """``CD[N]`` as a set of (fork, branch-direction) pairs.

    The direction records *which* out-edge of the fork leads to executing
    ``N`` — exactly the out-direction the access-token switch must route
    toward in the optimized construction.
    """
    if pdom is None:
        pdom = postdominator_tree(cfg)
    cd: dict[int, set[tuple[int, bool]]] = {n: set() for n in cfg.nodes}
    for e in cfg.edges():
        if e.direction is None:
            continue  # only forks (and start) create control dependence
        f, s, d = e.src, e.dst, e.direction
        stop = pdom.idom[f]
        runner = s
        while runner != stop and runner is not None:
            cd[runner].add((f, d))
            runner = pdom.idom[runner]  # type: ignore[assignment]
    return cd


def control_dependence(
    cfg: CFG, pdom: DomTree | None = None
) -> dict[int, set[int]]:
    """``CD[N]``: the set of forks ``N`` is control dependent on."""
    directed = control_dependence_directed(cfg, pdom)
    return {n: {f for f, _ in pairs} for n, pairs in directed.items()}


def cd_plus_of_set(
    cfg: CFG,
    targets: set[int],
    cd: dict[int, set[int]] | None = None,
) -> set[int]:
    """Iterated control dependence of a *set* of nodes: the least set ``S``
    with ``CD(targets) ⊆ S`` and ``CD(S) ⊆ S``.

    This is the worklist of Figure 10 run for one "variable" whose reference
    sites are ``targets``; the result is the set of forks that need a switch.
    """
    if cd is None:
        cd = control_dependence(cfg)
    result: set[int] = set()
    work = deque(targets)
    queued = set(targets)
    while work:
        n = work.popleft()
        for f in cd[n]:
            result.add(f)
            if f not in queued:
                queued.add(f)
                work.append(f)
    return result


def cd_plus(cfg: CFG, cd: dict[int, set[int]] | None = None) -> dict[int, frozenset[int]]:
    """``CD+`` for every node (Definition 5)."""
    if cd is None:
        cd = control_dependence(cfg)
    return {n: frozenset(cd_plus_of_set(cfg, {n}, cd)) for n in cfg.nodes}


def between_set(
    cfg: CFG, f: int, pdom: DomTree | None = None
) -> set[int]:
    """Every node *between* ``f`` and its immediate postdominator ``p``
    (Definition 1): the nodes reachable from ``f``'s successors by paths
    avoiding ``p``, found by one BFS.  Empty when ``f`` is the end node."""
    if pdom is None:
        pdom = postdominator_tree(cfg)
    p = pdom.idom[f]
    if p is None:  # f is end; no non-null path leaves it
        return set()
    seen: set[int] = set()
    frontier = deque(s for s in cfg.succ_ids(f) if s != p)
    seen.update(frontier)
    while frontier:
        cur = frontier.popleft()
        for s in cfg.succ_ids(cur):
            if s != p and s not in seen:
                seen.add(s)
                frontier.append(s)
    return seen


def between_brute_force(
    cfg: CFG, f: int, n: int, pdom: DomTree | None = None
) -> bool:
    """Definition 1 oracle: is ``n`` *between* ``f`` and its immediate
    postdominator ``p``?  I.e. does a non-null path ``f => n`` avoiding
    ``p`` exist?"""
    return n in between_set(cfg, f, pdom)


def needs_switch_brute_force(
    cfg: CFG, f: int, var: str, pdom: DomTree | None = None
) -> bool:
    """Definition 3 oracle: ``f`` needs a switch for ``access_var`` iff some
    node referencing ``var`` is between ``f`` and its immediate
    postdominator."""
    if pdom is None:
        pdom = postdominator_tree(cfg)
    return any(
        var in cfg.node(n).refs() and between_brute_force(cfg, f, n, pdom)
        for n in cfg.nodes
    )
