"""Dominator and postdominator trees.

Uses the Cooper–Harvey–Kennedy iterative algorithm over reverse postorder —
near-linear in practice, and simple enough to trust.  Postdominators are
dominators of the reverse graph rooted at ``end``; the CFG validator
guarantees every node reaches ``end``, so the postdominator tree is total.

Terminology follows the paper's footnote 6: postdomination is reflexive; a
*strict* postdominator is a distinct one; every node except ``end`` has a
unique *immediate* postdominator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.graph import CFG


@dataclass
class DomTree:
    """A (post)dominator tree.

    ``idom[n]`` is the immediate (post)dominator of ``n`` (``None`` for the
    root).  ``children`` invert that map; ``depth`` is distance from the
    root, enabling O(depth) ancestor queries.
    """

    root: int
    idom: dict[int, int | None]
    children: dict[int, list[int]] = field(default_factory=dict)
    depth: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.children:
            self.children = {n: [] for n in self.idom}
            for n, d in self.idom.items():
                if d is not None:
                    self.children[d].append(n)
            for kids in self.children.values():
                kids.sort()
        if not self.depth:
            self.depth = {self.root: 0}
            stack = [self.root]
            while stack:
                n = stack.pop()
                for c in self.children[n]:
                    self.depth[c] = self.depth[n] + 1
                    stack.append(c)

    def dominates(self, a: int, b: int) -> bool:
        """True iff ``a`` (post)dominates ``b`` (reflexively)."""
        while self.depth.get(b, -1) > self.depth[a]:
            b = self.idom[b]  # type: ignore[assignment]
        return a == b

    def strictly_dominates(self, a: int, b: int) -> bool:
        return a != b and self.dominates(a, b)

    def walk_up(self, n: int):
        """Yield ``n``, idom(n), idom(idom(n)), ... up to the root."""
        cur: int | None = n
        while cur is not None:
            yield cur
            cur = self.idom[cur]


def _iterative_idoms(
    root: int,
    nodes: list[int],
    preds: dict[int, list[int]],
    rpo_index: dict[int, int],
) -> dict[int, int | None]:
    """Cooper–Harvey–Kennedy: iterate intersect() over reverse postorder."""
    idom: dict[int, int | None] = {n: None for n in nodes}
    idom[root] = root

    def intersect(a: int, b: int) -> int:
        while a != b:
            while rpo_index[a] > rpo_index[b]:
                a = idom[a]  # type: ignore[assignment]
            while rpo_index[b] > rpo_index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    order = [n for n in nodes if n != root]
    while changed:
        changed = False
        for n in order:
            candidates = [p for p in preds[n] if idom[p] is not None]
            if not candidates:
                continue
            new = candidates[0]
            for p in candidates[1:]:
                new = intersect(new, p)
            if idom[n] != new:
                idom[n] = new
                changed = True
    idom[root] = None
    return idom


def _rpo_from(root: int, succs: dict[int, list[int]]) -> list[int]:
    order: list[int] = []
    seen = {root}
    stack: list[tuple[int, int]] = [(root, 0)]
    while stack:
        nid, idx = stack[-1]
        ss = succs[nid]
        if idx < len(ss):
            stack[-1] = (nid, idx + 1)
            s = ss[idx]
            if s not in seen:
                seen.add(s)
                stack.append((s, 0))
        else:
            order.append(nid)
            stack.pop()
    order.reverse()
    return order


def dominator_tree(cfg: CFG) -> DomTree:
    """Dominator tree rooted at the CFG entry."""
    succs = {n: cfg.succ_ids(n) for n in cfg.nodes}
    preds = {n: cfg.pred_ids(n) for n in cfg.nodes}
    rpo = _rpo_from(cfg.entry, succs)
    rpo_index = {n: i for i, n in enumerate(rpo)}
    idom = _iterative_idoms(cfg.entry, rpo, preds, rpo_index)
    return DomTree(cfg.entry, idom)


def postdominator_tree(cfg: CFG) -> DomTree:
    """Postdominator tree rooted at the CFG exit (dominators of the reverse
    graph)."""
    succs = {n: cfg.pred_ids(n) for n in cfg.nodes}  # reversed
    preds = {n: cfg.succ_ids(n) for n in cfg.nodes}
    rpo = _rpo_from(cfg.exit, succs)
    if len(rpo) != len(cfg.nodes):
        missing = sorted(set(cfg.nodes) - set(rpo))
        raise ValueError(
            f"nodes {missing} cannot reach exit; postdominators undefined"
        )
    rpo_index = {n: i for i, n in enumerate(rpo)}
    idom = _iterative_idoms(cfg.exit, rpo, preds, rpo_index)
    return DomTree(cfg.exit, idom)


def dominance_frontier(cfg: CFG, tree: DomTree) -> dict[int, set[int]]:
    """Dominance frontiers (Cytron et al.), used for SSA phi placement.

    ``tree`` must be the dominator tree of ``cfg`` (pass a postdominator
    tree plus the reversed CFG to get reverse dominance frontiers, i.e.
    control dependence).
    """
    df: dict[int, set[int]] = {n: set() for n in cfg.nodes}
    for n in cfg.nodes:
        preds = cfg.pred_ids(n)
        if len(preds) < 2:
            continue
        for p in preds:
            runner = p
            while runner != tree.idom[n] and runner is not None:
                df[runner].add(n)
                runner = tree.idom[runner]  # type: ignore[assignment]
    return df
