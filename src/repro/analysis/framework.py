"""Generic worklist dataflow framework plus classic instances.

The framework works over finite powerset lattices represented as Python
frozensets with union or intersection as the meet.  It is deliberately
simple — the graphs here are statement-level CFGs of modest size — but all
three classic analyses used elsewhere in the package (reaching definitions,
liveness, def-use chains) are instances of it, which keeps their transfer
functions the only interesting code.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Literal

from ..cfg.graph import CFG


def solve_dataflow(
    cfg: CFG,
    *,
    direction: Literal["forward", "backward"],
    gen: Callable[[int], frozenset],
    kill: Callable[[int], frozenset],
    boundary: frozenset = frozenset(),
    init: frozenset = frozenset(),
    meet: Literal["union", "intersection"] = "union",
) -> tuple[dict[int, frozenset], dict[int, frozenset]]:
    """Solve a gen/kill dataflow problem to fixpoint.

    Returns ``(in_sets, out_sets)`` — for backward problems these are still
    keyed by node, with ``in`` meaning "facts at node entry in execution
    order" (i.e. the *output* of a backward transfer).
    """
    if direction == "forward":
        sources = cfg.pred_ids
        sinks = cfg.succ_ids
        start = cfg.entry
    else:
        sources = cfg.succ_ids
        sinks = cfg.pred_ids
        start = cfg.exit

    nodes = list(cfg.nodes)
    before: dict[int, frozenset] = {n: init for n in nodes}
    after: dict[int, frozenset] = {n: init for n in nodes}
    before[start] = boundary

    work = deque(nodes)
    in_work = set(nodes)
    while work:
        n = work.popleft()
        in_work.discard(n)
        srcs = sources(n)
        if n == start:
            acc = boundary
        elif not srcs:
            acc = init
        else:
            acc = after[srcs[0]]
            for s in srcs[1:]:
                acc = acc | after[s] if meet == "union" else acc & after[s]
        before[n] = acc
        new_after = (acc - kill(n)) | gen(n)
        if new_after != after[n]:
            after[n] = new_after
            for s in sinks(n):
                if s not in in_work:
                    in_work.add(s)
                    work.append(s)

    if direction == "forward":
        return before, after
    # backward: 'before' holds facts at node *exit* in execution order
    return after, before


# ---------------------------------------------------------------------------
# Classic instances
# ---------------------------------------------------------------------------


def reaching_definitions(cfg: CFG) -> tuple[dict[int, frozenset], dict[int, frozenset]]:
    """Reaching definitions.  A definition is ``(node_id, var)``; node
    ``start`` provides an implicit initial definition of every variable."""
    variables = cfg.variables()
    defs_of: dict[str, frozenset] = {
        v: frozenset(
            (n, v) for n in cfg.nodes if v in cfg.node(n).stores()
        )
        | {(cfg.entry, v)}
        for v in variables
    }

    def gen(n: int) -> frozenset:
        if n == cfg.entry:
            return frozenset((cfg.entry, v) for v in variables)
        return frozenset((n, v) for v in cfg.node(n).stores())

    def kill(n: int) -> frozenset:
        out = frozenset()
        for v in cfg.node(n).stores():
            out |= defs_of[v]
        return out

    boundary = frozenset((cfg.entry, v) for v in variables)
    return solve_dataflow(
        cfg, direction="forward", gen=gen, kill=kill, boundary=boundary
    )


def liveness(cfg: CFG) -> tuple[dict[int, frozenset], dict[int, frozenset]]:
    """Live variables.  Returns ``(live_in, live_out)`` keyed by node."""

    def gen(n: int) -> frozenset:
        return cfg.node(n).loads()

    def kill(n: int) -> frozenset:
        node = cfg.node(n)
        # a[i] := e does not fully kill `a` (partial update)
        from ..lang.ast_nodes import ArrayRef

        if node.target is not None and isinstance(node.target, ArrayRef):
            return frozenset()
        return node.stores()

    live_in, live_out = solve_dataflow(
        cfg, direction="backward", gen=gen, kill=kill
    )
    return live_in, live_out


@dataclass(frozen=True)
class DefUse:
    """Def-use chains: for each definition site, the nodes that may use it;
    and for each use, its reaching definition sites."""

    uses_of_def: dict[tuple[int, str], frozenset[int]]
    defs_of_use: dict[tuple[int, str], frozenset[int]]


def def_use_chains(cfg: CFG) -> DefUse:
    rd_in, _ = reaching_definitions(cfg)
    uses_of_def: dict[tuple[int, str], set[int]] = {}
    defs_of_use: dict[tuple[int, str], frozenset[int]] = {}
    for n in cfg.nodes:
        for v in cfg.node(n).loads():
            reaching = frozenset(d for (d, dv) in rd_in[n] if dv == v)
            defs_of_use[(n, v)] = reaching
            for d in reaching:
                uses_of_def.setdefault((d, v), set()).add(n)
    return DefUse(
        uses_of_def={k: frozenset(s) for k, s in uses_of_def.items()},
        defs_of_use=defs_of_use,
    )
