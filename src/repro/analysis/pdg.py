"""Program dependence graphs (Ferrante-Ottenstein-Warren, the paper's
reference [11]).

Section 7 contrasts this paper's CFG-based construction with Ballance,
Maccabe and Ottenstein's PDG-based approach, and the conclusions argue
dataflow graphs "synthesize" the dependence-based and continuation-based
compiler representations.  This module builds the classic PDG — control
dependence edges plus flow/anti/output data dependence edges — so the two
representations can be compared structurally (see the
``test_ablation_pdg_comparison`` bench).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..cfg.graph import CFG
from .control_dep import control_dependence_directed
from .framework import reaching_definitions


class DepKind(enum.Enum):
    CONTROL = "control"
    FLOW = "flow"  # def -> use (read after write)
    ANTI = "anti"  # use -> def (write after read)
    OUTPUT = "output"  # def -> def (write after write)


@dataclass(frozen=True)
class DepEdge:
    src: int
    dst: int
    kind: DepKind
    var: str | None = None  # None for control edges
    label: bool | None = None  # branch direction for control edges


@dataclass
class PDG:
    """A program dependence graph over the CFG's nodes."""

    cfg: CFG
    edges: frozenset[DepEdge] = frozenset()

    def of_kind(self, kind: DepKind) -> list[DepEdge]:
        return [e for e in self.edges if e.kind is kind]

    def deps_of(self, node: int) -> list[DepEdge]:
        """Edges into ``node`` (what it depends on)."""
        return [e for e in self.edges if e.dst == node]

    def count(self) -> dict[str, int]:
        out: dict[str, int] = {k.value: 0 for k in DepKind}
        for e in self.edges:
            out[e.kind.value] += 1
        return out


def build_pdg(cfg: CFG) -> PDG:
    """Build the PDG: control dependence from the postdominator analysis,
    data dependences from reaching definitions.

    Anti and output dependences are computed pairwise over statements that
    touch the same location and can reach one another — the memory-order
    constraints the access tokens of Schemas 1-3 enforce dynamically.
    """
    edges: set[DepEdge] = set()

    for n, pairs in control_dependence_directed(cfg).items():
        for f, d in pairs:
            edges.add(DepEdge(f, n, DepKind.CONTROL, label=d))

    rd_in, _ = reaching_definitions(cfg)

    # flow: a reaching definition feeding a use
    for n in cfg.nodes:
        node = cfg.node(n)
        for v in node.loads():
            for (d, dv) in rd_in[n]:
                if dv == v and d != cfg.entry:
                    edges.add(DepEdge(d, n, DepKind.FLOW, var=v))

    # reachability (ignoring the start->end convention edge is unnecessary:
    # it adds no spurious statement-to-statement paths)
    reach: dict[int, set[int]] = {}

    def reachable(a: int) -> set[int]:
        if a not in reach:
            seen: set[int] = set()
            stack = list(cfg.succ_ids(a))
            while stack:
                x = stack.pop()
                if x in seen:
                    continue
                seen.add(x)
                stack.extend(cfg.succ_ids(x))
            reach[a] = seen
        return reach[a]

    defs: dict[str, list[int]] = {}
    uses: dict[str, list[int]] = {}
    for n in cfg.nodes:
        node = cfg.node(n)
        for v in node.stores():
            defs.setdefault(v, []).append(n)
        for v in node.loads():
            uses.setdefault(v, []).append(n)

    for v, dlist in defs.items():
        for d1 in dlist:
            for d2 in dlist:
                if d1 != d2 and d2 in reachable(d1):
                    edges.add(DepEdge(d1, d2, DepKind.OUTPUT, var=v))
        for u in uses.get(v, []):
            for d in dlist:
                if u != d and d in reachable(u):
                    edges.add(DepEdge(u, d, DepKind.ANTI, var=v))

    return PDG(cfg, frozenset(edges))


def memory_order_constraints(pdg: PDG) -> int:
    """The anti + output dependence count: the constraints that exist only
    because variables are multiply assigned — exactly what Section 6.1's
    memory elimination (SSA conversion) removes for unaliased scalars."""
    return len(pdg.of_kind(DepKind.ANTI)) + len(pdg.of_kind(DepKind.OUTPUT))
