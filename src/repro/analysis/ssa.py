"""Static single assignment construction (Cytron et al.).

The paper's Section 6.1 observes that eliminating memory operations from the
dataflow graph — carrying values on tokens instead — is "similar in effect
to ... conversion to static single assignment form", with the dataflow
merges playing the role of phi-functions.  We build SSA independently here
so a benchmark can compare phi placement against the merge placement of the
optimized dataflow construction.

Phis are placed at the iterated dominance frontier of each variable's
definition sites; versions are assigned by the standard dominator-tree
renaming walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.graph import CFG
from .dominance import dominance_frontier, dominator_tree


@dataclass(frozen=True)
class Phi:
    """A phi-function for ``var`` at a join: one incoming version per
    predecessor edge (keyed by predecessor node id)."""

    var: str
    target_version: int
    sources: tuple[tuple[int, int], ...]  # (pred node id, version)


@dataclass
class SSAProgram:
    """SSA facts about a CFG.

    * ``phis[n]`` — phi functions at node ``n`` (only at merge points).
    * ``def_version[(n, v)]`` — version defined by node ``n``'s store to v.
    * ``use_versions[(n, v)]`` — version read by node ``n``'s load of v.
    * ``version_count[v]`` — total versions of v (including version 0, the
      implicit initial value at entry).
    """

    cfg: CFG
    phis: dict[int, list[Phi]] = field(default_factory=dict)
    def_version: dict[tuple[int, str], int] = field(default_factory=dict)
    use_versions: dict[tuple[int, str], int] = field(default_factory=dict)
    version_count: dict[str, int] = field(default_factory=dict)

    def phi_count(self) -> int:
        return sum(len(ps) for ps in self.phis.values())


def construct_ssa(cfg: CFG, variables: list[str] | None = None) -> SSAProgram:
    """Build SSA for the given variables (default: all).

    Arrays are treated as whole-array scalars (a store to ``a[i]`` is a def
    of ``a`` that also uses ``a``), matching how the translation schemas
    treat them.
    """
    if variables is None:
        variables = cfg.variables()
    dom = dominator_tree(cfg)
    df = dominance_frontier(cfg, dom)

    # -- phi placement: iterated dominance frontier of def sites ------------
    phi_sites: dict[str, set[int]] = {}
    for v in variables:
        defs = {n for n in cfg.nodes if v in cfg.node(n).stores()}
        defs.add(cfg.entry)  # implicit initial definition
        sites: set[int] = set()
        work = list(defs)
        while work:
            n = work.pop()
            for y in df[n]:
                if y not in sites:
                    sites.add(y)
                    if y not in defs:
                        work.append(y)
        phi_sites[v] = sites

    # -- renaming -------------------------------------------------------------
    ssa = SSAProgram(cfg)
    counter: dict[str, int] = {v: 0 for v in variables}
    stacks: dict[str, list[int]] = {v: [0] for v in variables}
    # placeholder phi targets/args filled during the walk
    phi_target: dict[tuple[int, str], int] = {}
    phi_args: dict[tuple[int, str], dict[int, int]] = {
        (n, v): {} for v in variables for n in phi_sites[v]
    }

    def new_version(v: str) -> int:
        counter[v] += 1
        stacks[v].append(counter[v])
        return counter[v]

    # iterative dominator-tree preorder walk with explicit pop bookkeeping
    order: list[tuple[str, int]] = [("visit", cfg.entry)]
    while order:
        action, n = order.pop()
        if action == "pop":
            node = cfg.node(n)
            pushed = [v for v in variables if v in phi_sites and n in phi_sites[v]]
            for v in pushed:
                stacks[v].pop()
            for v in node.stores():
                if v in stacks:
                    stacks[v].pop()
            continue

        node = cfg.node(n)
        for v in variables:
            if n in phi_sites[v]:
                phi_target[(n, v)] = new_version(v)
        for v in node.loads():
            if v in stacks:
                ssa.use_versions[(n, v)] = stacks[v][-1]
        for v in node.stores():
            if v in stacks:
                ssa.def_version[(n, v)] = new_version(v)
        for e in cfg.out_edges(n):
            s = e.dst
            for v in variables:
                if s in phi_sites[v]:
                    phi_args[(s, v)][n] = stacks[v][-1]

        order.append(("pop", n))
        for c in dom.children[n]:
            order.append(("visit", c))

    for v in variables:
        for n in phi_sites[v]:
            if (n, v) not in phi_target:
                continue  # unreachable in dom tree (cannot happen: validated CFG)
            srcs = tuple(sorted(phi_args[(n, v)].items()))
            ssa.phis.setdefault(n, []).append(
                Phi(v, phi_target[(n, v)], srcs)
            )
    ssa.version_count = {v: counter[v] + 1 for v in variables}
    return ssa


def prune_dead_phis(ssa: SSAProgram) -> SSAProgram:
    """Remove phis whose target version is never used by any load or other
    phi (the "pruned SSA" refinement).  Iterates to a fixpoint."""
    cfg = ssa.cfg
    while True:
        used: set[tuple[str, int]] = set()
        for (n, v), ver in ssa.use_versions.items():
            used.add((v, ver))
        for ps in ssa.phis.values():
            for p in ps:
                for _, ver in p.sources:
                    used.add((p.var, ver))
        removed = False
        for n in list(ssa.phis):
            keep = [p for p in ssa.phis[n] if (p.var, p.target_version) in used]
            if len(keep) != len(ssa.phis[n]):
                removed = True
                if keep:
                    ssa.phis[n] = keep
                else:
                    del ssa.phis[n]
        if not removed:
            return ssa
