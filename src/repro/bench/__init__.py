"""Workload corpus, workload generators, and bench-harness helpers."""

from .programs import CORPUS, Workload, workload
from .generators import random_program, random_structured_program
from .loadgen import LoadReport, run_load
from .harness import (
    SchemaRow,
    compare_schemas,
    corpus_jobs,
    format_table,
    schemas_for,
    sweep_latency_line,
)

__all__ = [
    "CORPUS",
    "LoadReport",
    "SchemaRow",
    "Workload",
    "compare_schemas",
    "corpus_jobs",
    "format_table",
    "random_program",
    "random_structured_program",
    "run_load",
    "schemas_for",
    "sweep_latency_line",
    "workload",
]
