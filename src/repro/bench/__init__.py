"""Workload corpus, workload generators, and bench-harness helpers."""

from .programs import CORPUS, Workload, workload
from .generators import random_program, random_structured_program
from .harness import compare_schemas, format_table, SchemaRow

__all__ = [
    "CORPUS",
    "SchemaRow",
    "Workload",
    "compare_schemas",
    "format_table",
    "random_program",
    "random_structured_program",
    "workload",
]
