"""Workload corpus, workload generators, and bench-harness helpers."""

from .programs import CORPUS, Workload, workload
from .generators import random_program, random_structured_program
from .harness import (
    SchemaRow,
    compare_schemas,
    corpus_jobs,
    format_table,
    schemas_for,
)

__all__ = [
    "CORPUS",
    "SchemaRow",
    "Workload",
    "compare_schemas",
    "corpus_jobs",
    "format_table",
    "random_program",
    "random_structured_program",
    "schemas_for",
    "workload",
]
