"""Random program generators for property tests and scaling sweeps.

All generated programs terminate: loops are bounded counting loops with
fresh counters, and goto-based control flow is generated in a reducible,
forward-or-counted-back pattern.
"""

from __future__ import annotations

import random

from ..lang.ast_nodes import Program
from ..lang.parser import parse


def random_structured_program(
    seed: int,
    n_vars: int = 4,
    n_stmts: int = 8,
    max_depth: int = 2,
    arrays: bool = False,
    subroutines: bool = False,
) -> Program:
    """A random structured program (assignments, if/else, bounded whiles,
    and — with ``subroutines`` — by-reference subs called with sometimes
    repeated actuals, inducing aliasing)."""
    rng = random.Random(seed)
    vars_ = [f"v{i}" for i in range(n_vars)]
    counters = iter(f"c{i}" for i in range(1000))
    lines: list[str] = []
    if arrays:
        lines.append("array arr[8];")
    sub_sigs: list[tuple[str, int]] = []
    if subroutines:
        for k in range(rng.randint(1, 2)):
            nf = rng.randint(1, 3)
            formals = [f"p{j}" for j in range(nf)]
            lines.append(f"sub s{k}({', '.join(formals)}) {{")
            for _ in range(rng.randint(1, 3)):
                tgt = rng.choice(formals)
                rhs_terms = [rng.choice(formals + [str(rng.randint(0, 9))])
                             for _ in range(2)]
                op = rng.choice(["+", "-", "*"])
                lines.append(f"  {tgt} := {rhs_terms[0]} {op} {rhs_terms[1]};")
            lines.append("}")
            sub_sigs.append((f"s{k}", nf))

    def expr(depth: int = 0) -> str:
        choice = rng.random()
        if depth >= 2 or choice < 0.35:
            return rng.choice(vars_ + [str(rng.randint(0, 9))])
        if arrays and choice < 0.45:
            return f"arr[({expr(depth + 1)}) % 8]"
        op = rng.choice(["+", "-", "*", "/", "%"])
        return f"({expr(depth + 1)} {op} {expr(depth + 1)})"

    def cond() -> str:
        op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
        return f"{rng.choice(vars_)} {op} {expr(1)}"

    def stmts(count: int, depth: int, indent: str) -> None:
        for _ in range(count):
            r = rng.random()
            if sub_sigs and r < 0.15:
                name, nf = rng.choice(sub_sigs)
                # repeated actuals sometimes: that is what induces aliasing
                actuals = [rng.choice(vars_) for _ in range(nf)]
                lines.append(f"{indent}call {name}({', '.join(actuals)});")
            elif depth < max_depth and r < 0.2:
                c = next(counters)
                body = rng.randint(1, 3)
                lines.append(
                    f"{indent}{c} := 0;"
                )
                lines.append(
                    f"{indent}while {c} < {rng.randint(1, 4)} do {{"
                )
                stmts(body, depth + 1, indent + "  ")
                lines.append(f"{indent}  {c} := {c} + 1;")
                lines.append(f"{indent}}}")
            elif depth < max_depth and r < 0.45:
                lines.append(f"{indent}if {cond()} then {{")
                stmts(rng.randint(1, 2), depth + 1, indent + "  ")
                if rng.random() < 0.5:
                    lines.append(f"{indent}}} else {{")
                    stmts(rng.randint(1, 2), depth + 1, indent + "  ")
                lines.append(f"{indent}}}")
            elif arrays and r < 0.55:
                lines.append(
                    f"{indent}arr[({expr(1)}) % 8] := {expr()};"
                )
            else:
                lines.append(f"{indent}{rng.choice(vars_)} := {expr()};")

    stmts(n_stmts, 0, "")
    return parse("\n".join(lines))


def random_program(
    seed: int, n_vars: int = 4, n_blocks: int = 6, arrays: bool = False
) -> Program:
    """A random *unstructured* program: a chain of labeled blocks with
    forward gotos and bounded counted backward gotos.

    The control flow is goto spaghetti (multi-exit loops, branches into
    later blocks, conditional backedges) but kept *reducible*: backward
    jumps form properly nested (start, end) regions, and a forward goto
    never enters a region from outside except at its start block — so
    every cyclic region keeps a single entry.  Irreducible graphs are
    exercised by dedicated node-splitting tests instead.
    """
    rng = random.Random(seed)
    vars_ = [f"v{i}" for i in range(n_vars)]
    lines: list[str] = []
    if arrays:
        lines.append("array arr[8];")

    # properly nested backward-jump regions (start, end)
    regions: list[tuple[int, int]] = []
    for _ in range(rng.randint(0, 3)):
        s = rng.randint(0, n_blocks - 2)
        e = rng.randint(s + 1, n_blocks - 1)
        ok = True
        for rs, re in regions:
            disjoint = e < rs or re < s
            nested = (rs <= s and e <= re) or (s <= rs and re <= e)
            if not (disjoint or nested):
                ok = False
                break
            if (s, e) == (rs, re) or e == re:
                ok = False  # distinct end blocks keep backedges separate
                break
        if ok:
            regions.append((s, e))

    def allowed_forward_targets(b: int) -> list[int]:
        out = []
        for t in range(b + 1, n_blocks):
            if all(
                t == rs or not (rs < t <= re) or (rs <= b <= re)
                for rs, re in regions
            ):
                out.append(t)
        return out

    def expr(depth: int = 0) -> str:
        if depth >= 2 or rng.random() < 0.4:
            return rng.choice(vars_ + [str(rng.randint(0, 9))])
        op = rng.choice(["+", "-", "*"])
        return f"({expr(depth + 1)} {op} {expr(depth + 1)})"

    for b in range(n_blocks):
        lines.append(f"blk{b}: skip;")
        for _ in range(rng.randint(1, 3)):
            if arrays and rng.random() < 0.25:
                lines.append(f"arr[({expr(1)}) % 8] := {expr()};")
            else:
                lines.append(f"{rng.choice(vars_)} := {expr()};")
        targets = allowed_forward_targets(b)
        r = rng.random()
        if r < 0.35 and targets:
            t = rng.choice(targets)
            lines.append(
                f"if {rng.choice(vars_)} < {rng.randint(0, 20)} "
                f"then goto blk{t};"
            )
        elif r < 0.5 and len(targets) > 1 and all(re != b for _, re in regions):
            # unconditional skip ahead (not from a region end: it would
            # dead-code the backedge)
            t = rng.choice(targets[1:])
            lines.append(f"goto blk{t};")
        for rs, re in regions:
            if re == b:
                c = f"bk{b}"
                lines.append(f"{c} := {c} + 1;")
                lines.append(
                    f"if {c} < {rng.randint(1, 3)} then goto blk{rs};"
                )
    return parse("\n".join(lines))
