"""Bench harness helpers: run a workload under several schemas, collect
structural and execution metrics, and format the comparison tables the
benches print (the paper has no numeric tables, so these are the measured
versions of its analytic claims).

Compilation goes through the engine's compiled-graph cache, so sweeps
that revisit the same (program, schema) pair — ablation benches, the
differential suite, repeated ``compare_schemas`` calls — skip
lexing→CFG→translation after the first encounter."""

from __future__ import annotations

from dataclasses import dataclass

from ..dfg.stats import graph_stats
from ..engine import BatchJob, GraphCache, LatencySummary, default_cache
from ..interp.ast_interp import run_ast
from ..machine.config import MachineConfig
from ..translate.pipeline import SCHEMAS, CompileOptions, simulate
from .programs import CORPUS, Workload


@dataclass(frozen=True)
class SchemaRow:
    """One (workload, schema) measurement."""

    workload: str
    schema: str
    nodes: int
    arcs: int
    switches: int
    merges: int
    synchs: int
    memory_ops_static: int
    cycles: int
    operations: int
    avg_parallelism: float
    peak_parallelism: int

    def cells(self) -> list:
        return [
            self.workload,
            self.schema,
            self.nodes,
            self.arcs,
            self.switches,
            self.merges,
            self.synchs,
            self.memory_ops_static,
            self.cycles,
            self.operations,
            f"{self.avg_parallelism:.2f}",
            self.peak_parallelism,
        ]


HEADER = [
    "workload",
    "schema",
    "nodes",
    "arcs",
    "switch",
    "merge",
    "synch",
    "mem(st)",
    "cycles",
    "ops",
    "S_avg",
    "S_peak",
]


def schemas_for(wl: Workload) -> tuple[str, ...]:
    """The schemas a workload can legally compile under: Schema 2 rejects
    aliased programs (the paper assumes no aliasing until Section 5)."""
    if wl.has_aliasing():
        return ("schema1", "schema3", "schema3_opt", "memory_elim")
    return SCHEMAS


def corpus_jobs(
    programs: list[str] | None = None,
    schemas: list[str] | None = None,
    config: MachineConfig | None = None,
    all_inputs: bool = False,
    **compile_kwargs,
) -> list[BatchJob]:
    """The full corpus sweep as engine batch jobs: every corpus program
    (or the named subset) × every legal schema (or the given subset),
    with the workload's first input set (or all of them)."""
    wanted = set(programs) if programs is not None else None
    jobs = []
    for wl in CORPUS:
        if wanted is not None and wl.name not in wanted:
            continue
        for schema in schemas_for(wl):
            if schemas is not None and schema not in schemas:
                continue
            opts = CompileOptions(schema=schema, **compile_kwargs)
            inputs = wl.inputs if all_inputs else wl.inputs[:1]
            for k, ins in enumerate(inputs):
                suffix = f"#{k}" if len(inputs) > 1 else ""
                jobs.append(
                    BatchJob(
                        source=wl.source,
                        options=opts,
                        inputs=dict(ins),
                        config=config,
                        name=f"{wl.name}/{schema}{suffix}",
                    )
                )
    return jobs


def compare_schemas(
    wl: Workload,
    schemas: list[str],
    config: MachineConfig | None = None,
    inputs: dict | None = None,
    cache: GraphCache | None = None,
    **compile_kwargs,
) -> list[SchemaRow]:
    """Compile (through the engine cache) and run one workload under each
    schema, verifying every run against the reference interpreter."""
    from ..lang.parser import parse

    if cache is None:
        cache = default_cache
    ins = inputs if inputs is not None else wl.inputs[0]
    ref = run_ast(parse(wl.source), ins)
    rows = []
    for schema in schemas:
        cp = cache.get_or_compile(
            wl.source, CompileOptions(schema=schema, **compile_kwargs)
        )
        res = simulate(cp, ins, config)
        if res.memory != ref:
            raise AssertionError(
                f"{wl.name}/{schema}: dataflow result {res.memory} != "
                f"reference {ref}"
            )
        st = graph_stats(cp.graph)
        rows.append(
            SchemaRow(
                workload=wl.name,
                schema=schema,
                nodes=st.nodes,
                arcs=st.arcs,
                switches=st.switches,
                merges=st.merges,
                synchs=st.synchs,
                memory_ops_static=st.memory_ops,
                cycles=res.metrics.cycles,
                operations=res.metrics.operations,
                avg_parallelism=res.metrics.avg_parallelism,
                peak_parallelism=res.metrics.peak_parallelism,
            )
        )
    return rows


def sweep_latency_line(results) -> str:
    """One-line per-job compile/sim latency percentiles for one
    :func:`~repro.engine.batch.run_batch` sweep (milliseconds; failed
    jobs excluded — their timings measure the error path, not the work)."""
    ok = [r for r in results if r.ok]
    comp = LatencySummary.from_samples([r.compile_time * 1e3 for r in ok])
    sim = LatencySummary.from_samples([r.sim_time * 1e3 for r in ok])
    return f"compile [{comp.brief('ms')}]  sim [{sim.brief('ms')}]"


def format_table(header: list, rows: list[list]) -> str:
    """Monospace table for bench output."""
    cols = [header] + [[str(c) for c in r] for r in rows]
    widths = [max(len(row[i]) for row in cols) for i in range(len(header))]
    lines = []
    for ri, row in enumerate(cols):
        lines.append(
            "  ".join(str(c).rjust(w) for c, w in zip(row, widths))
        )
        if ri == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
