"""Bench harness helpers: run a workload under several schemas, collect
structural and execution metrics, and format the comparison tables the
benches print (the paper has no numeric tables, so these are the measured
versions of its analytic claims)."""

from __future__ import annotations

from dataclasses import dataclass

from ..dfg.stats import graph_stats
from ..interp.ast_interp import run_ast
from ..machine.config import MachineConfig
from ..translate.pipeline import compile_program, simulate
from .programs import Workload


@dataclass(frozen=True)
class SchemaRow:
    """One (workload, schema) measurement."""

    workload: str
    schema: str
    nodes: int
    arcs: int
    switches: int
    merges: int
    synchs: int
    memory_ops_static: int
    cycles: int
    operations: int
    avg_parallelism: float
    peak_parallelism: int

    def cells(self) -> list:
        return [
            self.workload,
            self.schema,
            self.nodes,
            self.arcs,
            self.switches,
            self.merges,
            self.synchs,
            self.memory_ops_static,
            self.cycles,
            self.operations,
            f"{self.avg_parallelism:.2f}",
            self.peak_parallelism,
        ]


HEADER = [
    "workload",
    "schema",
    "nodes",
    "arcs",
    "switch",
    "merge",
    "synch",
    "mem(st)",
    "cycles",
    "ops",
    "S_avg",
    "S_peak",
]


def compare_schemas(
    wl: Workload,
    schemas: list[str],
    config: MachineConfig | None = None,
    inputs: dict | None = None,
    **compile_kwargs,
) -> list[SchemaRow]:
    """Compile and run one workload under each schema, verifying every run
    against the reference interpreter."""
    from ..lang.parser import parse

    ins = inputs if inputs is not None else wl.inputs[0]
    ref = run_ast(parse(wl.source), ins)
    rows = []
    for schema in schemas:
        cp = compile_program(wl.source, schema=schema, **compile_kwargs)
        res = simulate(cp, ins, config)
        if res.memory != ref:
            raise AssertionError(
                f"{wl.name}/{schema}: dataflow result {res.memory} != "
                f"reference {ref}"
            )
        st = graph_stats(cp.graph)
        rows.append(
            SchemaRow(
                workload=wl.name,
                schema=schema,
                nodes=st.nodes,
                arcs=st.arcs,
                switches=st.switches,
                merges=st.merges,
                synchs=st.synchs,
                memory_ops_static=st.memory_ops,
                cycles=res.metrics.cycles,
                operations=res.metrics.operations,
                avg_parallelism=res.metrics.avg_parallelism,
                peak_parallelism=res.metrics.peak_parallelism,
            )
        )
    return rows


def format_table(header: list, rows: list[list]) -> str:
    """Monospace table for bench output."""
    cols = [header] + [[str(c) for c in r] for r in rows]
    widths = [max(len(row[i]) for row in cols) for i in range(len(header))]
    lines = []
    for ri, row in enumerate(cols):
        lines.append(
            "  ".join(str(c).rjust(w) for c, w in zip(row, widths))
        )
        if ri == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
