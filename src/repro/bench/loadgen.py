"""Load generator for the compile/simulate service.

Closed-loop clients on real sockets: ``clients`` threads each own a
:class:`~repro.service.client.ServiceClient` connection, walk their
round-robin share of the job list ``rounds`` times, and measure each
job's submit-to-result latency from the caller's side of the wire.
``burst > 1`` pipelines that many submits per connection before
collecting — the open-loop shape that drives a small ``--max-queue``
into visible ``queue_full`` backpressure.

This is the measurement harness behind
``benchmarks/results/service_throughput.txt``; it lives in the package
(not under ``benchmarks/``) so experiments and notebooks can reuse it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..engine.batch import BatchJob
from ..engine.latency import LatencySummary
from ..service.client import JobRejected, ServiceClient


@dataclass
class LoadReport:
    """Aggregate outcome of one load-generation run."""

    clients: int
    offered: int  # jobs submitted (or attempted) across all clients
    completed: int  # results received with ok == True
    job_errors: int  # results received with a captured job error
    rejected: int  # transport rejections (queue_full, deadline, ...)
    cache_hits: int
    wall_s: float
    latency_ms: LatencySummary  # submit->result, completed jobs only
    #: server-side metrics-registry snapshot taken after the run (with
    #: ``fetch_metrics=True``); pairs the client-observed latencies
    #: above with the server's own queue/compile/sim histograms
    server_metrics: dict | None = None

    @property
    def throughput(self) -> float:
        """Completed jobs per second of wall time."""
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    def summary(self) -> str:
        return (
            f"{self.clients} clients: {self.completed}/{self.offered} "
            f"completed, {self.rejected} rejected, {self.job_errors} job "
            f"errors in {self.wall_s:.2f}s ({self.throughput:.1f} jobs/s); "
            f"latency {self.latency_ms.brief('ms')}"
        )


def run_load(
    endpoint: dict,
    jobs: list[BatchJob],
    clients: int = 8,
    rounds: int = 1,
    burst: int = 1,
    deadline_ms: float | None = None,
    timeout: float = 120.0,
    fetch_metrics: bool = False,
) -> LoadReport:
    """Drive a running service from ``clients`` concurrent connections.

    ``endpoint`` is the kwargs dict a :class:`ServiceClient` takes
    (``{"path": ...}`` or ``{"host": ..., "port": ...}``), e.g. straight
    from :meth:`~repro.service.server.ServiceServer.endpoint`.
    """
    if clients < 1 or rounds < 1 or burst < 1:
        raise ValueError("clients, rounds, and burst must all be >= 1")
    per_thread: list[dict | None] = [None] * clients
    errors: list[BaseException] = []

    def worker(idx: int) -> None:
        mine = [job for job in jobs[idx::clients]] * rounds
        acc = {"offered": len(mine), "completed": 0, "job_errors": 0,
               "rejected": 0, "cache_hits": 0, "lat": []}
        try:
            with ServiceClient(**endpoint, timeout=timeout) as client:
                for k in range(0, len(mine), burst):
                    chunk = mine[k:k + burst]
                    started = []
                    for job in chunk:
                        started.append(
                            (time.perf_counter(),
                             client.start(job, deadline_ms))
                        )
                    for t0, req_id in started:
                        try:
                            br = client.result(req_id)
                        except JobRejected:
                            acc["rejected"] += 1
                            continue
                        if br.ok:
                            acc["completed"] += 1
                            acc["cache_hits"] += bool(br.cache_hit)
                            acc["lat"].append(
                                (time.perf_counter() - t0) * 1e3
                            )
                        else:
                            acc["job_errors"] += 1
        except BaseException as exc:  # surface thread failures to caller
            errors.append(exc)
            return
        per_thread[idx] = acc

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    if errors:
        raise errors[0]
    done = [acc for acc in per_thread if acc is not None]
    all_lat = [ms for acc in done for ms in acc["lat"]]
    server_metrics = None
    if fetch_metrics:
        with ServiceClient(**endpoint, timeout=timeout) as client:
            server_metrics = client.metrics()
    return LoadReport(
        clients=clients,
        offered=sum(acc["offered"] for acc in done),
        completed=sum(acc["completed"] for acc in done),
        job_errors=sum(acc["job_errors"] for acc in done),
        rejected=sum(acc["rejected"] for acc in done),
        cache_hits=sum(acc["cache_hits"] for acc in done),
        wall_s=wall,
        latency_ms=LatencySummary.from_samples(all_lat),
        server_metrics=server_metrics,
    )
