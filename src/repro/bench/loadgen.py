"""Load generators for the compile/simulate service (and fleet).

Two campaign shapes, both speaking real sockets:

* **Closed-loop** (:func:`run_load`): ``clients`` threads each own a
  :class:`~repro.service.client.ServiceClient` connection, walk their
  share of the job list ``rounds`` times, and measure submit-to-result
  latency from the caller's side of the wire.  ``burst > 1`` pipelines
  that many submits per connection before collecting.
* **Open-loop** (:func:`run_open_loop`): arrivals are scheduled at
  fixed offsets drawn from a target *offered rate*, independent of
  completions — the shape that reveals saturation and tail latency
  honestly (a closed loop self-throttles when the server slows down).
  :func:`saturation_sweep` steps the rate over a grid and reports the
  saturation throughput and its p99 — the fleet-vs-single comparison
  recorded in ``BENCH_service.json``.

Both shapes take a ``seed``: the per-connection job sequence (and the
open-loop arrival schedule) is drawn from ``random.Random(seed)``, so
two runs of one campaign offer a byte-identical workload.

Runnable directly: ``python -m repro.bench.loadgen --socket PATH
--rate 200 --duration 5 --seed 7 [--zipf 1.1] [--sweep 50,100,200,400]
[--json]``.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from ..engine.batch import BatchJob
from ..engine.latency import LatencySummary
from ..service.client import AsyncServiceClient, JobRejected, ServiceClient


@dataclass
class LoadReport:
    """Aggregate outcome of one load-generation run."""

    clients: int
    offered: int  # jobs submitted (or attempted) across all clients
    completed: int  # results received with ok == True
    job_errors: int  # results received with a captured job error
    rejected: int  # transport rejections (queue_full, deadline, ...)
    cache_hits: int
    wall_s: float
    latency_ms: LatencySummary  # submit->result, completed jobs only
    #: server-side metrics-registry snapshot taken after the run (with
    #: ``fetch_metrics=True``); pairs the client-observed latencies
    #: above with the server's own queue/compile/sim histograms
    server_metrics: dict | None = None
    #: open-loop campaigns: the target arrival rate (jobs/s) the
    #: schedule was drawn for; None for closed-loop runs
    offered_rate: float | None = None

    @property
    def throughput(self) -> float:
        """Completed jobs per second of wall time."""
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    def summary(self) -> str:
        rate = (
            f" @ {self.offered_rate:.0f}/s offered"
            if self.offered_rate is not None else ""
        )
        return (
            f"{self.clients} clients{rate}: {self.completed}/{self.offered} "
            f"completed, {self.rejected} rejected, {self.job_errors} job "
            f"errors in {self.wall_s:.2f}s ({self.throughput:.1f} jobs/s); "
            f"latency {self.latency_ms.brief('ms')}"
        )

    def to_json(self) -> dict:
        return {
            "clients": self.clients,
            "offered": self.offered,
            "completed": self.completed,
            "job_errors": self.job_errors,
            "rejected": self.rejected,
            "cache_hits": self.cache_hits,
            "wall_s": self.wall_s,
            "throughput": self.throughput,
            "offered_rate": self.offered_rate,
            "latency_ms": self.latency_ms.to_json(),
        }


def run_load(
    endpoint: dict,
    jobs: list[BatchJob],
    clients: int = 8,
    rounds: int = 1,
    burst: int = 1,
    deadline_ms: float | None = None,
    timeout: float = 120.0,
    fetch_metrics: bool = False,
    seed: int | None = None,
) -> LoadReport:
    """Drive a running service from ``clients`` concurrent connections.

    ``endpoint`` is the kwargs dict a :class:`ServiceClient` takes
    (``{"path": ...}`` or ``{"host": ..., "port": ...}``), e.g. straight
    from :meth:`~repro.service.server.ServiceServer.endpoint`.

    With ``seed`` set, each thread's job walk is an independent draw
    from a per-thread ``random.Random`` derived from ``(seed, idx)``
    over the whole job list (same
    length as the round-robin share) — reproducible run to run, and a
    realistic mix instead of a fixed stride.  ``seed=None`` keeps the
    legacy deterministic round-robin split.
    """
    if clients < 1 or rounds < 1 or burst < 1:
        raise ValueError("clients, rounds, and burst must all be >= 1")
    per_thread: list[dict | None] = [None] * clients
    errors: list[BaseException] = []

    def worker(idx: int) -> None:
        if seed is not None:
            rng = random.Random((seed << 16) ^ idx)
            share = len(jobs[idx::clients]) * rounds
            mine = [jobs[rng.randrange(len(jobs))] for _ in range(share)]
        else:
            mine = [job for job in jobs[idx::clients]] * rounds
        acc = {"offered": len(mine), "completed": 0, "job_errors": 0,
               "rejected": 0, "cache_hits": 0, "lat": []}
        try:
            with ServiceClient(**endpoint, timeout=timeout) as client:
                for k in range(0, len(mine), burst):
                    chunk = mine[k:k + burst]
                    started = []
                    for job in chunk:
                        started.append(
                            (time.perf_counter(),
                             client.start(job, deadline_ms))
                        )
                    for t0, req_id in started:
                        try:
                            br = client.result(req_id)
                        except JobRejected:
                            acc["rejected"] += 1
                            continue
                        if br.ok:
                            acc["completed"] += 1
                            acc["cache_hits"] += bool(br.cache_hit)
                            acc["lat"].append(
                                (time.perf_counter() - t0) * 1e3
                            )
                        else:
                            acc["job_errors"] += 1
        except BaseException as exc:  # surface thread failures to caller
            errors.append(exc)
            return
        per_thread[idx] = acc

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    if errors:
        raise errors[0]
    done = [acc for acc in per_thread if acc is not None]
    all_lat = [ms for acc in done for ms in acc["lat"]]
    server_metrics = None
    if fetch_metrics:
        with ServiceClient(**endpoint, timeout=timeout) as client:
            server_metrics = client.metrics()
    return LoadReport(
        clients=clients,
        offered=sum(acc["offered"] for acc in done),
        completed=sum(acc["completed"] for acc in done),
        job_errors=sum(acc["job_errors"] for acc in done),
        rejected=sum(acc["rejected"] for acc in done),
        cache_hits=sum(acc["cache_hits"] for acc in done),
        wall_s=wall,
        latency_ms=LatencySummary.from_samples(all_lat),
        server_metrics=server_metrics,
    )


# -- open-loop campaigns ----------------------------------------------------


def zipf_weights(n: int, s: float = 1.1) -> list[float]:
    """Zipf popularity over ``n`` items: weight of rank ``i`` (0-based)
    is ``(i + 1) ** -s``, normalized to sum to 1.

    The skewed-traffic shape the Labyrinth workload motivates: a few
    graphs dominate resubmissions while a long tail stays cold — the
    distribution adaptive tiering (and the fleet's hot replication) is
    designed for.
    """
    if n < 1:
        raise ValueError("need at least one item")
    if s < 0:
        raise ValueError("skew must be >= 0")
    raw = [(i + 1) ** -s for i in range(n)]
    total = sum(raw)
    return [w / total for w in raw]


def plan_campaign(
    jobs: list[BatchJob],
    rate: float,
    duration_s: float,
    seed: int = 0,
    connections: int = 4,
    weights: list[float] | None = None,
) -> list[list[tuple[float, int]]]:
    """A deterministic open-loop schedule: per connection, a list of
    ``(arrival_offset_s, job_index)`` pairs.

    Inter-arrival gaps are exponential (Poisson arrivals) at the target
    aggregate ``rate``, split evenly across ``connections``; job indices
    are uniform draws, or weighted draws when ``weights`` gives one
    weight per job (e.g. :func:`zipf_weights` for skewed graph
    popularity).  Everything comes from ``random.Random(seed)``,
    so the same (jobs, rate, duration, seed, connections, weights)
    tuple yields a byte-identical campaign — the reproducibility
    contract the bench results depend on.
    """
    if rate <= 0 or duration_s <= 0 or connections < 1:
        raise ValueError("rate, duration_s, and connections must be positive")
    if not jobs:
        raise ValueError("need at least one job to schedule")
    if weights is not None and len(weights) != len(jobs):
        raise ValueError("weights must give one weight per job")
    rng = random.Random(seed)
    cum: list[float] | None = None
    if weights is not None:
        cum = []
        acc = 0.0
        for w in weights:
            acc += w
            cum.append(acc)
    per_conn_rate = rate / connections
    schedules: list[list[tuple[float, int]]] = []
    for _ in range(connections):
        t = 0.0
        sched: list[tuple[float, int]] = []
        while True:
            t += rng.expovariate(per_conn_rate)
            if t >= duration_s:
                break
            if cum is None:
                idx = rng.randrange(len(jobs))
            else:
                idx = rng.choices(range(len(jobs)), cum_weights=cum, k=1)[0]
            sched.append((t, idx))
        schedules.append(sched)
    return schedules


def run_open_loop(
    endpoint: dict,
    jobs: list[BatchJob],
    rate: float,
    duration_s: float,
    connections: int = 4,
    seed: int = 0,
    deadline_ms: float | None = None,
    drain_timeout_s: float = 60.0,
    fetch_metrics: bool = False,
    weights: list[float] | None = None,
) -> LoadReport:
    """Offer ``rate`` jobs/s for ``duration_s`` regardless of how fast
    results come back, then collect everything in flight.

    Each connection is one :class:`AsyncServiceClient` on a shared event
    loop; an arrival whose scheduled time has passed is submitted
    immediately (late arrivals are not dropped — the offered load is
    exactly the planned campaign).  Latency is measured submit→result
    per job; rejections (``queue_full``, ``deadline_expired``,
    ``shard_failed``, ...) count separately from job errors.
    """
    import asyncio

    schedules = plan_campaign(
        jobs, rate, duration_s, seed, connections, weights=weights
    )

    async def drive_conn(sched: list[tuple[float, int]], acc: dict) -> None:
        client = AsyncServiceClient(**endpoint, retries=20, backoff_s=0.05)
        pending: set = set()

        async def one(job: BatchJob) -> None:
            t0 = time.perf_counter()
            try:
                br = await client.submit(job, deadline_ms)
            except JobRejected:
                acc["rejected"] += 1
                return
            except Exception:
                acc["rejected"] += 1  # torn connection mid-flight
                return
            if br.ok:
                acc["completed"] += 1
                acc["cache_hits"] += bool(br.cache_hit)
                acc["lat"].append((time.perf_counter() - t0) * 1e3)
            else:
                acc["job_errors"] += 1

        async with client:
            start = time.perf_counter()
            for offset, job_idx in sched:
                delay = offset - (time.perf_counter() - start)
                if delay > 0:
                    await asyncio.sleep(delay)
                acc["offered"] += 1
                task = asyncio.create_task(one(jobs[job_idx]))
                pending.add(task)
                task.add_done_callback(pending.discard)
            if pending:
                await asyncio.wait_for(
                    asyncio.gather(*list(pending), return_exceptions=True),
                    drain_timeout_s,
                )

    async def campaign() -> tuple[list[dict], float]:
        accs = [
            {"offered": 0, "completed": 0, "job_errors": 0,
             "rejected": 0, "cache_hits": 0, "lat": []}
            for _ in schedules
        ]
        t0 = time.perf_counter()
        await asyncio.gather(*[
            drive_conn(sched, acc) for sched, acc in zip(schedules, accs)
        ])
        return accs, time.perf_counter() - t0

    accs, wall = asyncio.run(campaign())
    server_metrics = None
    if fetch_metrics:
        with ServiceClient(**endpoint, timeout=30.0, retries=5) as client:
            server_metrics = client.metrics()
    all_lat = [ms for acc in accs for ms in acc["lat"]]
    return LoadReport(
        clients=len(schedules),
        offered=sum(acc["offered"] for acc in accs),
        completed=sum(acc["completed"] for acc in accs),
        job_errors=sum(acc["job_errors"] for acc in accs),
        rejected=sum(acc["rejected"] for acc in accs),
        cache_hits=sum(acc["cache_hits"] for acc in accs),
        wall_s=wall,
        latency_ms=LatencySummary.from_samples(all_lat),
        server_metrics=server_metrics,
        offered_rate=rate,
    )


def saturation_sweep(
    endpoint: dict,
    jobs: list[BatchJob],
    rates: list[float],
    duration_s: float = 3.0,
    connections: int = 4,
    seed: int = 0,
    deadline_ms: float | None = None,
    weights: list[float] | None = None,
) -> dict:
    """Step the offered rate over ``rates`` and find saturation: the
    highest *achieved* throughput across the grid, with its p99.

    Returns ``{"points": [LoadReport.to_json()...], "saturation":
    {"offered_rate", "throughput", "p99_ms"}}`` — the comparison unit
    ``BENCH_service.json`` records for single-server vs fleet.
    """
    points = [
        run_open_loop(
            endpoint, jobs, rate, duration_s,
            connections=connections, seed=seed, deadline_ms=deadline_ms,
            weights=weights,
        )
        for rate in sorted(rates)
    ]
    best = max(points, key=lambda r: r.throughput)
    return {
        "points": [r.to_json() for r in points],
        "saturation": {
            "offered_rate": best.offered_rate,
            "throughput": best.throughput,
            "p50_ms": best.latency_ms.p50,
            "p99_ms": best.latency_ms.p99,
        },
    }


# -- CLI --------------------------------------------------------------------


def _default_jobs(n_programs: int = 8, iters: int = 400) -> list[BatchJob]:
    """A small mixed workload: ``n_programs`` distinct accumulation
    loops (distinct graph keys — so fleet routing has keys to spread)
    with per-program iteration counts around ``iters``."""
    from ..translate.pipeline import CompileOptions

    jobs = []
    for p in range(n_programs):
        source = (
            f"acc := {p};\n"
            f"i := 0;\n"
            f"while i < n do {{\n"
            f"  acc := acc + i * {p + 1};\n"
            f"  i := i + 1;\n"
            f"}}\n"
            f"r := acc;\n"
        )
        jobs.append(BatchJob(
            source=source,
            options=CompileOptions(),
            inputs={"n": iters + 10 * p},
            name=f"bench{p}",
        ))
    return jobs


def main(argv: list[str] | None = None) -> int:
    import argparse
    import json as _json

    ap = argparse.ArgumentParser(
        prog="python -m repro.bench.loadgen",
        description="Open-loop load campaign against a service or fleet.",
    )
    ap.add_argument("--socket", help="UNIX socket path of the server/router")
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int)
    ap.add_argument("--rate", type=float, default=100.0,
                    help="offered jobs/s (single run)")
    ap.add_argument("--duration", type=float, default=3.0,
                    help="seconds per campaign")
    ap.add_argument("--connections", type=int, default=4)
    ap.add_argument("--seed", type=int, default=0,
                    help="campaign seed (same seed = same workload)")
    ap.add_argument("--deadline-ms", type=float, default=None)
    ap.add_argument("--programs", type=int, default=8,
                    help="distinct programs in the workload mix")
    ap.add_argument("--iters", type=int, default=400,
                    help="loop iterations per program (job weight)")
    ap.add_argument("--zipf", type=float, default=None, metavar="S",
                    help="skew job popularity by a Zipf(S) distribution "
                    "(e.g. 1.1) instead of uniform draws")
    ap.add_argument("--sweep", default=None,
                    help="comma-separated rates; run a saturation sweep")
    ap.add_argument("--json", action="store_true", dest="as_json",
                    help="emit the report as JSON on stdout")
    args = ap.parse_args(argv)

    if args.socket is None and args.port is None:
        ap.error("need --socket or --port")
    endpoint = (
        {"path": args.socket} if args.socket is not None
        else {"host": args.host, "port": args.port}
    )
    jobs = _default_jobs(args.programs, args.iters)
    weights = (
        zipf_weights(len(jobs), args.zipf) if args.zipf is not None else None
    )
    if args.sweep:
        rates = [float(r) for r in args.sweep.split(",") if r.strip()]
        out = saturation_sweep(
            endpoint, jobs, rates, args.duration,
            connections=args.connections, seed=args.seed,
            deadline_ms=args.deadline_ms, weights=weights,
        )
        if args.as_json:
            print(_json.dumps(out, indent=2))
        else:
            for pt in out["points"]:
                print(
                    f"rate {pt['offered_rate']:.0f}/s -> "
                    f"{pt['throughput']:.1f} done/s, "
                    f"p99 {pt['latency_ms']['p99']:.1f}ms, "
                    f"{pt['rejected']} rejected"
                )
            sat = out["saturation"]
            print(
                f"saturation: {sat['throughput']:.1f} jobs/s "
                f"(offered {sat['offered_rate']:.0f}/s, "
                f"p99 {sat['p99_ms']:.1f}ms)"
            )
    else:
        report = run_open_loop(
            endpoint, jobs, args.rate, args.duration,
            connections=args.connections, seed=args.seed,
            deadline_ms=args.deadline_ms, weights=weights,
        )
        if args.as_json:
            print(_json.dumps(report.to_json(), indent=2))
        else:
            print(report.summary())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
