"""The workload corpus: every example program from the paper plus classic
kernels exercising each subsystem.

Each workload is source text with named input sets, so tests and benches
run the same programs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Workload:
    """A named program plus input sets to run it under."""

    name: str
    source: str
    inputs: tuple[dict, ...] = (dict(),)
    description: str = ""

    def has_aliasing(self) -> bool:
        """True if the (expanded) program's alias relation is nontrivial —
        such programs need Schema 3 or memory_elim (Schema 2 assumes no
        aliasing, Section 3)."""
        from ..analysis.alias import AliasStructure
        from ..lang.parser import parse
        from ..lang.subroutines import expand_subroutines

        prog = parse(self.source)
        if prog.subs:
            prog, _ = expand_subroutines(prog)
        return bool(AliasStructure.from_program(prog).pairs)

    def uses_arrays(self) -> bool:
        from ..lang.parser import parse

        return bool(parse(self.source).arrays)


#: Figure 1's running example: the loop the whole paper develops.
RUNNING_EXAMPLE = Workload(
    "running_example",
    """
    x := 0;
    l: y := x + 1;
       x := x + 1;
       if x < 5 then goto l;
    """,
    description="Figure 1: the paper's running example loop",
)

#: Figure 9(a): x is not referenced inside the conditional.
FIGURE_9 = Workload(
    "figure_9",
    """
    x := x + 1;
    if w == 0 then { y := 1; } else { y := 2; }
    x := 0;
    """,
    inputs=({"w": 0}, {"w": 7}),
    description="Figure 9: restrictive sequential ordering (redundant switch)",
)

#: The Section 5 FORTRAN aliasing example's alias structure:
#: [x]={x,z}, [y]={y,z}, [z]={x,y,z}.
FORTRAN_ALIAS = Workload(
    "fortran_alias",
    """
    alias (x, z); alias (y, z);
    x := 1;
    y := x + 2;
    z := y * 3;
    w := z + x;
    """,
    description="Section 5: SUBROUTINE F(X,Y,Z) called as F(A,B,A), F(C,D,D)",
)

#: The same scenario written with actual subroutines: the alias structure
#: is *derived* from the two call sites instead of declared.
FORTRAN_SUB = Workload(
    "fortran_sub",
    """
    sub f(x, y, z) {
      t := x + y;
      z := t * 2;
      y := z - x;
    }
    a := 1; b := 2; c := 3; d := 4;
    call f(a, b, a);
    call f(c, d, d);
    r := a + b + c + d;
    """,
    description="Section 5 via sub/call: F(A,B,A) and F(C,D,D) induce "
    "X~Z and Y~Z",
)

#: Section 6.3's loop: stores to successive array elements.
ARRAY_LOOP = Workload(
    "array_loop",
    """
    array x[16];
    i := 0;
    s: i := i + 1;
       x[i] := 1;
       if i < 10 then goto s;
    """,
    description="Section 6.3: iteration-independent array stores",
)

NESTED_LOOPS = Workload(
    "nested_loops",
    """
    t := 0; i := 0;
    outer: j := 0;
    inner: t := t + i * j;
       j := j + 1;
       if j < 4 then goto inner;
    i := i + 1;
    if i < 4 then goto outer;
    """,
    description="doubly nested unstructured loops",
)

UNSTRUCTURED = Workload(
    "unstructured",
    """
    goto mid;
    top: x := x + 10;
       y := y + 1;
    mid: x := x + 1;
    if x < 25 then goto top;
    z := x + y;
    """,
    description="goto into the middle of a loop region",
)

MULTI_EXIT_LOOP = Workload(
    "multi_exit_loop",
    """
    i := 0; s := 0;
    l: i := i + 1;
       s := s + i;
       if s > 40 then goto done;
       if i < 20 then goto l;
    done: r := s;
    """,
    description="loop with two distinct exits",
)

GCD = Workload(
    "gcd",
    """
    l: if a == b then goto done;
       if a < b then { b := b - a; } else { a := a - b; }
       goto l;
    done: g := a;
    """,
    inputs=({"a": 12, "b": 18}, {"a": 35, "b": 14}, {"a": 7, "b": 7}),
    description="Euclid's subtractive GCD: loop with internal branching",
)

COLLATZ = Workload(
    "collatz",
    """
    steps := 0;
    l: if n == 1 then goto done;
       if n % 2 == 0 then { n := n / 2; } else { n := 3 * n + 1; }
       steps := steps + 1;
       goto l;
    done: r := steps;
    """,
    inputs=({"n": 6}, {"n": 27},),
    description="Collatz steps: data-dependent iteration count",
)

FIB = Workload(
    "fib",
    """
    a := 0; b := 1; i := 0;
    while i < n do {
      t := a + b;
      a := b;
      b := t;
      i := i + 1;
    }
    """,
    inputs=({"n": 10}, {"n": 1}, {"n": 0}),
    description="iterative Fibonacci",
)

BUBBLE_SORT = Workload(
    "bubble_sort",
    """
    array a[8];
    a[0] := 5; a[1] := 3; a[2] := 8; a[3] := 1;
    a[4] := 9; a[5] := 2; a[6] := 7; a[7] := 4;
    i := 0;
    while i < 8 do {
      j := 0;
      while j < 7 do {
        if a[j] > a[j + 1] then {
          t := a[j];
          a[j] := a[j + 1];
          a[j + 1] := t;
        }
        j := j + 1;
      }
      i := i + 1;
    }
    """,
    description="bubble sort: array loads/stores under nested loops",
)

MATMUL = Workload(
    "matmul",
    """
    array a[9], b[9], c[9];
    k := 0;
    while k < 9 do { a[k] := k + 1; b[k] := 9 - k; k := k + 1; }
    i := 0;
    while i < 3 do {
      j := 0;
      while j < 3 do {
        s := 0;
        m := 0;
        while m < 3 do {
          s := s + a[i * 3 + m] * b[m * 3 + j];
          m := m + 1;
        }
        c[i * 3 + j] := s;
        j := j + 1;
      }
      i := i + 1;
    }
    """,
    description="3x3 matrix multiply: triply nested loops over arrays",
)

DOT_PRODUCT = Workload(
    "dot_product",
    """
    array v[8], w[8];
    i := 0;
    while i < 8 do { v[i] := i; w[i] := 2 * i; i := i + 1; }
    s := 0; i := 0;
    while i < 8 do { s := s + v[i] * w[i]; i := i + 1; }
    """,
    description="dot product: reads of two arrays per iteration",
)

ALIASED_SWAP = Workload(
    "aliased_swap",
    """
    alias (p, q);
    p := 10;
    t := q;
    q := t + 5;
    r := p;
    """,
    description="reads/writes through aliased names",
)

BRANCHY = Workload(
    "branchy",
    """
    if a < 10 then goto small;
    if a < 100 then goto medium;
    big: c := 3; goto done;
    small: c := 1; goto done;
    medium: c := 2; goto big;
    done: r := c;
    """,
    inputs=({"a": 5}, {"a": 50}, {"a": 500}),
    description="multiway unstructured branching with fallthrough chains",
)

SIEVE = Workload(
    "sieve",
    """
    array flag[30];
    i := 2;
    while i < 30 do { flag[i] := 1; i := i + 1; }
    p := 2;
    while p * p < 30 do {
      if flag[p] == 1 then {
        m := p * p;
        while m < 30 do { flag[m] := 0; m := m + p; }
      }
      p := p + 1;
    }
    count := 0; k := 2;
    while k < 30 do { count := count + flag[k]; k := k + 1; }
    """,
    description="sieve of Eratosthenes: strided array writes, triple nest",
)

BINARY_SEARCH = Workload(
    "binary_search",
    """
    array a[16];
    i := 0;
    while i < 16 do { a[i] := i * 3; i := i + 1; }
    lo := 0; hi := 16; found := 0 - 1;
    while lo < hi do {
      mid := (lo + hi) / 2;
      if a[mid] == key then { found := mid; hi := lo; }
      else {
        if a[mid] < key then { lo := mid + 1; } else { hi := mid; }
      }
    }
    """,
    inputs=({"key": 21}, {"key": 22}, {"key": 0}, {"key": 45}),
    description="binary search: data-dependent branching over an array",
)

HORNER = Workload(
    "horner",
    """
    array c[5];
    c[0] := 3; c[1] := 0 - 1; c[2] := 4; c[3] := 1; c[4] := 2;
    acc := 0; i := 4;
    while i >= 0 do {
      acc := acc * x + c[i];
      i := i - 1;
    }
    """,
    inputs=({"x": 2}, {"x": 0}, {"x": -3}),
    description="Horner polynomial evaluation: tight sequential recurrence",
)

PRIME_COUNT = Workload(
    "prime_count",
    """
    count := 0; n := 2;
    while n < 30 do {
      isp := 1; d := 2;
      while d * d <= n do {
        if n % d == 0 then { isp := 0; }
        d := d + 1;
      }
      count := count + isp;
      n := n + 1;
    }
    """,
    description="trial-division prime counting",
)

CORPUS: tuple[Workload, ...] = (
    RUNNING_EXAMPLE,
    FIGURE_9,
    FORTRAN_ALIAS,
    FORTRAN_SUB,
    ARRAY_LOOP,
    NESTED_LOOPS,
    UNSTRUCTURED,
    MULTI_EXIT_LOOP,
    GCD,
    COLLATZ,
    FIB,
    BUBBLE_SORT,
    MATMUL,
    DOT_PRODUCT,
    ALIASED_SWAP,
    BRANCHY,
    PRIME_COUNT,
    SIEVE,
    BINARY_SEARCH,
    HORNER,
)

_BY_NAME = {w.name: w for w in CORPUS}


def workload(name: str) -> Workload:
    return _BY_NAME[name]
