"""Statement-level control-flow graphs (paper Section 2.1) and interval
decomposition with loop-control insertion (Section 3).

A CFG has node kinds:

* ``START`` — unique initial node.  By the paper's convention an edge is
  added from start to end, making start a *fork* (its ``True`` out-direction
  enters the program, ``False`` goes to end).
* ``END`` — unique final node.
* ``ASSIGN`` — ``x := e`` or ``a[i] := e``.
* ``FORK`` — ``if p then goto l_t else goto l_f``; out-edges carry a boolean
  out-direction.
* ``JOIN`` — labeled no-computation nodes, the only legal goto targets (and
  the only ordinary nodes allowed more than one predecessor).
* ``LOOP_ENTRY`` / ``LOOP_EXIT`` — loop control statements inserted by
  :func:`insert_loop_controls` per Section 3.
"""

from .graph import CFG, CFGError, CFGNode, Edge, NodeKind
from .builder import build_cfg
from .intervals import (
    IrreducibleCFGError,
    Loop,
    decompose,
    find_loops,
    insert_loop_controls,
    split_irreducible,
)
from .dot import cfg_to_dot
from .optimize import OptReport, optimize_cfg

__all__ = [
    "CFG",
    "CFGError",
    "CFGNode",
    "Edge",
    "IrreducibleCFGError",
    "Loop",
    "NodeKind",
    "OptReport",
    "optimize_cfg",
    "build_cfg",
    "cfg_to_dot",
    "decompose",
    "find_loops",
    "insert_loop_controls",
    "split_irreducible",
]
