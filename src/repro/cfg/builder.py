"""AST -> control-flow graph construction.

Structured statements (``if``/``while``) are first lowered to the flat
assignment / fork / goto / labeled-join form of Section 2.1, then the graph
is wired up.  Labels that are actually targeted become JOIN nodes; a label on
any statement places the JOIN immediately before it (joins are the only legal
goto targets).

By the paper's convention an extra edge runs from start to end, making start
a fork: its ``True`` out-direction enters the program, ``False`` goes
straight to end.
"""

from __future__ import annotations

from ..lang.ast_nodes import (
    Assign,
    Call,
    CondGoto,
    Goto,
    If,
    Program,
    Skip,
    Stmt,
    While,
)
from .graph import CFG, CFGError, NodeKind


def _collect_all_labels(stmts: list[Stmt], out: set[str]) -> None:
    for s in stmts:
        if s.label:
            out.add(s.label)
        if isinstance(s, If):
            _collect_all_labels(s.then_body, out)
            _collect_all_labels(s.else_body, out)
        elif isinstance(s, While):
            _collect_all_labels(s.body, out)


def lower(prog: Program) -> list[Stmt]:
    """Flatten structured control flow into assignments, forks, gotos and
    labeled skips.  The returned list contains only Assign, CondGoto, Goto
    and Skip statements."""
    used: set[str] = set()
    _collect_all_labels(prog.body, used)
    counter = 0

    def fresh(base: str) -> str:
        nonlocal counter
        while True:
            name = f"_{base}{counter}"
            counter += 1
            if name not in used:
                used.add(name)
                return name

    out: list[Stmt] = []

    def emit(stmts: list[Stmt]) -> None:
        for s in stmts:
            if isinstance(s, Call):
                raise TypeError(
                    "subroutine calls must be expanded before CFG "
                    "construction (repro.lang.subroutines.expand_subroutines)"
                )
            if isinstance(s, (Assign, CondGoto, Goto, Skip)):
                out.append(s)
            elif isinstance(s, If):
                l_end = fresh("fi")
                l_then = fresh("then")
                if s.label:
                    out.append(Skip(label=s.label, location=s.location))
                if s.else_body:
                    l_else = fresh("else")
                    out.append(
                        CondGoto(s.cond, l_then, l_else, location=s.location)
                    )
                    out.append(Skip(label=l_then))
                    emit(s.then_body)
                    out.append(Goto(l_end))
                    out.append(Skip(label=l_else))
                    emit(s.else_body)
                else:
                    out.append(
                        CondGoto(s.cond, l_then, l_end, location=s.location)
                    )
                    out.append(Skip(label=l_then))
                    emit(s.then_body)
                out.append(Skip(label=l_end))
            elif isinstance(s, While):
                l_head = s.label or fresh("wh")
                l_body = fresh("do")
                l_end = fresh("od")
                out.append(Skip(label=l_head, location=s.location))
                out.append(CondGoto(s.cond, l_body, l_end, location=s.location))
                out.append(Skip(label=l_body))
                emit(s.body)
                out.append(Goto(l_head))
                out.append(Skip(label=l_end))
            else:
                raise TypeError(f"unknown statement {type(s).__name__}")

    emit(prog.body)
    return out


def _goto_targets(flat: list[Stmt]) -> set[str]:
    targets: set[str] = set()
    for s in flat:
        if isinstance(s, Goto):
            targets.add(s.target)
        elif isinstance(s, CondGoto):
            targets.add(s.then_target)
            if s.else_target is not None:
                targets.add(s.else_target)
    return targets


def build_cfg(prog: Program, simplify: bool = True) -> CFG:
    """Build and validate the CFG of a program.

    With ``simplify`` (default), JOIN nodes with a single predecessor are
    spliced out — they represent no computation and merge nothing, and the
    paper's figures draw only genuine merge points.

    Raises :class:`CFGError` if the program has a region with no path to
    end (a loop that cannot terminate).
    """
    flat = lower(prog)
    targets = _goto_targets(flat)

    cfg = CFG()
    start = cfg.add_node(NodeKind.START)
    end = cfg.add_node(NodeKind.END)

    joins: dict[str, int] = {}

    def join_for(label: str) -> int:
        if label not in joins:
            joins[label] = cfg.add_node(NodeKind.JOIN, label=label).id
        return joins[label]

    # dangling: out-points awaiting their successor
    dangling: list[tuple[int, bool | None]] = [(start.id, True)]

    def connect(dst: int) -> None:
        for src, d in dangling:
            cfg.add_edge(src, dst, d)

    for s in flat:
        if s.label and s.label in targets:
            j = join_for(s.label)
            connect(j)
            dangling = [(j, None)]
        if not dangling:
            # dead code: unreachable statement with no targeted label
            continue
        if isinstance(s, Skip):
            continue
        if isinstance(s, Assign):
            node = cfg.add_node(NodeKind.ASSIGN, target=s.target, expr=s.expr)
            connect(node.id)
            dangling = [(node.id, None)]
        elif isinstance(s, Goto):
            connect(join_for(s.target))
            dangling = []
        elif isinstance(s, CondGoto):
            node = cfg.add_node(NodeKind.FORK, pred=s.pred)
            connect(node.id)
            cfg.add_edge(node.id, join_for(s.then_target), True)
            if s.else_target is not None:
                cfg.add_edge(node.id, join_for(s.else_target), False)
                dangling = []
            else:
                dangling = [(node.id, False)]
        else:
            raise TypeError(f"unexpected flat statement {type(s).__name__}")

    connect(end.id)
    cfg.add_edge(start.id, end.id, False)  # the start->end convention edge

    _prune_unreachable(cfg)
    if simplify:
        _splice_trivial_joins(cfg)
    _check_terminating(cfg)
    cfg.validate()
    return cfg


def _prune_unreachable(cfg: CFG) -> None:
    reachable = cfg.reachable_from_entry()
    for nid in list(cfg.nodes):
        if nid not in reachable:
            cfg.remove_node(nid)


def _check_terminating(cfg: CFG) -> None:
    reaching = cfg.reaches_exit()
    stuck = set(cfg.nodes) - reaching
    if stuck:
        descs = ", ".join(cfg.node(n).describe() for n in sorted(stuck))
        raise CFGError(
            "program has a region with no path to end "
            f"(every node must lie on a start-to-end path): {descs}"
        )


def _splice_trivial_joins(cfg: CFG) -> None:
    for nid in list(cfg.nodes):
        node = cfg.nodes.get(nid)
        if node is None or node.kind is not NodeKind.JOIN:
            continue
        preds = cfg.in_edges(nid)
        if len(preds) != 1:
            continue
        (pe,) = preds
        (se,) = cfg.out_edges(nid)
        if se.dst == nid or pe.src == nid:
            continue  # self-loop join: keep (degenerate, caught by validate)
        cfg.remove_node(nid)
        cfg.add_edge(pe.src, se.dst, pe.direction)
