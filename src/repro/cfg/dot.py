"""Graphviz DOT export for CFGs (debugging and documentation)."""

from __future__ import annotations

from .graph import CFG, NodeKind

_SHAPES = {
    NodeKind.START: "circle",
    NodeKind.END: "doublecircle",
    NodeKind.ASSIGN: "box",
    NodeKind.FORK: "diamond",
    NodeKind.JOIN: "ellipse",
    NodeKind.LOOP_ENTRY: "house",
    NodeKind.LOOP_EXIT: "invhouse",
}


def cfg_to_dot(cfg: CFG, title: str = "cfg") -> str:
    """Render a CFG as DOT text.  Fork out-edges are labeled T/F."""
    lines = [f"digraph {title!r} {{", "  node [fontname=monospace];"]
    for nid in sorted(cfg.nodes):
        node = cfg.node(nid)
        shape = _SHAPES[node.kind]
        label = f"{nid}: {node.describe()}".replace('"', "'")
        lines.append(f'  n{nid} [shape={shape} label="{label}"];')
    for e in sorted(cfg.edges()):
        attr = ""
        if e.direction is True:
            attr = ' [label="T"]'
        elif e.direction is False:
            attr = ' [label="F"]'
        lines.append(f"  n{e.src} -> n{e.dst}{attr};")
    lines.append("}")
    return "\n".join(lines) + "\n"
