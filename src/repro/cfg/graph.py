"""Control-flow graph data structure."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, NamedTuple

from ..lang.ast_nodes import ArrayRef, Expr, Var, expr_vars


class CFGError(Exception):
    """Raised when a CFG violates the structural rules of Section 2.1."""


class NodeKind(enum.Enum):
    START = "start"
    END = "end"
    ASSIGN = "assign"
    FORK = "fork"
    JOIN = "join"
    LOOP_ENTRY = "loop_entry"
    LOOP_EXIT = "loop_exit"


class Edge(NamedTuple):
    """A CFG edge.  ``direction`` is the fork out-direction (True/False) for
    edges leaving a fork (or start), else None."""

    src: int
    dst: int
    direction: bool | None


@dataclass(slots=True)
class CFGNode:
    """One statement-level CFG node.

    Payload by kind:

    * ``ASSIGN``: ``target`` (Var or ArrayRef) and ``expr``.
    * ``FORK``: ``pred`` (the branch predicate expression).
    * ``JOIN``: ``label`` (source label, or a generated name).
    * ``LOOP_ENTRY``/``LOOP_EXIT``: ``loop_id``; ``carried_refs`` is filled in
      by interval analysis with the set of variables referenced anywhere in
      the loop body (these nodes must pass those access tokens through the
      loop's tag-management machinery, see Section 3/4).
    """

    id: int
    kind: NodeKind
    target: Var | ArrayRef | None = None
    expr: Expr | None = None
    pred: Expr | None = None
    label: str | None = None
    loop_id: int | None = None
    carried_refs: frozenset[str] = frozenset()
    # Loop-control nodes may instead name the exact *streams* they carry
    # (set by the optimized construction's carried-set closure); when None,
    # stream membership falls back to carried_refs.
    carried_streams: frozenset[str] | None = None
    # memoized refs(); anything that mutates target/expr/pred must call
    # invalidate_refs() (see cfg/optimize.py)
    _refs_cache: frozenset[str] | None = field(
        default=None, repr=False, compare=False
    )

    # -- variable reference sets -------------------------------------------

    def loads(self) -> frozenset[str]:
        """Variables this node reads (memory loads)."""
        if self.kind is NodeKind.ASSIGN:
            names = list(expr_vars(self.expr))
            if isinstance(self.target, ArrayRef):
                # the subscript is read; the array itself is read-modified
                # (storing one element of `a` is treated as a reference to
                # all of `a`, Section 6.3 first paragraph)
                names.extend(expr_vars(self.target.index))
            return frozenset(names)
        if self.kind is NodeKind.FORK:
            return frozenset(expr_vars(self.pred))
        return frozenset()

    def stores(self) -> frozenset[str]:
        """Variables this node writes (memory stores)."""
        if self.kind is NodeKind.ASSIGN:
            return frozenset({self.target.name})
        return frozenset()

    def refs(self) -> frozenset[str]:
        """All variables referenced by this node.

        For loop-control nodes this is ``carried_refs``: Section 4 treats a
        loop's entry/exit as referencing every variable used in the loop so
        that unused access tokens may bypass the loop entirely.
        """
        if self.kind in (NodeKind.LOOP_ENTRY, NodeKind.LOOP_EXIT):
            return self.carried_refs
        cached = self._refs_cache
        if cached is None:
            cached = self._refs_cache = self.loads() | self.stores()
        return cached

    def invalidate_refs(self) -> None:
        """Drop the memoized :meth:`refs` set after mutating this node's
        ``target``/``expr``/``pred`` in place."""
        self._refs_cache = None

    def describe(self) -> str:
        from ..lang.pretty import pretty_expr

        k = self.kind
        if k is NodeKind.ASSIGN:
            if isinstance(self.target, ArrayRef):
                tgt = f"{self.target.name}[{pretty_expr(self.target.index)}]"
            else:
                tgt = self.target.name
            return f"{tgt} := {pretty_expr(self.expr)}"
        if k is NodeKind.FORK:
            return f"if {pretty_expr(self.pred)}"
        if k is NodeKind.JOIN:
            return f"join {self.label or ''}".rstrip()
        if k in (NodeKind.LOOP_ENTRY, NodeKind.LOOP_EXIT):
            return f"{k.value} L{self.loop_id}"
        return k.value


@dataclass
class CFG:
    """Mutable control-flow graph with direction-labeled edges."""

    nodes: dict[int, CFGNode] = field(default_factory=dict)
    entry: int = -1
    exit: int = -1
    _succ: dict[int, list[Edge]] = field(default_factory=dict)
    _pred: dict[int, list[Edge]] = field(default_factory=dict)
    _next_id: int = 0

    # -- construction --------------------------------------------------------

    def add_node(self, kind: NodeKind, **payload) -> CFGNode:
        node = CFGNode(self._next_id, kind, **payload)
        self.nodes[node.id] = node
        self._succ[node.id] = []
        self._pred[node.id] = []
        self._next_id += 1
        if kind is NodeKind.START:
            if self.entry != -1:
                raise CFGError("multiple START nodes")
            self.entry = node.id
        elif kind is NodeKind.END:
            if self.exit != -1:
                raise CFGError("multiple END nodes")
            self.exit = node.id
        return node

    def add_edge(self, src: int, dst: int, direction: bool | None = None) -> Edge:
        edge = Edge(src, dst, direction)
        self._succ[src].append(edge)
        self._pred[dst].append(edge)
        return edge

    def remove_edge(self, edge: Edge) -> None:
        self._succ[edge.src].remove(edge)
        self._pred[edge.dst].remove(edge)

    def redirect_edge(self, edge: Edge, new_dst: int) -> Edge:
        """Replace ``edge`` with one of the same source/direction targeting
        ``new_dst``."""
        self.remove_edge(edge)
        return self.add_edge(edge.src, new_dst, edge.direction)

    def split_edge(self, edge: Edge, kind: NodeKind, **payload) -> CFGNode:
        """Insert a new node of ``kind`` on ``edge`` (src -> new -> dst)."""
        node = self.add_node(kind, **payload)
        self.remove_edge(edge)
        self.add_edge(edge.src, node.id, edge.direction)
        self.add_edge(node.id, edge.dst, None)
        return node

    def remove_node(self, nid: int) -> None:
        for e in list(self._succ[nid]):
            self.remove_edge(e)
        for e in list(self._pred[nid]):
            self.remove_edge(e)
        del self._succ[nid]
        del self._pred[nid]
        del self.nodes[nid]

    # -- queries --------------------------------------------------------------

    def node(self, nid: int) -> CFGNode:
        return self.nodes[nid]

    def out_edges(self, nid: int) -> list[Edge]:
        return list(self._succ[nid])

    def in_edges(self, nid: int) -> list[Edge]:
        return list(self._pred[nid])

    def succ_ids(self, nid: int) -> list[int]:
        return [e.dst for e in self._succ[nid]]

    def pred_ids(self, nid: int) -> list[int]:
        return [e.src for e in self._pred[nid]]

    def edges(self) -> Iterator[Edge]:
        for es in self._succ.values():
            yield from es

    def num_edges(self) -> int:
        return sum(len(es) for es in self._succ.values())

    def is_fork(self, nid: int) -> bool:
        """Forks *and* start (the paper's convention makes start a fork)."""
        return self.nodes[nid].kind in (NodeKind.FORK, NodeKind.START)

    def variables(self) -> list[str]:
        """All variables referenced by any node, deterministic order."""
        seen: dict[str, None] = {}
        for nid in sorted(self.nodes):
            for v in sorted(self.nodes[nid].refs()):
                seen.setdefault(v, None)
        return list(seen)

    # -- traversals -------------------------------------------------------------

    def reachable_from_entry(self) -> set[int]:
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            n = stack.pop()
            for s in self.succ_ids(n):
                if s not in seen:
                    seen.add(s)
                    stack.append(s)
        return seen

    def reaches_exit(self) -> set[int]:
        seen = {self.exit}
        stack = [self.exit]
        while stack:
            n = stack.pop()
            for p in self.pred_ids(n):
                if p not in seen:
                    seen.add(p)
                    stack.append(p)
        return seen

    def reverse_postorder(self) -> list[int]:
        """Reverse postorder from the entry (a topological order ignoring
        backedges)."""
        order: list[int] = []
        seen: set[int] = set()

        def dfs(root: int) -> None:
            stack: list[tuple[int, int]] = [(root, 0)]
            seen.add(root)
            while stack:
                nid, idx = stack[-1]
                succs = self.succ_ids(nid)
                if idx < len(succs):
                    stack[-1] = (nid, idx + 1)
                    s = succs[idx]
                    if s not in seen:
                        seen.add(s)
                        stack.append((s, 0))
                else:
                    order.append(nid)
                    stack.pop()

        dfs(self.entry)
        order.reverse()
        return order

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Check the structural rules of Section 2.1 (plus loop-control
        conventions).  Raises :class:`CFGError` on violation."""
        if self.entry == -1 or self.exit == -1:
            raise CFGError("missing START or END node")
        for nid, node in self.nodes.items():
            out = self._succ[nid]
            if node.kind in (NodeKind.FORK, NodeKind.START):
                dirs = sorted((e.direction for e in out), key=bool)
                if dirs != [False, True]:
                    raise CFGError(
                        f"fork node {nid} must have exactly True/False "
                        f"out-edges, has {dirs}"
                    )
            elif node.kind is NodeKind.END:
                if out:
                    raise CFGError("END node has outgoing edges")
            else:
                if len(out) != 1:
                    raise CFGError(
                        f"{node.kind.value} node {nid} must have exactly one "
                        f"successor, has {len(out)}"
                    )
                if out[0].direction is not None:
                    raise CFGError(f"non-fork node {nid} has a directed out-edge")
            if len(self._pred[nid]) > 1 and node.kind not in (
                NodeKind.JOIN,
                NodeKind.LOOP_ENTRY,
                NodeKind.END,  # end is the program's final merge point
            ):
                raise CFGError(
                    f"{node.kind.value} node {nid} has multiple predecessors "
                    "(only joins, loop entries, and end may merge control)"
                )
            if node.kind is NodeKind.START and self._pred[nid]:
                raise CFGError("START node has incoming edges")
        reachable = self.reachable_from_entry()
        if reachable != set(self.nodes):
            dead = sorted(set(self.nodes) - reachable)
            raise CFGError(f"unreachable nodes: {dead}")
        reaching = self.reaches_exit()
        if reaching != set(self.nodes):
            stuck = sorted(set(self.nodes) - reaching)
            raise CFGError(
                f"nodes with no path to end (nonterminating region): {stuck}"
            )

    # -- utilities -------------------------------------------------------------

    def copy(self) -> "CFG":
        new = CFG()
        new.nodes = {
            nid: CFGNode(
                n.id,
                n.kind,
                target=n.target,
                expr=n.expr,
                pred=n.pred,
                label=n.label,
                loop_id=n.loop_id,
                carried_refs=n.carried_refs,
                carried_streams=n.carried_streams,
            )
            for nid, n in self.nodes.items()
        }
        new.entry = self.entry
        new.exit = self.exit
        new._succ = {nid: list(es) for nid, es in self._succ.items()}
        new._pred = {nid: list(es) for nid, es in self._pred.items()}
        new._next_id = self._next_id
        return new

    def to_networkx(self):
        """Export to a networkx DiGraph (edge attr ``direction``)."""
        import networkx as nx

        g = nx.MultiDiGraph()
        for nid, node in self.nodes.items():
            g.add_node(nid, kind=node.kind.value, describe=node.describe())
        for e in self.edges():
            g.add_edge(e.src, e.dst, direction=e.direction)
        return g
