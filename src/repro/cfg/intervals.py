"""Interval (loop) decomposition and loop-control insertion — Section 3.

The paper decomposes the CFG hierarchically into nested *intervals* —
maximal single-entry subgraphs whose cyclic paths all contain the header —
and inserts two loop control statements per cyclic interval:

* a single ``loop entry`` node: all arcs to the header from outside the
  interval, and all backedges from within, are redirected to it; it alone
  leads to the header;
* a ``loop exit`` node on every edge ``A -> B`` with a path from ``A`` to the
  header inside the interval but none from ``B``.

We compute the decomposition with a recursive strongly-connected-component
analysis (equivalent to the loop nesting forest for reducible graphs): each
non-trivial SCC is a cyclic interval whose header is its unique entry node;
inner loops are the SCCs of the interval minus its header.  Graphs where an
SCC has multiple entry nodes are *irreducible*; the paper handles them by
code copying, which we signal with :class:`IrreducibleCFGError` (see
:func:`split_irreducible` in this module for the code-copying transform).
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import CFG, NodeKind


class IrreducibleCFGError(Exception):
    """A cyclic region has more than one entry node; interval decomposition
    needs code copying (node splitting) first."""


@dataclass
class Loop:
    """One cyclic interval.

    ``body`` contains the nodes of the cyclic region (including inner loops'
    nodes and inner loop-control nodes) but excludes this loop's own
    entry/exit control nodes.  ``refs`` is the set of variables referenced by
    any node in the body — the access tokens that must circulate through the
    loop's tag machinery (Section 4 lets all others bypass).
    """

    id: int
    header: int
    body: frozenset[int]
    entry_node: int
    exit_nodes: tuple[int, ...]
    parent: int | None
    depth: int
    refs: frozenset[str]
    back_sources: tuple[int, ...] = ()


def _sccs(node_set: set[int], cfg: CFG) -> list[set[int]]:
    """Strongly connected components of the subgraph induced by ``node_set``
    (iterative Tarjan).  Returns only the non-trivial ones: size > 1, or a
    single node with a self-edge."""
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    out: list[set[int]] = []
    counter = 0

    for root in node_set:
        if root in index:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                index[v] = low[v] = counter
                counter += 1
                stack.append(v)
                on_stack.add(v)
            recurse = False
            succs = [w for w in cfg.succ_ids(v) if w in node_set]
            while pi < len(succs):
                w = succs[pi]
                pi += 1
                if w not in index:
                    work[-1] = (v, pi)
                    work.append((w, 0))
                    recurse = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if recurse:
                continue
            work.pop()
            if low[v] == index[v]:
                comp: set[int] = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.add(w)
                    if w == v:
                        break
                if len(comp) > 1 or any(
                    e.dst == v for e in cfg.out_edges(v)
                ):
                    out.append(comp)
            if work:
                pv, _ = work[-1]
                low[pv] = min(low[pv], low[v])
    return out


def find_loops(cfg: CFG) -> list[Loop]:
    """Pure analysis: the loop nesting forest (headers, bodies, refs) without
    mutating the graph.  ``entry_node``/``exit_nodes`` are -1/() since no
    control nodes exist yet."""
    loops: list[Loop] = []

    def process(region: set[int], parent: int | None, depth: int) -> None:
        for scc in _sccs(region, cfg):
            entries = {
                e.dst
                for nid in scc
                for e in cfg.in_edges(nid)
                if e.src not in scc
            }
            if len(entries) != 1:
                raise IrreducibleCFGError(
                    f"cyclic region {sorted(scc)} has entries {sorted(entries)}"
                )
            header = entries.pop()
            refs = frozenset().union(*(cfg.node(n).refs() for n in scc))
            back = tuple(
                sorted(
                    e.src for e in cfg.in_edges(header) if e.src in scc
                )
            )
            lid = len(loops)
            loops.append(
                Loop(
                    id=lid,
                    header=header,
                    body=frozenset(scc),
                    entry_node=-1,
                    exit_nodes=(),
                    parent=parent,
                    depth=depth,
                    refs=refs,
                    back_sources=back,
                )
            )
            process(scc - {header}, lid, depth + 1)

    process(set(cfg.nodes), None, 0)
    return loops


def decompose(cfg: CFG) -> tuple[CFG, list[Loop]]:
    """:func:`insert_loop_controls`, applying :func:`split_irreducible`
    (the paper's code copying) first when the graph needs it."""
    try:
        return insert_loop_controls(cfg)
    except IrreducibleCFGError:
        return insert_loop_controls(split_irreducible(cfg))


def insert_loop_controls(cfg: CFG) -> tuple[CFG, list[Loop]]:
    """Return a transformed copy of ``cfg`` with LOOP_ENTRY/LOOP_EXIT nodes
    inserted for every cyclic interval, plus the loop descriptors.

    After the transform each loop header has exactly one predecessor (its
    LOOP_ENTRY); backedges and external entries both feed the LOOP_ENTRY.
    A token leaving ``k`` nested loops at once passes ``k`` LOOP_EXIT nodes,
    innermost first.
    """
    g = cfg.copy()
    loops: list[Loop] = []
    bodies: dict[int, set[int]] = {}

    def process(region: set[int], parent: int | None, depth: int) -> None:
        for scc in _sccs(region, g):
            entries = {
                e.dst
                for nid in scc
                for e in g.in_edges(nid)
                if e.src not in scc
            }
            if len(entries) != 1:
                raise IrreducibleCFGError(
                    f"cyclic region {sorted(scc)} has entries {sorted(entries)}"
                )
            header = entries.pop()
            refs = frozenset().union(*(g.node(n).refs() for n in scc))
            lid = len(loops)

            le = g.add_node(NodeKind.LOOP_ENTRY, loop_id=lid, carried_refs=refs)
            back_sources = []
            for e in list(g.in_edges(header)):
                if e.src in scc:
                    back_sources.append(e.src)
                g.redirect_edge(e, le.id)
            g.add_edge(le.id, header, None)

            exit_ids: list[int] = []
            for nid in sorted(scc):
                for e in list(g.out_edges(nid)):
                    if e.dst not in scc and e.dst != le.id:
                        lx = g.split_edge(
                            e, NodeKind.LOOP_EXIT, loop_id=lid, carried_refs=refs
                        )
                        exit_ids.append(lx.id)

            bodies[lid] = set(scc)
            loops.append(
                Loop(
                    id=lid,
                    header=header,
                    body=frozenset(),  # finalized below
                    entry_node=le.id,
                    exit_nodes=tuple(exit_ids),
                    parent=parent,
                    depth=depth,
                    refs=refs,
                    back_sources=tuple(sorted(back_sources)),
                )
            )
            process(scc - {header}, lid, depth + 1)

    process(set(g.nodes), None, 0)

    # A child's entry/exit control nodes live inside every strict ancestor's
    # body (they operate within the ancestor's tag context).
    for lp in loops:
        anc = lp.parent
        while anc is not None:
            bodies[anc].add(lp.entry_node)
            bodies[anc].update(lp.exit_nodes)
            anc = loops[anc].parent
    finalized = [
        Loop(
            id=lp.id,
            header=lp.header,
            body=frozenset(bodies[lp.id]),
            entry_node=lp.entry_node,
            exit_nodes=lp.exit_nodes,
            parent=lp.parent,
            depth=lp.depth,
            refs=lp.refs,
            back_sources=lp.back_sources,
        )
        for lp in loops
    ]
    g.validate()
    return g, finalized


#: test-only: reintroduce the PR-1 SCC-exit bug (clones connected straight
#: to external non-JOIN successors, creating multi-predecessor non-joins)
#: so the mutation-detection suite can prove the interval pass gets blamed
_TEST_SCC_EXIT_BUG = False


def split_irreducible(cfg: CFG, max_copies: int = 1000) -> CFG:
    """Code copying for irreducible regions (the paper: "if we allow code
    copying, then any control-flow graph can be decomposed into such nested
    intervals").

    Repeatedly finds a cyclic SCC with multiple entry nodes and splits one
    secondary entry by duplicating it (classic node splitting).  Bounded by
    ``max_copies`` to guard against pathological growth.
    """
    g = cfg.copy()
    copies = 0

    def find_offender(region: set[int]):
        """A multi-entry cyclic region at any nesting level, or None."""
        for scc in _sccs(region, g):
            entries = {
                e.dst
                for nid in scc
                for e in g.in_edges(nid)
                if e.src not in scc
            }
            if len(entries) > 1:
                return scc, entries
            header = entries.pop()
            inner = find_offender(scc - {header})
            if inner is not None:
                return inner
        return None

    while True:
        offender = find_offender(set(g.nodes))
        if offender is None:
            return g
        scc, entries = offender
        # Heuristic: split the entry with the fewest external in-edges.
        victim = min(
            sorted(entries),
            key=lambda n: sum(1 for e in g.in_edges(n) if e.src not in scc),
        )
        ext = [e for e in g.in_edges(victim) if e.src not in scc]
        node = g.node(victim)
        clone = g.add_node(
            node.kind,
            target=node.target,
            expr=node.expr,
            pred=node.pred,
            label=node.label,
            loop_id=node.loop_id,
            carried_refs=node.carried_refs,
        )
        for e in list(g.out_edges(victim)):
            # Successors inside the region may transiently merge control at
            # a non-join: later rounds rotate the secondary entry onward and
            # clone them too, restoring the invariant.  An edge *leaving*
            # the region is never revisited by that rotation, so a shared
            # successor there needs an explicit JOIN to merge at.
            if e.dst in scc or g.node(e.dst).kind in (
                NodeKind.JOIN,
                NodeKind.END,
            ) or _TEST_SCC_EXIT_BUG:
                g.add_edge(clone.id, e.dst, e.direction)
            else:
                j = g.split_edge(e, NodeKind.JOIN)
                g.add_edge(clone.id, j.id, e.direction)
        for e in ext:
            g.redirect_edge(e, clone.id)
        copies += 1
        if copies > max_copies:
            raise IrreducibleCFGError(
                f"node splitting exceeded {max_copies} copies"
            )
