"""Conventional optimizations over the control-flow graph.

The paper's conclusion argues its representation should support "conventional
optimizations" as well as parallelization.  This module provides the classic
trio at the CFG level, applied before translation so every schema benefits:

* **constant folding** — evaluate constant subexpressions (with the shared
  machine/interpreter semantics, so folding can never change meaning) and
  collapse forks whose predicate folds to a constant;
* **constant propagation** — replace a scalar use by a literal when every
  reaching definition assigns that same literal (the implicit entry
  definition counts as unknown: initial values are runtime inputs);
* **dead assignment elimination** — remove scalar assignments whose value
  can never be observed.  Final memory is observable for *every* variable
  (results are compared against the reference interpreter), so liveness
  runs with an all-live boundary at exit and only overwritten-before-end
  stores die.  Array stores never die (partial writes).

All passes iterate together to a fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.ast_nodes import ArrayRef, BinOp, Expr, IntLit, UnOp, Var
from ..semantics import apply_binop, apply_unop, truthy
from .graph import CFG, NodeKind


@dataclass
class OptReport:
    folded: int = 0
    propagated: int = 0
    dead_assignments: int = 0
    forks_resolved: int = 0

    def total(self) -> int:
        return (
            self.folded
            + self.propagated
            + self.dead_assignments
            + self.forks_resolved
        )


def fold_expr(e: Expr, report: OptReport | None = None) -> Expr:
    """Bottom-up constant folding with the shared total semantics."""
    if isinstance(e, BinOp):
        left = fold_expr(e.left, report)
        right = fold_expr(e.right, report)
        if isinstance(left, IntLit) and isinstance(right, IntLit):
            if report:
                report.folded += 1
            return IntLit(apply_binop(e.op, left.value, right.value))
        if left is not e.left or right is not e.right:
            return BinOp(e.op, left, right)
        return e
    if isinstance(e, UnOp):
        operand = fold_expr(e.operand, report)
        if isinstance(operand, IntLit):
            if report:
                report.folded += 1
            return IntLit(apply_unop(e.op, operand.value))
        if operand is not e.operand:
            return UnOp(e.op, operand)
        return e
    if isinstance(e, ArrayRef):
        index = fold_expr(e.index, report)
        if index is not e.index:
            return ArrayRef(e.name, index)
        return e
    return e


def _subst(e: Expr, env: dict[str, int]) -> tuple[Expr, int]:
    """Replace scalar reads that are known constants; returns (expr, count)."""
    if isinstance(e, Var):
        if e.name in env:
            return IntLit(env[e.name]), 1
        return e, 0
    if isinstance(e, ArrayRef):
        idx, n = _subst(e.index, env)
        return (ArrayRef(e.name, idx) if n else e), n
    if isinstance(e, BinOp):
        left, nl = _subst(e.left, env)
        right, nr = _subst(e.right, env)
        if nl or nr:
            return BinOp(e.op, left, right), nl + nr
        return e, 0
    if isinstance(e, UnOp):
        op, n = _subst(e.operand, env)
        return (UnOp(e.op, op) if n else e), n
    return e, 0


def _constant_defs(cfg: CFG) -> dict[tuple[int, str], int]:
    """(node, var) -> literal for scalar assignments of a literal."""
    out = {}
    for nid, node in cfg.nodes.items():
        if (
            node.kind is NodeKind.ASSIGN
            and isinstance(node.target, Var)
            and isinstance(node.expr, IntLit)
        ):
            out[(nid, node.target.name)] = node.expr.value
    return out


def propagate_constants(cfg: CFG, report: OptReport) -> bool:
    """One round of reaching-definitions constant propagation + folding."""
    from ..analysis.framework import reaching_definitions

    rd_in, _ = reaching_definitions(cfg)
    const_defs = _constant_defs(cfg)
    changed = False
    for nid, node in cfg.nodes.items():
        reads = node.loads()
        if not reads:
            continue
        env: dict[str, int] = {}
        for v in reads:
            defs = [(d, dv) for (d, dv) in rd_in[nid] if dv == v]
            vals = set()
            for d, dv in defs:
                if d == cfg.entry:
                    vals.add(None)  # runtime input: unknown
                else:
                    vals.add(const_defs.get((d, v)))
            if len(vals) == 1 and None not in vals and vals != {None}:
                (val,) = vals
                if val is not None:
                    env[v] = val
        if not env:
            continue
        if node.kind is NodeKind.ASSIGN:
            new_expr, n1 = _subst(node.expr, env)
            n2 = 0
            if isinstance(node.target, ArrayRef):
                new_idx, n2 = _subst(node.target.index, env)
                if n2:
                    node.target = ArrayRef(node.target.name, fold_expr(new_idx, report))
            if n1:
                node.expr = fold_expr(new_expr, report)
            if n1 or n2:
                node.invalidate_refs()
                report.propagated += n1 + n2
                changed = True
        elif node.kind is NodeKind.FORK:
            new_pred, n = _subst(node.pred, env)
            if n:
                node.pred = fold_expr(new_pred, report)
                node.invalidate_refs()
                report.propagated += n
                changed = True
    return changed


def fold_all(cfg: CFG, report: OptReport) -> bool:
    changed = False
    for node in cfg.nodes.values():
        if node.kind is NodeKind.ASSIGN:
            new = fold_expr(node.expr, report)
            if new is not node.expr:
                node.expr = new
                node.invalidate_refs()
                changed = True
            if isinstance(node.target, ArrayRef):
                ni = fold_expr(node.target.index, report)
                if ni is not node.target.index:
                    node.target = ArrayRef(node.target.name, ni)
                    node.invalidate_refs()
                    changed = True
        elif node.kind is NodeKind.FORK:
            new = fold_expr(node.pred, report)
            if new is not node.pred:
                node.pred = new
                node.invalidate_refs()
                changed = True
    return changed


def resolve_constant_forks(cfg: CFG, report: OptReport) -> bool:
    """A fork whose predicate is a literal always takes one branch: splice
    the fork out and prune whatever became unreachable."""
    changed = False
    for nid in list(cfg.nodes):
        node = cfg.nodes.get(nid)
        if (
            node is None
            or node.kind is not NodeKind.FORK
            or not isinstance(node.pred, IntLit)
            or nid == cfg.entry
        ):
            continue
        taken = truthy(node.pred.value)
        (in_edge,) = cfg.in_edges(nid)
        taken_edge = next(
            e for e in cfg.out_edges(nid) if e.direction is taken
        )
        cfg.remove_node(nid)
        cfg.add_edge(in_edge.src, taken_edge.dst, in_edge.direction)
        report.forks_resolved += 1
        changed = True
    if changed:
        reachable = cfg.reachable_from_entry()
        for nid in list(cfg.nodes):
            if nid not in reachable:
                cfg.remove_node(nid)
        _splice_orphan_joins(cfg)
    return changed


def _splice_orphan_joins(cfg: CFG) -> None:
    """Pruning can leave single-predecessor joins; splice them away."""
    for nid in list(cfg.nodes):
        node = cfg.nodes.get(nid)
        if node is None or node.kind is not NodeKind.JOIN:
            continue
        preds = cfg.in_edges(nid)
        if len(preds) != 1:
            continue
        (pe,) = preds
        (se,) = cfg.out_edges(nid)
        if se.dst == nid or pe.src == nid:
            continue
        cfg.remove_node(nid)
        cfg.add_edge(pe.src, se.dst, pe.direction)


def eliminate_dead_assignments(cfg: CFG, report: OptReport) -> bool:
    """Remove scalar assignments dead even under the all-observable exit."""
    from ..analysis.framework import solve_dataflow

    variables = frozenset(cfg.variables())

    def gen(n: int) -> frozenset:
        return cfg.node(n).loads()

    def kill(n: int) -> frozenset:
        node = cfg.node(n)
        if node.target is not None and isinstance(node.target, ArrayRef):
            return frozenset()
        return node.stores()

    live_in, live_out = solve_dataflow(
        cfg, direction="backward", gen=gen, kill=kill, boundary=variables
    )
    changed = False
    for nid in list(cfg.nodes):
        node = cfg.nodes.get(nid)
        if (
            node is None
            or node.kind is not NodeKind.ASSIGN
            or isinstance(node.target, ArrayRef)
        ):
            continue
        if node.target.name in live_out[nid]:
            continue
        # note: expressions are pure (reads have no side effects), so the
        # whole assignment can go
        (pe,) = cfg.in_edges(nid)
        (se,) = cfg.out_edges(nid)
        cfg.remove_node(nid)
        cfg.add_edge(pe.src, se.dst, pe.direction)
        report.dead_assignments += 1
        changed = True
    return changed


def optimize_cfg(cfg: CFG, max_rounds: int = 20) -> tuple[CFG, OptReport]:
    """Run all passes to a fixpoint on a copy of ``cfg``."""
    g = cfg.copy()
    report = OptReport()
    for _ in range(max_rounds):
        changed = False
        changed |= fold_all(g, report)
        changed |= propagate_constants(g, report)
        changed |= fold_all(g, report)
        changed |= resolve_constant_forks(g, report)
        changed |= eliminate_dead_assignments(g, report)
        if not changed:
            break
    g.validate()
    return g, report
