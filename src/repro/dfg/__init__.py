"""Dataflow graph intermediate representation (paper Section 2.2).

Graphs are made of operators (nodes) with numbered input/output *ports*
connected by arcs.  Tokens flow along arcs; an operator fires when the
firing rule for its kind is met (strict operators need a token on every
input port in the same tag context; merges fire per token).  Arcs may carry
ordinary values or dummy *access tokens* used only to sequence memory
operations — the paper draws the latter dotted, we flag them ``is_access``.

Key operators (Figure 2 plus the memory model of Section 2.2):

* ``SWITCH`` — routes its data input to the true or false output according
  to the boolean control input.
* ``MERGE`` — any arriving token is passed to the single output.
* ``SYNCH`` — waits for a token on every input, then emits one dummy token.
* ``LOAD``/``STORE`` (and the array forms ``ALOAD``/``ASTORE``) — split-phase
  operations against an updatable store, sequenced by access tokens.
* ``ILOAD``/``ISTORE`` — I-structure memory (Section 6.3): writes are
  single-assignment, reads may arrive early and are deferred until data.
* ``LOOP_ENTRY``/``LOOP_EXIT`` — the Section 3 loop control operators,
  implemented as tag management: entry allocates a fresh iteration context
  per trip, exit restores the parent context.
"""

from .nodes import DFGError, DFNode, OpKind, Seed, num_inputs, num_outputs
from .graph import Arc, DFGraph
from .stats import GraphStats, graph_stats
from .dot import dfg_to_dot

__all__ = [
    "Arc",
    "DFGError",
    "DFGraph",
    "DFNode",
    "GraphStats",
    "OpKind",
    "Seed",
    "dfg_to_dot",
    "graph_stats",
    "num_inputs",
    "num_outputs",
]
