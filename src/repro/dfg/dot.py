"""Graphviz DOT export for dataflow graphs.  Access-token arcs are dotted,
matching the paper's drawing convention."""

from __future__ import annotations

from .graph import DFGraph
from .nodes import OpKind

_SHAPES = {
    OpKind.START: "circle",
    OpKind.END: "doublecircle",
    OpKind.CONST: "plaintext",
    OpKind.BINOP: "circle",
    OpKind.UNOP: "circle",
    OpKind.LOAD: "box",
    OpKind.STORE: "box",
    OpKind.ALOAD: "box",
    OpKind.ASTORE: "box",
    OpKind.ILOAD: "box3d",
    OpKind.ISTORE: "box3d",
    OpKind.SWITCH: "trapezium",
    OpKind.MERGE: "invtrapezium",
    OpKind.SYNCH: "triangle",
    OpKind.LOOP_ENTRY: "house",
    OpKind.LOOP_EXIT: "invhouse",
}


def dfg_to_dot(g: DFGraph, title: str = "dfg") -> str:
    lines = [f"digraph {title!r} {{", "  node [fontname=monospace];"]
    for nid in sorted(g.nodes):
        node = g.node(nid)
        label = f"{nid}: {node.describe()}".replace('"', "'")
        lines.append(f'  n{nid} [shape={_SHAPES[node.kind]} label="{label}"];')
    for a in sorted(g.arcs()):
        style = " [style=dotted]" if a.is_access else ""
        lines.append(f"  n{a.src} -> n{a.dst}{style};")
    lines.append("}")
    return "\n".join(lines) + "\n"
