"""The dataflow graph container and builder API."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, NamedTuple

from .nodes import DFGError, DFNode, OpKind, num_inputs, num_outputs


class Arc(NamedTuple):
    """A directed arc from (src node, src output port) to (dst node, dst
    input port).  ``is_access`` marks dummy sequencing tokens — the paper's
    dotted arcs."""

    src: int
    src_port: int
    dst: int
    dst_port: int
    is_access: bool


class Port(NamedTuple):
    """A (node, output port) pair — the producer end of future arcs."""

    node: int
    port: int


@dataclass
class DFGraph:
    """A mutable dataflow graph.

    Invariants checked by :meth:`validate`:

    * exactly one START and one END node;
    * every input port of every node has exactly one incoming arc (fan-in is
      expressed through explicit MERGE operators);
    * output ports may fan out to any number of consumers (token
      replication) but must not dangle unless ``allow_dangling`` names them.
    """

    nodes: dict[int, DFNode] = field(default_factory=dict)
    start: int = -1
    end: int = -1
    _out: dict[int, dict[int, list[Arc]]] = field(default_factory=dict)
    _in: dict[int, dict[int, Arc]] = field(default_factory=dict)
    _next_id: int = 0

    # -- construction ----------------------------------------------------

    def add(self, kind: OpKind, **payload) -> DFNode:
        node = DFNode(self._next_id, kind, **payload)
        self.nodes[node.id] = node
        self._out[node.id] = {}
        self._in[node.id] = {}
        self._next_id += 1
        if kind is OpKind.START:
            if self.start != -1:
                raise DFGError("multiple START nodes")
            self.start = node.id
        elif kind is OpKind.END:
            if self.end != -1:
                raise DFGError("multiple END nodes")
            self.end = node.id
        return node

    def connect(
        self,
        src: Port | tuple[int, int],
        dst: int,
        dst_port: int,
        *,
        is_access: bool = False,
    ) -> Arc:
        """Wire an arc.  The destination port must be free."""
        s, sp = src
        if dst_port in self._in[dst]:
            raise DFGError(
                f"input port {dst_port} of node {dst} "
                f"({self.nodes[dst].describe()}) already connected"
            )
        if sp >= num_outputs(self.nodes[s]):
            raise DFGError(
                f"node {s} ({self.nodes[s].describe()}) has no output port {sp}"
            )
        if dst_port >= num_inputs(self.nodes[dst]):
            raise DFGError(
                f"node {dst} ({self.nodes[dst].describe()}) has no input port "
                f"{dst_port}"
            )
        arc = Arc(s, sp, dst, dst_port, is_access)
        self._out[s].setdefault(sp, []).append(arc)
        self._in[dst][dst_port] = arc
        return arc

    def adopt(self, node: DFNode) -> DFNode:
        """Copy ``node`` (payload shared — payload fields are immutable)
        from another graph under a fresh id here.  The bulk path the
        region stitcher uses to splice thousands of already-validated
        nodes without re-running per-field construction; START/END must
        go through :meth:`add` so their uniqueness stays enforced."""
        if node.kind in (OpKind.START, OpKind.END):
            raise DFGError("adopt() cannot take START/END nodes")
        # field-by-field construction: copy.copy on a slots dataclass goes
        # through __reduce_ex__ and is ~4x slower on this bulk path
        n2 = DFNode(
            self._next_id,
            node.kind,
            op=node.op,
            value=node.value,
            var=node.var,
            nports=node.nports,
            loop_id=node.loop_id,
            nchannels=node.nchannels,
            channel_labels=node.channel_labels,
            seeds=node.seeds,
            returns=node.returns,
            latency=node.latency,
            tag=node.tag,
        )
        self.nodes[n2.id] = n2
        self._out[n2.id] = {}
        self._in[n2.id] = {}
        self._next_id += 1
        return n2

    def splice_from(
        self, other: "DFGraph", skip_a: int, skip_b: int
    ) -> dict[int, int]:
        """Bulk-adopt every node of ``other`` except ``skip_a``/``skip_b``
        (its START/END), plus every arc whose two endpoints were adopted,
        renumbered into this graph.  Returns the old->new id map; arcs
        touching the skipped nodes are left for the caller to rewire.
        One tight loop instead of per-node :meth:`adopt` + per-arc
        :meth:`connect_unchecked` calls — the region stitcher splices
        hundreds of thousands of already-validated nodes this way."""
        idmap: dict[int, int] = {}
        nodes = self.nodes
        _out = self._out
        _in = self._in
        nid = self._next_id
        for onid in sorted(other.nodes):
            if onid == skip_a or onid == skip_b:
                continue
            n = other.nodes[onid]
            nodes[nid] = DFNode(
                nid, n.kind, n.op, n.value, n.var, n.nports, n.loop_id,
                n.nchannels, n.channel_labels, n.seeds, n.returns,
                n.latency, n.tag,
            )
            _out[nid] = {}
            _in[nid] = {}
            idmap[onid] = nid
            nid += 1
        self._next_id = nid
        get = idmap.get
        for src, ports in other._out.items():
            ns = get(src)
            if ns is None:
                continue
            o = _out[ns]
            for arcs in ports.values():
                for a in arcs:
                    nd = get(a.dst)
                    if nd is None:
                        continue
                    arc = Arc(ns, a.src_port, nd, a.dst_port, a.is_access)
                    lst = o.get(a.src_port)
                    if lst is None:
                        o[a.src_port] = [arc]
                    else:
                        lst.append(arc)
                    _in[nd][a.dst_port] = arc
        return idmap

    def connect_unchecked(
        self, s: int, sp: int, dst: int, dst_port: int, is_access: bool
    ) -> Arc:
        """:meth:`connect` minus the port checks — for splicing arcs
        between nodes copied from graphs that already validated them.
        The final :meth:`validate` still covers the stitched result."""
        arc = Arc(s, sp, dst, dst_port, is_access)
        out = self._out[s]
        lst = out.get(sp)
        if lst is None:
            out[sp] = [arc]
        else:
            lst.append(arc)
        self._in[dst][dst_port] = arc
        return arc

    def disconnect(self, arc: Arc) -> None:
        self._out[arc.src][arc.src_port].remove(arc)
        del self._in[arc.dst][arc.dst_port]

    def remove_node(self, nid: int) -> None:
        for arcs in list(self._out[nid].values()):
            for a in list(arcs):
                self.disconnect(a)
        for a in list(self._in[nid].values()):
            self.disconnect(a)
        del self._out[nid]
        del self._in[nid]
        del self.nodes[nid]
        if nid == self.start:
            self.start = -1
        if nid == self.end:
            self.end = -1

    # -- queries --------------------------------------------------------

    def node(self, nid: int) -> DFNode:
        return self.nodes[nid]

    def arcs(self) -> Iterator[Arc]:
        for ports in self._out.values():
            for arcs in ports.values():
                yield from arcs

    def num_arcs(self) -> int:
        return sum(len(a) for ports in self._out.values() for a in ports.values())

    def consumers(self, nid: int, port: int) -> list[Arc]:
        return list(self._out[nid].get(port, []))

    def producer(self, nid: int, port: int) -> Arc | None:
        return self._in[nid].get(port)

    def in_arcs(self, nid: int) -> list[Arc]:
        return list(self._in[nid].values())

    def out_arcs(self, nid: int) -> list[Arc]:
        return [a for arcs in self._out[nid].values() for a in arcs]

    def count(self, kind: OpKind) -> int:
        return sum(1 for n in self.nodes.values() if n.kind is kind)

    def of_kind(self, kind: OpKind) -> list[DFNode]:
        return [n for n in self.nodes.values() if n.kind is kind]

    # -- validation -------------------------------------------------------

    def validate(self, allow_dangling_outputs: bool = False) -> None:
        if self.start == -1 or self.end == -1:
            raise DFGError("missing START or END node")
        for nid, node in self.nodes.items():
            nin = num_inputs(node)
            for p in range(nin):
                if p not in self._in[nid]:
                    raise DFGError(
                        f"input port {p} of node {nid} ({node.describe()}, "
                        f"tag={node.tag!r}) is unconnected"
                    )
            for p in self._in[nid]:
                if p >= nin:
                    raise DFGError(
                        f"arc into nonexistent port {p} of node {nid}"
                    )
            if not allow_dangling_outputs:
                nout = num_outputs(node)
                for p in range(nout):
                    if not self._out[nid].get(p):
                        raise DFGError(
                            f"output port {p} of node {nid} ({node.describe()},"
                            f" tag={node.tag!r}) has no consumers"
                        )
            if node.kind is OpKind.START and len(node.seeds) == 0 and self.nodes:
                # a START with no seeds is legal only for the empty program
                pass
            if node.kind in (OpKind.MERGE, OpKind.SYNCH) and node.nports < 1:
                raise DFGError(f"{node.kind.value} node {nid} with no ports")
            if (
                node.kind in (OpKind.LOOP_ENTRY, OpKind.LOOP_EXIT)
                and node.nchannels < 1
            ):
                raise DFGError(f"{node.kind.value} node {nid} with no channels")

    def copy(self) -> "DFGraph":
        g = DFGraph()
        g.nodes = {
            nid: DFNode(
                n.id,
                n.kind,
                op=n.op,
                value=n.value,
                var=n.var,
                nports=n.nports,
                loop_id=n.loop_id,
                nchannels=n.nchannels,
                channel_labels=n.channel_labels,
                seeds=n.seeds,
                returns=n.returns,
                latency=n.latency,
                tag=n.tag,
            )
            for nid, n in self.nodes.items()
        }
        g.start = self.start
        g.end = self.end
        g._out = {
            nid: {p: list(arcs) for p, arcs in ports.items()}
            for nid, ports in self._out.items()
        }
        g._in = {nid: dict(ports) for nid, ports in self._in.items()}
        g._next_id = self._next_id
        return g
