"""Dataflow operator kinds and port conventions."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class DFGError(Exception):
    """Raised on malformed dataflow graphs."""


class OpKind(enum.Enum):
    START = "start"
    END = "end"
    CONST = "const"
    BINOP = "binop"
    UNOP = "unop"
    LOAD = "load"
    STORE = "store"
    ALOAD = "aload"
    ASTORE = "astore"
    ILOAD = "iload"
    ISTORE = "istore"
    SWITCH = "switch"
    MERGE = "merge"
    SYNCH = "synch"
    LOOP_ENTRY = "loop_entry"
    LOOP_EXIT = "loop_exit"


# Port conventions, by kind (i = input port, o = output port):
#
#   CONST       i0 trigger                         o0 value
#   BINOP       i0 left, i1 right                  o0 result
#   UNOP        i0 operand                         o0 result
#   LOAD v      i0 access                          o0 value, o1 access
#   STORE v     i0 value, i1 access                o0 access
#   ALOAD a     i0 index, i1 access                o0 value, o1 access
#   ASTORE a    i0 index, i1 value, i2 access      o0 access
#   ILOAD a     i0 index                           o0 value
#   ISTORE a    i0 index, i1 value                 o0 done-signal
#   SWITCH      i0 data, i1 control (bool)         o0 true-out, o1 false-out
#   MERGE       i0..i(n-1)                         o0
#   SYNCH       i0..i(n-1)                         o0 (dummy)
#   LOOP_ENTRY  i0..i(n-1) initial entries,        o0..o(n-1) channels
#               i(n)..i(2n-1) backedges
#   LOOP_EXIT   i0..i(n-1) channels                o0..o(n-1) channels
#   START       (none)                             o0..o(n-1), seeded
#   END         i0..i(n-1), per `returns`          (none)


@dataclass(frozen=True, slots=True)
class Seed:
    """What the machine places on a START output port at time zero.

    * ``kind == "access"`` — a dummy access token (``label`` names the
      variable/cover element, for traces only).
    * ``kind == "value"`` — the initial value of variable ``label`` from the
      initial store (the memory-elimination schema carries values on
      tokens from the very start).
    """

    kind: str  # "access" | "value"
    label: str

    def __post_init__(self) -> None:
        if self.kind not in ("access", "value"):
            raise DFGError(f"bad seed kind {self.kind!r}")


@dataclass(slots=True)
class DFNode:
    """One dataflow operator.

    Payload fields by kind:

    * CONST: ``value``
    * BINOP/UNOP: ``op``
    * LOAD/STORE/ALOAD/ASTORE/ILOAD/ISTORE: ``var`` (the location name)
    * MERGE/SYNCH: ``nports``
    * LOOP_ENTRY/LOOP_EXIT: ``loop_id``, ``nchannels``, ``channel_labels``
    * START: ``seeds`` (list of :class:`Seed`, one per output port)
    * END: ``returns`` (one entry per input port: a variable name whose
      final value the arriving token carries, or None for dummy tokens)
    * ``latency``: extra cycles this operator takes beyond the kind default
      (0 normally; benches use it to model slow units)
    * ``tag``: free-form provenance note ("stmt 4 read block", etc.)
    """

    id: int
    kind: OpKind
    op: str | None = None
    value: int | None = None
    var: str | None = None
    nports: int = 0
    loop_id: int | None = None
    nchannels: int = 0
    channel_labels: tuple[str, ...] = ()
    seeds: tuple[Seed, ...] = ()
    returns: tuple[str | None, ...] = ()
    latency: int = 0
    tag: str = ""

    def describe(self) -> str:
        k = self.kind
        if k is OpKind.CONST:
            return f"const {self.value}"
        if k in (OpKind.BINOP, OpKind.UNOP):
            return f"{self.op}"
        if k in (
            OpKind.LOAD,
            OpKind.STORE,
            OpKind.ALOAD,
            OpKind.ASTORE,
            OpKind.ILOAD,
            OpKind.ISTORE,
        ):
            return f"{k.value} {self.var}"
        if k in (OpKind.MERGE, OpKind.SYNCH):
            return f"{k.value}{self.nports}"
        if k in (OpKind.LOOP_ENTRY, OpKind.LOOP_EXIT):
            return f"{k.value} L{self.loop_id}"
        return k.value


def num_inputs(node: DFNode) -> int:
    k = node.kind
    if k is OpKind.START:
        return 0
    if k is OpKind.END:
        return len(node.returns)
    if k is OpKind.CONST:
        return 1
    if k is OpKind.BINOP:
        return 2
    if k is OpKind.UNOP:
        return 1
    if k is OpKind.LOAD:
        return 1
    if k is OpKind.STORE:
        return 2
    if k is OpKind.ALOAD:
        return 2
    if k is OpKind.ASTORE:
        return 3
    if k is OpKind.ILOAD:
        return 1
    if k is OpKind.ISTORE:
        return 2
    if k is OpKind.SWITCH:
        return 2
    if k in (OpKind.MERGE, OpKind.SYNCH):
        return node.nports
    if k is OpKind.LOOP_ENTRY:
        return 2 * node.nchannels
    if k is OpKind.LOOP_EXIT:
        return node.nchannels
    raise DFGError(f"unknown kind {k}")


def num_outputs(node: DFNode) -> int:
    k = node.kind
    if k is OpKind.START:
        return len(node.seeds)
    if k is OpKind.END:
        return 0
    if k in (OpKind.CONST, OpKind.BINOP, OpKind.UNOP):
        return 1
    if k is OpKind.LOAD:
        return 2
    if k is OpKind.STORE:
        return 1
    if k is OpKind.ALOAD:
        return 2
    if k is OpKind.ASTORE:
        return 1
    if k is OpKind.ILOAD:
        return 1
    if k is OpKind.ISTORE:
        return 1
    if k is OpKind.SWITCH:
        return 2
    if k in (OpKind.MERGE, OpKind.SYNCH):
        return 1
    if k in (OpKind.LOOP_ENTRY, OpKind.LOOP_EXIT):
        return node.nchannels
    raise DFGError(f"unknown kind {k}")


#: Kinds that fire per arriving token rather than matching all inputs.
NONSTRICT = frozenset({OpKind.MERGE})

#: Kinds that touch the updatable store (split-phase).
MEMORY_KINDS = frozenset(
    {OpKind.LOAD, OpKind.STORE, OpKind.ALOAD, OpKind.ASTORE, OpKind.ILOAD, OpKind.ISTORE}
)
