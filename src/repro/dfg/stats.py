"""Structural statistics over dataflow graphs — the quantities the paper's
figures and size claims are stated in (operator counts, switch/merge counts,
access-arc counts, graph size O(E·V))."""

from __future__ import annotations

from dataclasses import dataclass

from .graph import DFGraph
from .nodes import MEMORY_KINDS


@dataclass(frozen=True)
class GraphStats:
    nodes: int
    arcs: int
    access_arcs: int
    value_arcs: int
    by_kind: dict
    switches: int
    merges: int
    synchs: int
    loads: int
    stores: int
    memory_ops: int
    loop_controls: int

    def summary(self) -> str:
        return (
            f"{self.nodes} nodes, {self.arcs} arcs "
            f"({self.access_arcs} access / {self.value_arcs} value); "
            f"{self.switches} switches, {self.merges} merges, "
            f"{self.synchs} synchs, {self.memory_ops} memory ops, "
            f"{self.loop_controls} loop controls"
        )


def graph_stats(g: DFGraph) -> GraphStats:
    by_kind: dict[str, int] = {}
    for n in g.nodes.values():
        by_kind[n.kind.value] = by_kind.get(n.kind.value, 0) + 1
    access = sum(1 for a in g.arcs() if a.is_access)
    total = g.num_arcs()
    return GraphStats(
        nodes=len(g.nodes),
        arcs=total,
        access_arcs=access,
        value_arcs=total - access,
        by_kind=by_kind,
        switches=by_kind.get("switch", 0),
        merges=by_kind.get("merge", 0),
        synchs=by_kind.get("synch", 0),
        loads=by_kind.get("load", 0) + by_kind.get("aload", 0),
        stores=by_kind.get("store", 0) + by_kind.get("astore", 0),
        memory_ops=sum(
            1 for n in g.nodes.values() if n.kind in MEMORY_KINDS
        ),
        loop_controls=by_kind.get("loop_entry", 0) + by_kind.get("loop_exit", 0),
    )
