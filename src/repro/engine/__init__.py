"""The batch compile/simulate engine layer.

Production-shaped plumbing around the paper's pipeline: a
content-addressed compiled-graph cache (:mod:`~repro.engine.cache`), a
process-pool batch runner with deterministic ordering
(:mod:`~repro.engine.batch`), and a process-wide default cache that the
bench harness and sweeps share.

See DESIGN.md §6 for cache keying rules and when the simulator's
event-driven fast path is bypassed.
"""

from __future__ import annotations

from ..translate.pipeline import CompiledProgram, CompileOptions
from .batch import BatchJob, BatchResult, make_pool, run_batch, shared_cache
from .cache import CacheStats, GraphCache, graph_key
from .latency import LatencySummary, percentile
from .tiering import TIERS, TierController, TieringConfig

#: process-wide cache used by default for serial engine compiles
default_cache = GraphCache()


def compile_cached(
    source: str, options: CompileOptions | None = None, **kwargs
) -> CompiledProgram:
    """Compile through the process-wide :data:`default_cache`."""
    return default_cache.get_or_compile(source, options, **kwargs)


__all__ = [
    "BatchJob",
    "BatchResult",
    "CacheStats",
    "GraphCache",
    "LatencySummary",
    "TIERS",
    "TierController",
    "TieringConfig",
    "compile_cached",
    "default_cache",
    "graph_key",
    "make_pool",
    "percentile",
    "run_batch",
    "shared_cache",
]
