"""Batch compile/simulate: fan (program, schema, config) jobs across a
process pool with deterministic result ordering.

Each job is compiled through a :class:`~repro.engine.cache.GraphCache`
(workers keep a per-process in-memory tier; pass ``cache_dir`` to share a
disk tier between workers and across runs) and simulated on the ETS
machine.  Results come back in job order regardless of worker scheduling,
so a batch sweep is a drop-in replacement for a serial loop.

``pool_size=None``/``0``/``1`` runs serially in-process — same code path,
no pool — which is what tests use when they only want the caching.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field

from ..dfg.stats import GraphStats, graph_stats
from ..machine.config import MachineConfig
from ..machine.simulator import SimResult
from ..translate.pipeline import CompileOptions, simulate
from .cache import GraphCache


@dataclass(frozen=True)
class BatchJob:
    """One (program, options, inputs, machine config) work item."""

    source: str
    options: CompileOptions = field(default_factory=CompileOptions)
    inputs: dict | None = None
    config: MachineConfig | None = None
    name: str = ""


@dataclass
class BatchResult:
    """Outcome of one job: the simulation result plus engine accounting."""

    name: str
    index: int
    result: SimResult
    stats: GraphStats
    compile_time: float  # seconds in lookup-or-compile
    sim_time: float  # seconds in Simulator.run
    cache_hit: bool


# -- worker state -----------------------------------------------------------

_WORKER_CACHE: GraphCache | None = None


def _worker_init(cache_dir, capacity: int) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = GraphCache(capacity=capacity, cache_dir=cache_dir)


def _run_one(cache: GraphCache, index: int, job: BatchJob) -> BatchResult:
    t0 = time.perf_counter()
    cp, hit = cache.lookup(job.source, job.options)
    t1 = time.perf_counter()
    res = simulate(cp, job.inputs, job.config)
    t2 = time.perf_counter()
    res.cache_hit = hit
    return BatchResult(
        name=job.name or f"job{index}",
        index=index,
        result=res,
        stats=graph_stats(cp.graph),
        compile_time=t1 - t0,
        sim_time=t2 - t1,
        cache_hit=hit,
    )


def _worker_run(item: tuple[int, BatchJob]) -> BatchResult:
    assert _WORKER_CACHE is not None, "pool worker not initialized"
    index, job = item
    return _run_one(_WORKER_CACHE, index, job)


# -- driver -----------------------------------------------------------------


def run_batch(
    jobs: list[BatchJob],
    pool_size: int | None = None,
    cache: GraphCache | None = None,
    cache_dir=None,
    capacity: int = 256,
) -> list[BatchResult]:
    """Run every job; results are returned in job order.

    * ``pool_size`` — worker processes; ``None``/``0``/``1`` = serial.
    * ``cache`` — the serial path's graph cache (defaults to the engine's
      process-wide :data:`~repro.engine.default_cache`, or a fresh cache
      bound to ``cache_dir`` when one is given).
    * ``cache_dir`` — disk tier shared by all workers (and future runs).
    """
    jobs = list(jobs)
    if not jobs:
        return []
    if pool_size is None or pool_size <= 1:
        if cache is None:
            if cache_dir is not None:
                cache = GraphCache(capacity=capacity, cache_dir=cache_dir)
            else:
                from . import default_cache

                cache = default_cache
        return [_run_one(cache, i, job) for i, job in enumerate(jobs)]

    with multiprocessing.Pool(
        processes=pool_size,
        initializer=_worker_init,
        initargs=(cache_dir, capacity),
    ) as pool:
        results = pool.map(_worker_run, list(enumerate(jobs)), chunksize=1)
    # Pool.map preserves submission order; assert rather than trust.
    for i, r in enumerate(results):
        assert r.index == i, "batch results arrived out of order"
    return results
