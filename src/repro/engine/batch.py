"""Batch compile/simulate: fan (program, schema, config) jobs across a
process pool with deterministic result ordering.

Each job is compiled through a :class:`~repro.engine.cache.GraphCache`
(workers keep a per-process in-memory tier; pass ``cache_dir`` to share a
disk tier between workers and across runs) and simulated on the ETS
machine.  Results come back in job order regardless of worker scheduling,
so a batch sweep is a drop-in replacement for a serial loop.

``pool_size=None``/``0``/``1`` runs serially in-process — same code path,
no pool — which is what tests use when they only want the caching.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback as _traceback
from dataclasses import dataclass, field

from ..dfg.stats import GraphStats, graph_stats
from ..machine.config import MachineConfig
from ..machine.simulator import SimResult
from ..translate.pipeline import CompileOptions, simulate
from .cache import GraphCache


@dataclass(frozen=True)
class BatchJob:
    """One (program, options, inputs, machine config) work item."""

    source: str
    options: CompileOptions = field(default_factory=CompileOptions)
    inputs: dict | None = None
    config: MachineConfig | None = None
    name: str = ""


@dataclass
class BatchResult:
    """Outcome of one job: the simulation result plus engine accounting.

    A job that raises during compile or simulate does **not** poison its
    batch: the exception is captured here (``error`` holds the one-line
    ``Type: message`` form, ``traceback`` the full text) and ``result`` /
    ``stats`` are ``None``.  Only :class:`Exception` subclasses are
    captured — ``KeyboardInterrupt`` and friends still abort the batch.
    """

    name: str
    index: int
    result: SimResult | None
    stats: GraphStats | None
    compile_time: float  # seconds in lookup-or-compile
    sim_time: float  # seconds in Simulator.run
    cache_hit: bool
    error: str | None = None
    traceback: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


# -- worker state -----------------------------------------------------------

_WORKER_CACHE: GraphCache | None = None


def _worker_init(cache_dir, capacity: int) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = GraphCache(capacity=capacity, cache_dir=cache_dir)


def _run_one(cache: GraphCache, index: int, job: BatchJob) -> BatchResult:
    name = job.name or f"job{index}"
    t0 = time.perf_counter()
    hit = False
    try:
        cp, hit = cache.lookup(job.source, job.options)
        t1 = time.perf_counter()
        res = simulate(cp, job.inputs, job.config)
        t2 = time.perf_counter()
    except Exception as exc:
        t_fail = time.perf_counter()
        return BatchResult(
            name=name,
            index=index,
            result=None,
            stats=None,
            compile_time=t_fail - t0,
            sim_time=0.0,
            cache_hit=hit,
            error=f"{type(exc).__name__}: {exc}",
            traceback=_traceback.format_exc(),
        )
    res.cache_hit = hit
    return BatchResult(
        name=name,
        index=index,
        result=res,
        stats=graph_stats(cp.graph),
        compile_time=t1 - t0,
        sim_time=t2 - t1,
        cache_hit=hit,
    )


def _worker_run(item: tuple[int, BatchJob]) -> BatchResult:
    assert _WORKER_CACHE is not None, "pool worker not initialized"
    index, job = item
    return _run_one(_WORKER_CACHE, index, job)


# -- driver -----------------------------------------------------------------


def make_pool(
    pool_size: int, cache_dir=None, capacity: int = 256
) -> multiprocessing.pool.Pool:
    """A persistent worker pool for repeated :func:`run_batch` calls.

    ``run_batch(jobs, pool=p)`` re-enters this pool without paying the
    per-call spawn cost — the shape a long-running server wants.  Workers
    keep their in-memory cache tier between batches (and share the disk
    tier when ``cache_dir`` is given).  Close with ``p.terminate()`` /
    ``p.close(); p.join()`` when done.
    """
    if pool_size < 1:
        raise ValueError("pool_size must be >= 1")
    return multiprocessing.Pool(
        processes=pool_size,
        initializer=_worker_init,
        initargs=(cache_dir, capacity),
    )


def run_batch(
    jobs: list[BatchJob],
    pool_size: int | None = None,
    cache: GraphCache | None = None,
    cache_dir=None,
    capacity: int = 256,
    pool: multiprocessing.pool.Pool | None = None,
) -> list[BatchResult]:
    """Run every job; results are returned in job order.

    * ``pool_size`` — worker processes; ``None``/``0``/``1`` = serial.
    * ``cache`` — the serial path's graph cache (defaults to the engine's
      process-wide :data:`~repro.engine.default_cache`, or a fresh cache
      bound to ``cache_dir`` when one is given).
    * ``cache_dir`` — disk tier shared by all workers (and future runs).
    * ``pool`` — a persistent pool from :func:`make_pool`; overrides
      ``pool_size`` and is left open for the caller to reuse.

    Per-job exceptions are captured on :class:`BatchResult` (``error`` /
    ``traceback``), so one bad program never kills its batch siblings.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    if pool is None and (pool_size is None or pool_size <= 1):
        if cache is None:
            if cache_dir is not None:
                cache = GraphCache(capacity=capacity, cache_dir=cache_dir)
            else:
                from . import default_cache

                cache = default_cache
        return [_run_one(cache, i, job) for i, job in enumerate(jobs)]

    if pool is not None:
        results = pool.map(_worker_run, list(enumerate(jobs)), chunksize=1)
    else:
        with multiprocessing.Pool(
            processes=pool_size,
            initializer=_worker_init,
            initargs=(cache_dir, capacity),
        ) as owned:
            results = owned.map(_worker_run, list(enumerate(jobs)), chunksize=1)
    # Pool.map preserves submission order; assert rather than trust.
    for i, r in enumerate(results):
        assert r.index == i, "batch results arrived out of order"
    return results
