"""Batch compile/simulate: fan (program, schema, config) jobs across a
process pool with deterministic result ordering.

Each job is compiled through a :class:`~repro.engine.cache.GraphCache`
and simulated on the ETS machine.  Results come back in job order
regardless of worker scheduling, so a batch sweep is a drop-in
replacement for a serial loop.

Pooled runs split the work at the compile/simulate boundary: the
*parent* compiles (or fetches) every packed-backend job through its own
cache — so one warm cache serves the whole batch — and ships workers
only the compact :class:`~repro.machine.packed.PackedProgram` payload
(flat tuples; no AST, CFG, or node objects).  That payload is a fraction
of the full :class:`CompiledProgram` pickle, which is what previously
made ``--jobs 4`` slower than serial.  Jobs whose config needs the
per-cycle stepper (finite PEs, k-bounded loops) still ship whole and
compile worker-side against the per-process worker cache.

``pool_size=None``/``0``/``1`` runs serially in-process — same code path,
no pool — which is what tests use when they only want the caching.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
import traceback as _traceback
from dataclasses import dataclass, field, replace

from ..dfg.stats import GraphStats, graph_stats
from ..machine.config import MachineConfig
from ..machine.simulator import SimResult
from ..obs.trace import activate, deactivate, new_trace_id, tracer
from ..translate.pipeline import CompileOptions, simulate
from .cache import GraphCache

_DEFAULT_CONFIG = MachineConfig()


@dataclass(frozen=True)
class BatchJob:
    """One (program, options, inputs, machine config) work item.

    ``trace_id`` makes the job followable end to end: the worker that
    runs it activates the id, records compile/cache/simulate spans, and
    ships them back on the :class:`BatchResult` (the service propagates
    the same id from client frame → queue → batch → reply).  Empty means
    untraced — the zero-overhead default.
    """

    source: str
    options: CompileOptions = field(default_factory=CompileOptions)
    inputs: dict | None = None
    config: MachineConfig | None = None
    name: str = ""
    trace_id: str = ""


@dataclass
class BatchResult:
    """Outcome of one job: the simulation result plus engine accounting.

    A job that raises during compile or simulate does **not** poison its
    batch: the exception is captured here (``error`` holds the one-line
    ``Type: message`` form, ``traceback`` the full text) and ``result`` /
    ``stats`` are ``None``.  Only :class:`Exception` subclasses are
    captured — ``KeyboardInterrupt`` and friends still abort the batch.
    """

    name: str
    index: int
    result: SimResult | None
    stats: GraphStats | None
    compile_time: float  # seconds in lookup-or-compile
    sim_time: float  # seconds in Simulator.run
    cache_hit: bool
    error: str | None = None
    traceback: str | None = None
    #: the job's trace id ("" when untraced) and its recorded spans in
    #: wire form — spans survive the pickle back from pool workers
    trace_id: str = ""
    spans: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None


# -- worker state -----------------------------------------------------------

_WORKER_CACHE: GraphCache | None = None


def _worker_init(cache_dir, capacity: int) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = GraphCache(capacity=capacity, cache_dir=cache_dir)


def _worker_compile(item: tuple):
    """Pool entry point for the region compiler's cold-region fan-out:
    ``(source, options)`` or ``(source, options, program_ast)`` in, a
    packed :class:`CompiledProgram` out.  When the planner ships the
    already-parsed sub-program AST the worker compiles straight from it
    (no re-parse), checking/filling the worker cache under the source
    key.  Compiles through the worker's cache when the pool was built by
    :func:`make_pool` (sharing the disk tier), bare otherwise."""
    from ..translate.pipeline import compile_program
    from ..translate.regions import slim_region_cp

    source, options = item[0], item[1]
    prog = item[2] if len(item) > 2 else None
    if _WORKER_CACHE is not None:
        if prog is None:
            cp, _ = _WORKER_CACHE.lookup(source, options)
            return cp
        cp = _WORKER_CACHE.peek(source, options)
        if cp is None:
            # slim before caching/shipping: the parent only stitches the
            # subgraph, and the full compile context would dominate the
            # return pickle
            cp = slim_region_cp(compile_program(prog, options=options))
            _WORKER_CACHE.insert(source, options, cp)
        return cp
    if prog is not None:
        return slim_region_cp(compile_program(prog, options=options))
    cp = compile_program(source, options=options)
    cp.ensure_packed()
    return cp


def compile_sources_pooled(
    pool: multiprocessing.pool.Pool, items: list[tuple]
) -> list:
    """Map ``(source, options[, program_ast])`` tuples over ``pool``,
    preserving order.  Used by :mod:`repro.translate.regions` to compile
    cold regions in parallel; compile errors (including
    ``CertificateError``) propagate to the caller."""
    workers = getattr(pool, "_processes", None) or 1
    return pool.map(
        _worker_compile, items, chunksize=max(1, len(items) // (workers * 2))
    )


def _run_one(cache: GraphCache, index: int, job: BatchJob) -> BatchResult:
    # a traced job activates its id so every span below lands in its
    # trace, even with the global tracer switch off
    token = activate(job.trace_id) if job.trace_id else None
    try:
        return _run_one_inner(cache, index, job)
    finally:
        if token is not None:
            deactivate(token)


def _take_spans(job: BatchJob) -> list:
    """Pop the job's recorded spans as wire dicts (picklable, and the
    worker-side buffer never accumulates)."""
    if not job.trace_id:
        return []
    return [s.to_wire() for s in tracer.take(job.trace_id)]


def _run_one_inner(cache: GraphCache, index: int, job: BatchJob) -> BatchResult:
    name = job.name or f"job{index}"
    t0 = time.perf_counter()
    hit = False
    err = tb = None
    with tracer.span("engine.job", job=name):
        try:
            with tracer.span("engine.compile") as sp:
                cp, hit = cache.lookup(job.source, job.options)
                if sp is not None:
                    sp.attrs["cache_hit"] = hit
            t1 = time.perf_counter()
            with tracer.span("engine.simulate"):
                res = simulate(cp, job.inputs, job.config)
            t2 = time.perf_counter()
        except Exception as exc:
            t1 = time.perf_counter()
            err = f"{type(exc).__name__}: {exc}"
            tb = _traceback.format_exc()
    if err is not None:
        return BatchResult(
            name=name,
            index=index,
            result=None,
            stats=None,
            compile_time=t1 - t0,
            sim_time=0.0,
            cache_hit=hit,
            error=err,
            traceback=tb,
            trace_id=job.trace_id,
            spans=_take_spans(job),
        )
    res.cache_hit = hit
    return BatchResult(
        name=name,
        index=index,
        result=res,
        stats=graph_stats(cp.graph),
        compile_time=t1 - t0,
        sim_time=t2 - t1,
        cache_hit=hit,
        trace_id=job.trace_id,
        spans=_take_spans(job),
    )


# payloads arrive as pickled bytes keyed by content: the same graph blob
# decodes once per worker and then serves every later job — and, with a
# persistent pool, every later sweep — for free
_PAYLOAD_CACHE: dict[bytes, object] = {}


def _decode_payload(blob: bytes):
    payload = _PAYLOAD_CACHE.get(blob)
    if payload is None:
        if len(_PAYLOAD_CACHE) >= 512:
            _PAYLOAD_CACHE.clear()
        payload = _PAYLOAD_CACHE[blob] = pickle.loads(blob)
    return payload


def _worker_run(item: tuple):
    """Pool entry point.  Two item shapes:

    * ``("job", index, BatchJob)`` — compile + simulate worker-side (the
      stepper path; needs the full job and the worker cache);
    * ``("packed", index, blob, inputs, config, trace_id)`` — the parent
      already compiled; decode the shipped PackedProgram pickle, run it,
      and return the raw pieces for the parent to merge into a
      BatchResult.
    """
    if item[0] == "job":
        assert _WORKER_CACHE is not None, "pool worker not initialized"
        _, index, job = item
        return _run_one(_WORKER_CACHE, index, job)
    _, index, blob, inputs, config, trace_id = item
    payload = _decode_payload(blob)
    token = activate(trace_id) if trace_id else None
    try:
        err = tb = None
        res = None
        t1 = time.perf_counter()
        try:
            backend = (config or _DEFAULT_CONFIG).backend()
            with tracer.span("engine.simulate", backend=backend):
                res = payload.run(inputs, config)
        except Exception as exc:
            err = f"{type(exc).__name__}: {exc}"
            tb = _traceback.format_exc()
        sim_time = time.perf_counter() - t1
        spans = (
            [s.to_wire() for s in tracer.take(trace_id)] if trace_id else []
        )
        return ("packed", index, res, sim_time, err, tb, spans)
    finally:
        if token is not None:
            deactivate(token)


# -- driver -----------------------------------------------------------------

# serial runs that name a cache_dir share one cache per (dir, capacity):
# building a fresh GraphCache per run_batch call would discard the memory
# LRU and hit/miss stats between back-to-back batches
_SHARED_CACHES: dict[tuple[str, int], GraphCache] = {}
_SHARED_LOCK = threading.Lock()


def shared_cache(cache_dir, capacity: int = 256) -> GraphCache:
    """The process-wide :class:`GraphCache` for ``(cache_dir, capacity)``
    — repeated serial ``run_batch(..., cache_dir=...)`` calls reuse its
    memory tier and keep one coherent set of stats."""
    key = (os.fspath(cache_dir), capacity)
    with _SHARED_LOCK:
        cache = _SHARED_CACHES.get(key)
        if cache is None:
            cache = _SHARED_CACHES[key] = GraphCache(
                capacity=capacity, cache_dir=cache_dir
            )
        return cache


def make_pool(
    pool_size: int, cache_dir=None, capacity: int = 256
) -> multiprocessing.pool.Pool:
    """A persistent worker pool for repeated :func:`run_batch` calls.

    ``run_batch(jobs, pool=p)`` re-enters this pool without paying the
    per-call spawn cost — the shape a long-running server wants.  Workers
    keep their in-memory cache tier between batches (and share the disk
    tier when ``cache_dir`` is given).  Close with ``p.terminate()`` /
    ``p.close(); p.join()`` when done.
    """
    if pool_size < 1:
        raise ValueError("pool_size must be >= 1")
    return multiprocessing.Pool(
        processes=pool_size,
        initializer=_worker_init,
        initargs=(cache_dir, capacity),
    )


def _chunksize(n_items: int, workers: int) -> int:
    """Tasks per pool dispatch.  Packed payloads simulate in well under a
    millisecond each, so one-item chunks drown in queue round-trips; four
    chunks per worker keeps dispatch overhead amortized while leaving
    enough slack for load balancing across uneven job costs.  When the
    pool is oversubscribed (more workers than cores) the OS time-slices
    anyway, so balance is free and fewer, larger dispatches win."""
    workers = max(1, workers)
    cores = os.cpu_count() or workers
    if cores < workers:
        return max(1, -(-n_items // (2 * max(1, cores))))
    return max(1, n_items // (workers * 4))


def run_batch(
    jobs: list[BatchJob],
    pool_size: int | None = None,
    cache: GraphCache | None = None,
    cache_dir=None,
    capacity: int = 256,
    pool: multiprocessing.pool.Pool | None = None,
) -> list[BatchResult]:
    """Run every job; results are returned in job order.

    * ``pool_size`` — worker processes; ``None``/``0``/``1`` = serial.
    * ``cache`` — the graph cache compiles go through: the serial loop's,
      and in pooled runs the *parent's*, which compiles every
      packed-backend job once and ships workers the flat payload.
      Defaults to the engine's process-wide
      :data:`~repro.engine.default_cache`, or the shared
      per-``(cache_dir, capacity)`` cache from :func:`shared_cache` when a
      ``cache_dir`` is given, so back-to-back batches keep their memory
      tier and stats.
    * ``cache_dir`` — disk tier shared with workers (and future runs).
    * ``pool`` — a persistent pool from :func:`make_pool`; overrides
      ``pool_size`` and is left open for the caller to reuse.

    Per-job exceptions are captured on :class:`BatchResult` (``error`` /
    ``traceback``), so one bad program never kills its batch siblings.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    if tracer.enabled:
        # stamp untraced jobs so every result carries a followable trace
        jobs = [
            job if job.trace_id else replace(job, trace_id=new_trace_id())
            for job in jobs
        ]
    if cache is None:
        if cache_dir is not None:
            cache = shared_cache(cache_dir, capacity)
        else:
            from . import default_cache

            cache = default_cache
    if pool is None and (pool_size is None or pool_size <= 1):
        return [_run_one(cache, i, job) for i, job in enumerate(jobs)]

    # pooled: the pool is created (or borrowed) up front so parent-side
    # compiles can fan region subcompiles out on it, then compile
    # flat-backend (packed/vectorized) jobs in the parent (one warm
    # cache serves the whole batch) and ship only the flat payload;
    # stepper jobs go whole, compiling against the worker's own cache
    owned: multiprocessing.pool.Pool | None = None
    if pool is None:
        owned = multiprocessing.Pool(
            processes=pool_size,
            initializer=_worker_init,
            initargs=(cache_dir, capacity),
        )
    pool_obj = pool if pool is not None else owned
    workers = (
        pool_size
        if owned is not None
        else (getattr(pool, "_processes", None) or 1)
    )
    prev_region_pool = getattr(cache, "region_pool", None)
    cache.region_pool = pool_obj
    try:
        return _run_pooled(jobs, cache, pool_obj, workers)
    finally:
        cache.region_pool = prev_region_pool
        if owned is not None:
            owned.terminate()
            owned.join()


def _run_pooled(
    jobs: list[BatchJob],
    cache: GraphCache,
    pool: multiprocessing.pool.Pool,
    workers: int,
) -> list[BatchResult]:
    items: list[tuple] = []
    premade: dict[int, BatchResult] = {}
    meta: dict[int, tuple] = {}
    for i, job in enumerate(jobs):
        if (job.config or _DEFAULT_CONFIG).backend() not in (
            "packed", "vectorized"
        ):
            items.append(("job", i, job))
            continue
        name = job.name or f"job{i}"
        token = activate(job.trace_id) if job.trace_id else None
        try:
            t0 = time.perf_counter()
            hit = False
            try:
                with tracer.span("engine.job", job=name):
                    with tracer.span("engine.compile") as sp:
                        cp, hit = cache.lookup(job.source, job.options)
                        if sp is not None:
                            sp.attrs["cache_hit"] = hit
                    payload = cp.packed_blob()
            except Exception as exc:
                premade[i] = BatchResult(
                    name=name,
                    index=i,
                    result=None,
                    stats=None,
                    compile_time=time.perf_counter() - t0,
                    sim_time=0.0,
                    cache_hit=hit,
                    error=f"{type(exc).__name__}: {exc}",
                    traceback=_traceback.format_exc(),
                    trace_id=job.trace_id,
                    spans=_take_spans(job),
                )
                continue
            meta[i] = (
                name,
                graph_stats(cp.graph),
                time.perf_counter() - t0,
                hit,
                job.trace_id,
                _take_spans(job),
            )
            items.append(
                ("packed", i, payload, job.inputs, job.config, job.trace_id)
            )
        finally:
            if token is not None:
                deactivate(token)

    raw: list = []
    if items:
        raw = pool.map(
            _worker_run, items, chunksize=_chunksize(len(items), workers)
        )

    results: list[BatchResult | None] = [None] * len(jobs)
    for i, br in premade.items():
        results[i] = br
    for out in raw:
        if isinstance(out, BatchResult):
            results[out.index] = out
            continue
        _, i, res, sim_time, err, tb, wspans = out
        name, stats, compile_time, hit, trace_id, pspans = meta[i]
        if err is not None:
            results[i] = BatchResult(
                name=name,
                index=i,
                result=None,
                stats=None,
                compile_time=compile_time,
                sim_time=0.0,
                cache_hit=hit,
                error=err,
                traceback=tb,
                trace_id=trace_id,
                spans=pspans + wspans,
            )
            continue
        res.cache_hit = hit
        results[i] = BatchResult(
            name=name,
            index=i,
            result=res,
            stats=stats,
            compile_time=compile_time,
            sim_time=sim_time,
            cache_hit=hit,
            trace_id=trace_id,
            spans=pspans + wspans,
        )
    # every slot filled, in job order; assert rather than trust
    for i, r in enumerate(results):
        assert r is not None and r.index == i, (
            "batch results arrived out of order"
        )
    return results  # type: ignore[return-value]
