"""Content-addressed compiled-graph cache.

Corpus sweeps (benches, differential suites, the CLI) compile the same
(program, schema) pairs over and over; compilation — lexing, CFG
construction, interval/loop decomposition, translation — is pure, so its
results are cacheable by content.

Keying rule: ``sha256(format-version \\0 source-text \\0 options
fingerprint)``.  The fingerprint (:meth:`CompileOptions.fingerprint`)
renders every option field, so any knob that can change the produced graph
changes the key; the format version is bumped whenever the pickled
:class:`CompiledProgram` layout changes, invalidating stale disk entries
wholesale.  Only plain source *text* is cacheable — pre-parsed ``Program``
objects bypass the cache (their identity is not content-addressed).

Two tiers:

* an in-memory LRU (per process, default 256 entries) serving repeated
  compiles in one sweep;
* an optional on-disk pickle store (``cache_dir``) shared across processes
  and sessions — written atomically (temp file + rename) so concurrent
  :func:`~repro.engine.batch.run_batch` workers can share one directory.

Corrupt or unreadable disk entries are treated as misses and overwritten;
a cache can therefore always be deleted safely.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from ..obs.trace import tracer
from ..translate.pipeline import CompiledProgram, CompileOptions, compile_program

#: bump when CompiledProgram's pickled layout changes incompatibly
#: (v2: CompiledProgram carries the lowered PackedGraph alongside the
#: source graph, so cached entries are run-ready without re-lowering;
#: v3: region-compiled entries — cfg=None, pass_log led by the
#: region_stitch certificate — share the store with monolithic ones)
CACHE_FORMAT = "repro-graph-cache-v3"

#: commit-point file of a cache snapshot directory (written atomically
#: *after* every entry, so a snapshot is either complete or invisible)
SNAPSHOT_MANIFEST = "manifest.json"


def graph_key(source: str, options: CompileOptions) -> str:
    """The content address of one (source text, compile options) pair."""
    h = hashlib.sha256()
    h.update(CACHE_FORMAT.encode())
    h.update(b"\0")
    h.update(source.encode())
    h.update(b"\0")
    h.update(options.fingerprint().encode())
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters for one :class:`GraphCache`."""

    hits: int = 0  # in-memory LRU hits
    disk_hits: int = 0  # missed memory, loaded from the disk store
    misses: int = 0  # compiled from source
    evictions: int = 0
    disk_writes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.disk_hits + self.misses

    def summary(self) -> str:
        return (
            f"{self.lookups} lookups: {self.hits} memory hits, "
            f"{self.disk_hits} disk hits, {self.misses} compiles"
        )


class GraphCache:
    """In-memory LRU + optional disk store of compiled programs.

    Thread-safe for lookups/inserts; safe to share a ``cache_dir``
    between processes (entries are written atomically and re-read
    entries are self-contained pickles).

    Lookups are *single-flight* per key: when several threads miss on
    the same key concurrently, one compiles and the rest wait for its
    result, so contention never multiplies compile work or disk writes.
    """

    def __init__(
        self,
        capacity: int = 256,
        cache_dir: str | os.PathLike | None = None,
        capacity_bytes: int | None = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if capacity_bytes is not None and capacity_bytes < 1:
            raise ValueError("capacity_bytes must be >= 1")
        self.capacity = capacity
        #: approximate in-memory budget (sum of entry blob sizes); the
        #: count capacity still applies on top.  Sizing by bytes keeps
        #: thousands of small region subgraphs from evicting a few giant
        #: whole-program entries (and vice versa).
        self.capacity_bytes = capacity_bytes
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.stats = CacheStats()
        #: worker pool the region compiler fans cold region compiles out
        #: on; set by whoever owns a pool (run_batch, benches, the CLI)
        self.region_pool = None
        self._mem: OrderedDict[str, CompiledProgram] = OrderedDict()
        self._sizes: dict[str, int] = {}
        self._total_bytes = 0
        self._lock = threading.Lock()
        # single-flight: key -> event set when the leading lookup settles
        self._inflight: dict[str, threading.Event] = {}

    # -- lookup ----------------------------------------------------------

    def lookup(
        self, source: str, options: CompileOptions | None = None, **kwargs
    ) -> tuple[CompiledProgram, bool]:
        """Fetch-or-compile.  Returns ``(compiled, was_cached)`` where
        ``was_cached`` covers both the memory and disk tiers."""
        if options is None:
            options = CompileOptions(**kwargs)
        elif kwargs:
            raise TypeError("pass either options= or keyword fields, not both")
        key = graph_key(source, options)
        while True:
            with self._lock:
                cp = self._mem.get(key)
                if cp is not None:
                    self._mem.move_to_end(key)
                    self.stats.hits += 1
                    return cp, True
                waiter = self._inflight.get(key)
                if waiter is None:
                    waiter = self._inflight[key] = threading.Event()
                    break
            # another thread is resolving this key: wait for it, then
            # re-check the memory tier (single-flight coalescing); if the
            # leader failed, the re-check misses and we become the leader
            with tracer.span("cache.coalesced_wait"):
                waiter.wait()
        try:
            cp = self._disk_read(key)
            if cp is not None:
                with self._lock:
                    self.stats.disk_hits += 1
                    self._remember(key, cp)
                return cp, True
            with tracer.span("cache.compile", schema=options.schema):
                cp = self._compile(source, options)
            # lower to the packed form before the entry is shared when a
            # tier needs the blob (disk pickles it, byte-LRU sizes by it);
            # a count-only memory cache defers lowering to first use —
            # packing a giant stitched graph costs seconds the warm
            # incremental path shouldn't pay
            if self._needs_packed():
                with tracer.span("cache.pack"):
                    cp.ensure_packed()
            with self._lock:
                self.stats.misses += 1
                self._remember(key, cp)
            self._disk_write(key, cp)
            return cp, False
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            waiter.set()

    def get_or_compile(
        self, source: str, options: CompileOptions | None = None, **kwargs
    ) -> CompiledProgram:
        """:meth:`lookup` without the hit flag."""
        return self.lookup(source, options, **kwargs)[0]

    def peek(
        self, source: str, options: CompileOptions
    ) -> CompiledProgram | None:
        """Cache-only probe: memory tier, then disk — never compiles.
        Hits count in :attr:`stats`; a miss counts nothing (the caller
        decides how to resolve it)."""
        key = graph_key(source, options)
        with self._lock:
            cp = self._mem.get(key)
            if cp is not None:
                self._mem.move_to_end(key)
                self.stats.hits += 1
                return cp
        cp = self._disk_read(key)
        if cp is not None:
            with self._lock:
                self.stats.disk_hits += 1
                self._remember(key, cp)
        return cp

    def insert(
        self, source: str, options: CompileOptions, cp: CompiledProgram
    ) -> None:
        """Store an externally compiled program under its content
        address (both tiers).  Used by the region compiler to bank
        subgraphs that worker processes compiled."""
        if self._needs_packed():
            cp.ensure_packed()
        key = graph_key(source, options)
        with self._lock:
            self._remember(key, cp)
        self._disk_write(key, cp)

    def _compile(self, source: str, options: CompileOptions):
        """Miss-path compile: region-partitioned (memoizing regions back
        into this cache, fanning out on :attr:`region_pool`) when the
        options ask for it, monolithic otherwise."""
        if options.region_compile != "off":
            from ..translate.regions import compile_with_regions

            return compile_with_regions(
                source, options, cache=self, pool=self.region_pool
            )
        return compile_program(source, options=options)

    # -- bookkeeping -----------------------------------------------------

    def _needs_packed(self) -> bool:
        """Whether a tier consumes the packed blob at insert time."""
        return self.cache_dir is not None or self.capacity_bytes is not None

    @staticmethod
    def _entry_size(cp: CompiledProgram) -> int:
        """Approximate in-memory weight: the pickled shipping payload
        (packed graph + memory spec), memoized on the entry itself."""
        try:
            return len(cp.packed_blob())
        except Exception:
            try:
                return len(pickle.dumps(cp, protocol=pickle.HIGHEST_PROTOCOL))
            except Exception:
                return 1

    def _remember(self, key: str, cp: CompiledProgram) -> None:
        # caller holds the lock
        if key in self._mem:
            self._total_bytes -= self._sizes.get(key, 0)
        self._mem[key] = cp
        self._mem.move_to_end(key)
        # size entries only under a byte budget: measuring means packing
        # + pickling, which count-only caches shouldn't pay for
        size = (
            self._entry_size(cp) if self.capacity_bytes is not None else 0
        )
        self._sizes[key] = size
        self._total_bytes += size
        while len(self._mem) > 1 and (
            len(self._mem) > self.capacity
            or (
                self.capacity_bytes is not None
                and self._total_bytes > self.capacity_bytes
            )
        ):
            old, _ = self._mem.popitem(last=False)
            self._total_bytes -= self._sizes.pop(old, 0)
            self.stats.evictions += 1

    @property
    def total_bytes(self) -> int:
        """Approximate bytes held by the in-memory tier (tracked only
        when a ``capacity_bytes`` budget is set)."""
        return self._total_bytes

    def _disk_path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / key[:2] / f"{key}.pkl"

    def _disk_read(self, key: str) -> CompiledProgram | None:
        if self.cache_dir is None:
            return None
        return self._read_entry(self._disk_path(key))

    @classmethod
    def _read_entry(cls, path: Path) -> CompiledProgram | None:
        """Load one pickled entry.  Truncated, corrupt, or stale-format
        files are a miss, never an error: unlink them so a fresh write
        replaces them even if that write later fails."""
        try:
            with open(path, "rb") as f:
                cp = pickle.load(f)
        except FileNotFoundError:
            return None
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            cls._discard_corrupt(path)
            return None
        if not isinstance(cp, CompiledProgram):
            cls._discard_corrupt(path)
            return None
        return cp

    @staticmethod
    def _discard_corrupt(path: Path) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    @staticmethod
    def _write_entry(path: Path, cp: CompiledProgram) -> bool:
        """Atomic pickle write (temp file + rename); concurrent readers
        never see a partial file.  ``False`` on OSError — a read-only or
        full directory degrades, never raises."""
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as f:
                    pickle.dump(cp, f, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                finally:
                    raise
        except OSError:
            return False
        return True

    def _disk_write(self, key: str, cp: CompiledProgram) -> None:
        if self.cache_dir is None:
            return
        if not self._write_entry(self._disk_path(key), cp):
            return
        with self._lock:  # all CacheStats mutations are lock-protected
            self.stats.disk_writes += 1

    # -- snapshot / restore ----------------------------------------------

    def snapshot(
        self, snapshot_dir: str | os.PathLike, state: dict | None = None
    ) -> int:
        """Persist the in-memory tier to ``snapshot_dir`` so a restarted
        process can come up warm.

        Entries are written in the v3 on-disk layout
        (``<dir>/<key[:2]>/<key>.pkl``, atomic temp+rename, packed blob
        ensured first so restored entries are run-ready); the manifest
        is written atomically **last** and is the commit point.  Old
        entry files are never deleted, so a crash — even ``kill -9`` —
        mid-snapshot leaves the previous manifest valid and pointing at
        complete files.  ``state`` is an opaque JSON-able dict stored in
        the manifest (the server keeps tier-controller state there).

        Returns the number of entries the committed manifest lists, or
        0 when the manifest could not be written (snapshot unchanged).
        """
        root = Path(snapshot_dir)
        with self._lock:
            entries = list(self._mem.items())
        keys = []
        with tracer.span("cache.snapshot", entries=len(entries)):
            for key, cp in entries:
                try:
                    cp.ensure_packed()
                except Exception:
                    pass  # still restorable; first packed run re-lowers
                path = root / key[:2] / f"{key}.pkl"
                # entries are content-addressed and immutable: an
                # existing file is a complete previous write — skip it
                if path.exists() or self._write_entry(path, cp):
                    keys.append(key)
            manifest = {
                "format": CACHE_FORMAT,
                "keys": keys,
                "state": state or {},
            }
            try:
                root.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(
                    dir=root, prefix=SNAPSHOT_MANIFEST, suffix=".tmp"
                )
                try:
                    with os.fdopen(fd, "w", encoding="utf-8") as f:
                        json.dump(manifest, f)
                    os.replace(tmp, root / SNAPSHOT_MANIFEST)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    finally:
                        raise
            except OSError:
                return 0
        return len(keys)

    def restore(
        self, snapshot_dir: str | os.PathLike
    ) -> tuple[int, dict]:
        """Load a :meth:`snapshot` into the in-memory tier.

        Returns ``(entries_loaded, state)``.  A missing, corrupt, or
        wrong-format manifest — or any unreadable entry — degrades to a
        cold start (``(0, {})`` / skipped entry), never an error.
        """
        root = Path(snapshot_dir)
        try:
            manifest = json.loads(
                (root / SNAPSHOT_MANIFEST).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return 0, {}
        if (
            not isinstance(manifest, dict)
            or manifest.get("format") != CACHE_FORMAT
        ):
            return 0, {}
        keys = manifest.get("keys")
        state = manifest.get("state")
        if not isinstance(keys, list):
            keys = []
        if not isinstance(state, dict):
            state = {}
        loaded = 0
        with tracer.span("cache.restore", keys=len(keys)):
            for key in keys:
                if not isinstance(key, str) or not key:
                    continue
                cp = self._read_entry(root / key[:2] / f"{key}.pkl")
                if cp is None:
                    continue
                with self._lock:
                    self._remember(key, cp)
                loaded += 1
        return loaded, state

    # -- management ------------------------------------------------------

    def clear(self, disk: bool = False) -> None:
        """Drop the in-memory tier (and, with ``disk=True``, disk entries
        plus any ``*.tmp`` orphans an interrupted atomic write left)."""
        with self._lock:
            self._mem.clear()
            self._sizes.clear()
            self._total_bytes = 0
        if disk and self.cache_dir is not None and self.cache_dir.exists():
            for sub in self.cache_dir.iterdir():
                if sub.is_dir() and len(sub.name) == 2:
                    for pattern in ("*.pkl", "*.tmp"):
                        for entry in sub.glob(pattern):
                            try:
                                entry.unlink()
                            except OSError:
                                pass

    def __len__(self) -> int:
        return len(self._mem)
