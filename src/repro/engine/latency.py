"""Shared latency math: percentiles and per-stage summaries.

One implementation used everywhere a latency distribution is reported —
the service's ``stats`` RPC (queue/compile/sim percentiles), the bench
harness's per-sweep lines, and the load-generator report — so every
surface quotes the same p50/p95/p99 for the same samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation between
    closest ranks (the numpy/Excel "inclusive" definition).

    Raises ``ValueError`` on an empty sample list — callers that want a
    zero-filled report for "no data yet" go through
    :meth:`LatencySummary.from_samples`, which handles that case.
    """
    if not samples:
        raise ValueError("percentile() of empty sample list")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    xs = sorted(samples)
    if len(xs) == 1:
        return float(xs[0])
    rank = (len(xs) - 1) * (q / 100.0)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(xs[lo])
    frac = rank - lo
    return float(xs[lo]) + (float(xs[hi]) - float(xs[lo])) * frac


@dataclass(frozen=True)
class LatencySummary:
    """count + mean/p50/p95/p99/max of one latency distribution.

    Values carry whatever unit the samples were in; :meth:`brief` and
    :meth:`to_json` scale nothing.  An empty distribution is a valid
    summary (all zeros, ``count == 0``) so "no traffic yet" needs no
    special-casing downstream.
    """

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def from_samples(cls, samples: list[float]) -> LatencySummary:
        if not samples:
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)
        return cls(
            count=len(samples),
            mean=sum(samples) / len(samples),
            p50=percentile(samples, 50),
            p95=percentile(samples, 95),
            p99=percentile(samples, 99),
            max=float(max(samples)),
        )

    def brief(self, unit: str = "") -> str:
        if not self.count:
            return "n=0"
        return (
            f"n={self.count} p50={self.p50:.3f}{unit} "
            f"p95={self.p95:.3f}{unit} p99={self.p99:.3f}{unit}"
        )

    def to_json(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }
