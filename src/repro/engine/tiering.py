"""Adaptive tiering: per-graph-key promotion between execution tiers.

The service has four bit-identical execution tiers — ``step`` (the
reference per-cycle loop), ``fast`` (event-driven over the object
graph), ``packed`` (flat-array SoA interpreter) and ``vectorized``
(bucket-queue bulk-front) — and the oracle (``repro.validate``) proves
they agree, so swapping a cached graph's tier between submissions is
free to trust.  What was missing is a *policy*: today every job picks
its tier statically, so a service whose traffic is dominated by a few
hot graphs (the Labyrinth workload: long-running dataflow jobs
resubmitted with varying inputs) keeps paying interpreter prices for
graphs it has already seen hundreds of times.

:class:`TierController` is that policy — a tiny JIT tiering state
machine keyed on the content-addressed graph key:

* every hit on a key adds 1 to its *hotness*; when hotness crosses
  ``thresholds[i]`` the key climbs exactly **one** rung of the ladder
  (never skips a tier, no matter how hot it got while waiting);
* :meth:`TierController.decay` (called periodically by the server)
  halves every key's hotness and demotes a key one rung only when its
  hotness has fallen **below** ``thresholds[i-1] * demote_ratio`` —
  the gap between the promote bound and the much lower demote bound is
  the hysteresis band that prevents flapping;
* promotion into a tier that needs the packed blob (``packed`` /
  ``vectorized``) is gated on a **background pre-warm**: when a key is
  trending hot (hotness ≥ ``prewarm_fraction`` of the next threshold) a
  worker thread calls ``ensure_packed()`` on the cached program, and
  only once that completes does the promotion land — so a promotion
  never stalls the request that triggered it.  Pre-warm is idempotent:
  the schedule flag flips once under the controller lock, and
  ``ensure_packed`` itself is memoized on the compiled program.

The controller only ever *rewrites the tier of jobs that left the
choice open*: a job with an explicit ``sim_mode`` or a finite-machine
config (``num_pes`` / ``loop_bound``) is passed through untouched, so
tiering can be enabled fleet-wide without changing the meaning of any
explicitly-pinned submission.
"""

from __future__ import annotations

import dataclasses
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

from ..machine.config import MachineConfig
from ..obs.metrics import MetricsRegistry
from ..obs.trace import tracer
from .batch import BatchJob
from .cache import GraphCache, graph_key

__all__ = [
    "TIERS",
    "TieringConfig",
    "TierController",
]

#: The full promotion ladder, slowest to fastest.  A controller's
#: actual ladder is the contiguous segment ``entry_tier .. max_tier``.
TIERS = ("step", "fast", "packed", "vectorized")

#: Tiers whose simulator needs the lowered PackedGraph blob.
_BLOB_TIERS = frozenset({"packed", "vectorized"})


@dataclass(frozen=True)
class TieringConfig:
    """Knobs for the tier controller state machine.

    ``thresholds[i]`` is the hotness a key must reach to climb from
    rung ``i`` to rung ``i+1`` of the ladder; there must be at least
    one threshold per rung boundary.  Setting ``entry_tier ==
    max_tier`` pins every auto job to that tier (the "tiering off"
    baseline in benchmarks).
    """

    #: tier assigned to a key on first sight
    entry_tier: str = "fast"
    #: highest tier a key may be promoted to
    max_tier: str = "vectorized"
    #: hotness required to leave rung i (strictly increasing)
    thresholds: tuple[int, ...] = (8, 64)
    #: demote from rung i+1 only when hotness < thresholds[i] * ratio
    demote_ratio: float = 0.25
    #: multiplier applied to every key's hotness per decay() tick
    decay_factor: float = 0.5
    #: schedule the background pre-warm when hotness reaches this
    #: fraction of the next promotion threshold
    prewarm_fraction: float = 0.5
    #: disable the background worker (promotion then packs in-request)
    prewarm: bool = True

    def __post_init__(self) -> None:
        if self.entry_tier not in TIERS:
            raise ValueError(f"unknown entry_tier: {self.entry_tier!r}")
        if self.max_tier not in TIERS:
            raise ValueError(f"unknown max_tier: {self.max_tier!r}")
        lo = TIERS.index(self.entry_tier)
        hi = TIERS.index(self.max_tier)
        if lo > hi:
            raise ValueError(
                f"entry_tier {self.entry_tier!r} above max_tier "
                f"{self.max_tier!r}"
            )
        rungs = hi - lo + 1
        if len(self.thresholds) < rungs - 1:
            raise ValueError(
                f"need >= {rungs - 1} thresholds for ladder "
                f"{self.ladder}, got {len(self.thresholds)}"
            )
        prev = 0
        for t in self.thresholds:
            if t <= prev:
                raise ValueError(
                    "thresholds must be positive and strictly "
                    f"increasing, got {self.thresholds}"
                )
            prev = t
        if not 0.0 < self.demote_ratio <= 1.0:
            raise ValueError("demote_ratio must be in (0, 1]")
        if not 0.0 < self.decay_factor < 1.0:
            raise ValueError("decay_factor must be in (0, 1)")
        if not 0.0 < self.prewarm_fraction <= 1.0:
            raise ValueError("prewarm_fraction must be in (0, 1]")

    @property
    def ladder(self) -> tuple[str, ...]:
        """The contiguous tier segment this controller moves within."""
        lo = TIERS.index(self.entry_tier)
        hi = TIERS.index(self.max_tier)
        return TIERS[lo : hi + 1]


class _GraphState:
    """Per-graph-key tiering state (guarded by the controller lock)."""

    __slots__ = (
        "tier_idx",
        "hits",
        "hotness",
        "prewarm_scheduled",
        "prewarm_done",
        "promotions",
        "demotions",
    )

    def __init__(self, tier_idx: int = 0) -> None:
        self.tier_idx = tier_idx
        self.hits = 0
        self.hotness = 0.0
        self.prewarm_scheduled = False
        self.prewarm_done = False
        self.promotions = 0
        self.demotions = 0


class TierController:
    """Thread-safe hotness-driven tier assignment for cached graphs.

    One instance per server process; the batch executor calls
    :meth:`assign` per job, an asyncio housekeeping task calls
    :meth:`decay` periodically, and the ``tiers`` RPC reads
    :meth:`snapshot`.
    """

    def __init__(
        self,
        config: TieringConfig | None = None,
        *,
        registry: MetricsRegistry | None = None,
        cache: GraphCache | None = None,
    ) -> None:
        self.config = config or TieringConfig()
        self.cache = cache
        self._ladder = self.config.ladder
        self._lock = threading.Lock()
        self._states: dict[str, _GraphState] = {}
        self._pool: ThreadPoolExecutor | None = None
        self._prewarms: list[Future] = []
        self._closed = False
        reg = registry or MetricsRegistry()
        self.registry = reg
        self._c_hits = reg.counter("tiering.hits")
        self._c_promotions = reg.counter("tiering.promotions")
        self._c_demotions = reg.counter("tiering.demotions")
        self._c_prewarms = reg.counter("tiering.prewarms")
        self._c_prewarm_errors = reg.counter("tiering.prewarm_errors")
        self._g_graphs = reg.gauge("tiering.graphs")

    # ------------------------------------------------------------------
    # job-facing API

    @staticmethod
    def eligible(config: MachineConfig | None) -> bool:
        """True when the job left the tier choice to the service: no
        explicit sim_mode and an idealized (infinite) machine."""
        if config is None:
            return True
        return (
            config.sim_mode == "auto"
            and config.num_pes is None
            and config.loop_bound is None
        )

    def assign(self, job: BatchJob) -> BatchJob:
        """Record a hit for the job's graph key and, when eligible,
        return a copy of the job pinned to the key's current tier."""
        if not self.eligible(job.config):
            return job
        key = graph_key(job.source, job.options)
        tier = self.record(key, job=job)
        base = job.config or MachineConfig()
        return dataclasses.replace(
            job, config=dataclasses.replace(base, sim_mode=tier)
        )

    def record(self, key: str, *, job: BatchJob | None = None) -> str:
        """One hit on ``key``: bump hotness, promote at most one rung,
        maybe schedule a pre-warm.  Returns the tier to run at."""
        prewarm = False
        with self._lock:
            st = self._states.get(key)
            if st is None:
                st = self._states[key] = _GraphState()
                if self._ladder[0] in _BLOB_TIERS:
                    # the entry tier itself packs on first run; there
                    # is nothing left for the pre-warm gate to protect
                    st.prewarm_done = True
                self._g_graphs.set(len(self._states))
            st.hits += 1
            st.hotness += 1.0
            promoted = False
            if (
                st.tier_idx < len(self._ladder) - 1
                and st.hotness >= self._threshold(st.tier_idx)
            ):
                nxt = self._ladder[st.tier_idx + 1]
                if (
                    nxt in _BLOB_TIERS
                    and self.config.prewarm
                    and self.cache is not None
                    and not st.prewarm_done
                ):
                    # hot enough but the blob is not warm yet: kick
                    # the pre-warm (if not already running) and stay
                    # on this rung so no request pays the packing cost
                    if not st.prewarm_scheduled:
                        st.prewarm_scheduled = True
                        prewarm = True
                else:
                    st.tier_idx += 1
                    st.promotions += 1
                    promoted = True
            if not promoted and not prewarm and self._should_prewarm(st):
                st.prewarm_scheduled = True
                prewarm = True
            tier = self._ladder[st.tier_idx]
        self._c_hits.inc()
        if promoted:
            self._c_promotions.inc()
        if prewarm:
            self._spawn_prewarm(key, job)
        return tier

    def tier_for(self, key: str) -> str:
        """The key's current tier (entry tier for unseen keys)."""
        with self._lock:
            st = self._states.get(key)
            return self._ladder[st.tier_idx if st else 0]

    def decay(self) -> None:
        """Halve every key's hotness; demote keys whose hotness fell
        below the hysteresis band; prune keys back at cold entry."""
        demoted = 0
        with self._lock:
            cfg = self.config
            dead = []
            for key, st in self._states.items():
                st.hotness *= cfg.decay_factor
                if st.tier_idx > 0:
                    bound = (
                        self._threshold(st.tier_idx - 1)
                        * cfg.demote_ratio
                    )
                    if st.hotness < bound:
                        st.tier_idx -= 1
                        st.demotions += 1
                        demoted += 1
                if st.tier_idx == 0 and st.hotness < 0.25:
                    dead.append(key)
            for key in dead:
                del self._states[key]
            self._g_graphs.set(len(self._states))
        if demoted:
            self._c_demotions.inc(demoted)

    # ------------------------------------------------------------------
    # state machine internals (lock held)

    def _threshold(self, rung: int) -> int:
        return self.config.thresholds[rung]

    def _should_prewarm(self, st: _GraphState) -> bool:
        if not self.config.prewarm or self.cache is None:
            return False
        if st.prewarm_scheduled or st.prewarm_done:
            return False
        if st.tier_idx >= len(self._ladder) - 1:
            return False
        if not any(
            t in _BLOB_TIERS
            for t in self._ladder[st.tier_idx + 1 :]
        ):
            return False
        bound = self.config.prewarm_fraction * self._threshold(st.tier_idx)
        return st.hotness >= bound

    # ------------------------------------------------------------------
    # background pre-warm

    def _spawn_prewarm(self, key: str, job: BatchJob | None) -> None:
        if self.cache is None or job is None:
            # no way to locate the program; mark done so promotion is
            # not gated forever (the tier's first run packs instead)
            with self._lock:
                st = self._states.get(key)
                if st is not None:
                    st.prewarm_done = True
            return
        with self._lock:
            if self._closed:
                return
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="repro-prewarm"
                )
            fut = self._pool.submit(
                self._prewarm, key, job.source, job.options
            )
            self._prewarms.append(fut)
            if len(self._prewarms) > 64:
                self._prewarms = [
                    f for f in self._prewarms if not f.done()
                ]

    def _prewarm(self, key: str, source: str, options) -> None:
        try:
            with tracer.span("tiering.prewarm", key=key[:16]):
                cp = None
                if self.cache is not None:
                    cp = self.cache.peek(source, options)
                    if cp is None:
                        cp, _ = self.cache.lookup(source, options)
                cp.ensure_packed()
        except Exception:
            self._c_prewarm_errors.inc()
            with self._lock:
                st = self._states.get(key)
                if st is not None:
                    # let the next hit retry (or pack in-request)
                    st.prewarm_scheduled = False
            return
        self._c_prewarms.inc()
        with self._lock:
            st = self._states.get(key)
            if st is not None:
                st.prewarm_done = True

    def join_prewarms(self, timeout: float | None = None) -> None:
        """Block until every scheduled pre-warm finished (tests)."""
        with self._lock:
            futs = list(self._prewarms)
        for fut in futs:
            fut.result(timeout=timeout)

    def close(self) -> None:
        """Stop the pre-warm worker; further hits still retier but no
        new pre-warms are scheduled."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # introspection / persistence

    def snapshot(self, top: int = 50) -> dict:
        """JSON-ready view for the ``tiers`` RPC / ``repro tiers``."""
        cfg = self.config
        with self._lock:
            states = [
                (key, st.tier_idx, st.hits, st.hotness, st.prewarm_done)
                for key, st in self._states.items()
            ]
        by_tier = {t: 0 for t in self._ladder}
        for _, idx, _, _, _ in states:
            by_tier[self._ladder[idx]] += 1
        states.sort(key=lambda s: (-s[3], s[0]))
        return {
            "enabled": True,
            "entry_tier": cfg.entry_tier,
            "max_tier": cfg.max_tier,
            "thresholds": list(cfg.thresholds),
            "demote_ratio": cfg.demote_ratio,
            "decay_factor": cfg.decay_factor,
            "graphs": len(states),
            "by_tier": by_tier,
            "promotions": int(self._c_promotions.value),
            "demotions": int(self._c_demotions.value),
            "prewarms": int(self._c_prewarms.value),
            "top": [
                {
                    "key": key[:16],
                    "tier": self._ladder[idx],
                    "hits": hits,
                    "hotness": round(hot, 3),
                    "prewarmed": done,
                }
                for key, idx, hits, hot, done in states[:top]
            ],
        }

    def state_blob(self) -> dict:
        """Portable tier state for :meth:`GraphCache.snapshot`."""
        with self._lock:
            return {
                "v": 1,
                "graphs": {
                    key: {
                        "tier": self._ladder[st.tier_idx],
                        "hits": st.hits,
                        "hotness": st.hotness,
                    }
                    for key, st in self._states.items()
                },
            }

    def restore_state(self, blob: dict | None) -> int:
        """Adopt tier state written by :meth:`state_blob`.  Unknown or
        out-of-ladder tiers clamp into the current ladder; malformed
        entries are skipped.  Returns the number of keys restored."""
        if not isinstance(blob, dict):
            return 0
        graphs = blob.get("graphs")
        if not isinstance(graphs, dict):
            return 0
        restored = 0
        with self._lock:
            for key, rec in graphs.items():
                if not isinstance(key, str) or not isinstance(rec, dict):
                    continue
                tier = rec.get("tier")
                if tier in self._ladder:
                    idx = self._ladder.index(tier)
                elif tier in TIERS:
                    # pin into the ladder: clamp by global tier order
                    order = TIERS.index(tier)
                    idx = max(
                        0,
                        min(
                            len(self._ladder) - 1,
                            order - TIERS.index(self._ladder[0]),
                        ),
                    )
                else:
                    continue
                st = _GraphState(tier_idx=idx)
                try:
                    st.hits = int(rec.get("hits", 0))
                    st.hotness = float(rec.get("hotness", 0.0))
                except (TypeError, ValueError):
                    continue
                # the snapshotted entry carries its packed blob, so a
                # restored key owes no pre-warm before promotion
                st.prewarm_done = True
                self._states[key] = st
                restored += 1
            self._g_graphs.set(len(self._states))
        return restored
