"""Sharded service fleet: a consistent-hash router over N backend shards.

The :class:`FleetRouter` front end speaks the same JSON-lines protocol
as :mod:`repro.service` on both sides — clients connect to it unchanged,
and it forwards to :class:`ShardProcess` backends (full ``repro serve``
instances it spawns and supervises).  Jobs route by graph-cache key on a
:class:`HashRing` so repeat submissions hit a warm shard-local cache;
hot graphs replicate across ring successors with load-aware choice.
See DESIGN.md §12 for the architecture and failure model.
"""

from .ring import HashRing, hash_point
from .router import FleetConfig, FleetRouter, serve_fleet
from .shards import ShardProcess
from .testing import FleetThread, running_fleet

__all__ = [
    "FleetConfig",
    "FleetRouter",
    "FleetThread",
    "HashRing",
    "ShardProcess",
    "hash_point",
    "running_fleet",
    "serve_fleet",
]
