"""Consistent-hash ring: stable key→shard placement with virtual nodes.

The router hashes every job by its graph-cache key (the same content
address :mod:`repro.engine.cache` uses), so repeated submissions of one
(program, options) pair land on the same shard and hit its warm
shard-local :class:`~repro.engine.cache.GraphCache`.  Virtual nodes
(``vnodes`` points per shard) smooth the key distribution, and the ring
property that matters operationally is *minimal disruption*: adding or
removing one shard remaps only the keys in that shard's arcs, never a
full reshuffle.

Hash points come from blake2b (stdlib, fast, stable across processes
and Python versions — unlike ``hash()``, which is salted per process),
so a router restart or a respawned shard reproduces the same placement.
"""

from __future__ import annotations

import bisect
import hashlib
from collections import Counter


def hash_point(data: str) -> int:
    """A stable 64-bit ring coordinate for ``data``."""
    digest = hashlib.blake2b(data.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring over opaque hashable node ids.

    * ``lookup(key, n)`` — the first ``n`` *distinct* nodes clockwise
      from the key's point: index 0 is the primary, the rest are the
      replica set used for hot-graph replication.
    * ``add``/``remove`` — incremental membership changes; placement of
      keys outside the touched arcs is unaffected.
    """

    def __init__(self, nodes=(), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: list[int] = []  # sorted ring coordinates
        self._owners: list[object] = []  # owner node per point
        self._nodes: set = set()
        for node in nodes:
            self.add(node)

    # -- membership -------------------------------------------------------

    def add(self, node) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for v in range(self.vnodes):
            point = hash_point(f"{node!r}#{v}")
            idx = bisect.bisect(self._points, point)
            self._points.insert(idx, point)
            self._owners.insert(idx, node)

    def remove(self, node) -> None:
        if node not in self._nodes:
            raise KeyError(node)
        self._nodes.discard(node)
        keep = [
            (p, o) for p, o in zip(self._points, self._owners) if o != node
        ]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    @property
    def nodes(self) -> set:
        return set(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # -- placement --------------------------------------------------------

    def lookup(self, key: str, n: int = 1) -> list:
        """The ``n`` distinct nodes owning ``key``, primary first.
        ``n`` is clamped to the ring population."""
        if not self._nodes:
            raise LookupError("lookup on an empty ring")
        n = min(n, len(self._nodes))
        start = bisect.bisect(self._points, hash_point(key))
        out: list = []
        for i in range(len(self._points)):
            owner = self._owners[(start + i) % len(self._points)]
            if owner not in out:
                out.append(owner)
                if len(out) == n:
                    break
        return out

    def distribution(self, keys) -> Counter:
        """Primary-owner histogram for ``keys`` (balance diagnostics)."""
        return Counter(self.lookup(k, 1)[0] for k in keys)
