"""The fleet front end: a consistent-hash router over N backend shards.

Clients speak the *unchanged* JSON-lines protocol of
:mod:`repro.service.protocol` to the router; the router speaks the same
protocol to its shards, so the wire format is also the inter-node
format and every existing client (``ServiceClient``, ``repro submit``,
the load generator) works against a fleet by pointing at the router's
socket.

Contracts (DESIGN.md §12):

* **Graph affinity** — each ``submit`` is hashed by its graph-cache key
  (:func:`repro.engine.cache.graph_key`) onto the ring, so repeated
  submissions of one (source, options) pair hit one shard's warm cache.
* **Hot replication** — once a key has been routed ``hot_threshold``
  times (hotness read from the router's metrics registry), it becomes
  eligible for ``replication`` ring successors, chosen load-aware
  (least outstanding first); each replica warms its own cache on first
  contact.
* **Backpressure end-to-end** — a shard's ``queue_full`` passes through
  verbatim, and the router itself rejects with ``queue_full`` once a
  shard has ``max_pending`` jobs outstanding (queued here + in flight
  there), so a dead or slow shard cannot buffer unboundedly.
* **Deadlines end-to-end** — ``deadline_ms`` is armed at the router on
  accept; time spent queued here is subtracted before forwarding, and a
  job whose deadline lapses while queued at the router (e.g. its shard
  is respawning) is rejected on time with ``deadline_expired``.
* **Failure model** — a shard crash is detected as a torn connection:
  jobs *in flight on that shard* fail individually with
  ``shard_failed``; jobs queued at the router survive and are delivered
  after the supervisor respawns the shard on the same ring position.
  Nothing else is affected.
* **Drain** — ``shutdown`` stops intake, delivers every accepted job's
  result, then gracefully drains each shard.  Zero accepted results are
  lost.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import time
from collections import deque
from dataclasses import dataclass, field

from ..engine.cache import graph_key
from ..obs.metrics import MetricsRegistry
from ..service.protocol import (
    MAX_LINE,
    PROTOCOL_VERSION,
    decode,
    encode,
    job_from_wire,
)
from .ring import HashRing
from .shards import ShardProcess

# entry lifecycle at the router
QUEUED = "queued"  # in a shard link's outbox
SENT = "sent"  # forwarded; the shard owns it now
DONE = "done"  # replied (result, rejection, expiry, or failure)

ROUTER_COUNTERS = (
    "submitted", "completed", "failed", "rejected", "expired", "cancelled",
    "shard_failed", "forwarded_rejects", "replicated", "respawns",
)

#: how long one control RPC to a shard may take before it is skipped
CONTROL_TIMEOUT_S = 10.0


@dataclass
class FleetConfig:
    """Router listen address, fleet shape, and per-shard server knobs."""

    path: str | None = None  # router UNIX socket (wins over host/port)
    host: str = "127.0.0.1"
    port: int = 0
    shards: int = 2
    replication: int = 2  # ring successors a hot graph may use
    hot_threshold: int = 4  # routings of one key before it counts as hot
    vnodes: int = 64
    max_pending: int = 128  # per-shard cap: queued here + in flight there
    respawn: bool = True
    socket_dir: str | None = None  # shard sockets + logs (required)
    connect_backoff_s: float = 0.05
    connect_retries: int = 60
    # per-shard server knobs, passed straight to ``repro serve``
    max_queue: int = 64
    max_batch: int = 8
    max_wait_ms: float = 5.0
    pool_size: int = 1
    # one disk cache shared by every shard: graph pickles are written
    # atomically and content-addressed, so concurrent shards are safe,
    # and a respawned shard comes back up with a warm disk tier
    cache_dir: str | None = None
    # warm restart: each shard snapshots its memory tier + tiering state
    # to ``<snapshot_dir>/shard-<i>`` (per-shard subdirectories — shard
    # identity is its ring index, so a respawn restores its own state)
    snapshot_dir: str | None = None
    snapshot_interval_s: float = 0.0
    # adaptive tiering knobs, passed straight to every shard server
    tiering: bool = False
    tier_entry: str = "fast"
    tier_max: str = "vectorized"
    tier_thresholds: tuple[int, ...] = (8, 64)
    tier_decay_s: float = 10.0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("a fleet needs at least one shard")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.path is None and self.host is None:
            raise ValueError("need a UNIX socket path or a TCP host")


class _ClientConn:
    """Per-client-connection state: serialized writes + live entries."""

    __slots__ = ("writer", "lock", "entries", "alive")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.lock = asyncio.Lock()
        self.entries: dict[str, _FleetEntry] = {}
        self.alive = True

    async def send(self, frame: dict) -> None:
        if not self.alive:
            return
        try:
            async with self.lock:
                self.writer.write(encode(frame))
                await self.writer.drain()
        except (ConnectionError, RuntimeError, OSError):
            self.alive = False


class _FleetEntry:
    """One accepted submit travelling router → shard → router → client."""

    __slots__ = (
        "conn", "client_id", "rid", "job_wire", "key", "link", "state",
        "deadline_ms", "deadline_handle", "trace_id", "t_submit", "t_sent",
    )

    def __init__(self, conn: _ClientConn, client_id: str, rid: str,
                 job_wire: dict, key: str, trace_id):
        self.conn = conn
        self.client_id = client_id
        self.rid = rid
        self.job_wire = job_wire
        self.key = key
        self.link: ShardLink | None = None
        self.state = QUEUED
        self.deadline_ms: float | None = None
        self.deadline_handle: asyncio.TimerHandle | None = None
        self.trace_id = trace_id
        self.t_submit = time.monotonic()
        self.t_sent: float | None = None

    def settle(self) -> None:
        self.state = DONE
        if self.deadline_handle is not None:
            self.deadline_handle.cancel()
            self.deadline_handle = None
        if self.conn.entries.get(self.client_id) is self:
            del self.conn.entries[self.client_id]


class ShardLink:
    """The router's connection to one shard: outbox, in-flight map, and
    the reader that routes shard replies back to client entries."""

    def __init__(self, router: FleetRouter, shard: ShardProcess):
        self.router = router
        self.shard = shard
        self.outbox: deque[_FleetEntry] = deque()
        self.inflight: dict[str, _FleetEntry] = {}
        self.connected = asyncio.Event()
        self.down = False  # permanently down (no respawn); outbox only
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._wlock = asyncio.Lock()
        self._have_work = asyncio.Event()
        self._control: dict[str, deque[asyncio.Future]] = {}
        self._cancels: dict[str, asyncio.Future] = {}
        self._tasks: list[asyncio.Task] = []

    @property
    def outstanding(self) -> int:
        """Jobs this shard is responsible for right now (router outbox +
        shard in-flight) — the load-aware routing signal and the
        ``max_pending`` backpressure measure."""
        return len(self.outbox) + len(self.inflight)

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._tasks = [
            loop.create_task(self._run()),
            loop.create_task(self._pump()),
        ]

    async def stop(self) -> None:
        for t in self._tasks:
            t.cancel()
        for t in self._tasks:
            with contextlib.suppress(asyncio.CancelledError):
                await t
        self._tasks = []
        await self._close_transport()

    async def _close_transport(self) -> None:
        self.connected.clear()
        if self._writer is not None:
            with contextlib.suppress(Exception):
                self._writer.close()
            self._writer = None
        self._reader = None

    async def _connect(self) -> bool:
        """Dial the shard with capped exponential backoff (it may still
        be binding its socket).  False once retries are exhausted."""
        cfg = self.router.config
        delay = cfg.connect_backoff_s
        for _ in range(cfg.connect_retries):
            if self.router.closing:
                return False
            try:
                self._reader, self._writer = await asyncio.open_unix_connection(
                    self.shard.socket_path, limit=MAX_LINE
                )
                return True
            except (ConnectionError, FileNotFoundError, OSError):
                await asyncio.sleep(delay)
                delay = min(delay * 2, 1.0)
        return False

    async def _run(self) -> None:
        """Supervision loop: connect, pump replies until the connection
        tears, fail what was in flight, respawn, repeat."""
        saw_eof = False
        while not self.router.closing:
            if saw_eof and self.shard.alive:
                # an EOF almost always means the shard died, but poll()
                # can lag a SIGKILL by a few ms — settle the process
                # state before deciding, or we would reconnect to the
                # dead server's stale socket instead of respawning
                for _ in range(200):
                    if not self.shard.alive or self.router.closing:
                        break
                    await asyncio.sleep(0.01)
            saw_eof = False
            if not self.shard.alive and not self.router.closing:
                if not self.router.config.respawn and self.shard.spawns > 0:
                    # crashed with respawn disabled: queued entries stay
                    # queued for their deadlines; nothing to supervise
                    self.down = True
                    return
                if self.shard.spawns > 0:
                    self.router.count("respawns")
                self.shard.spawn()
            if not await self._connect():
                if self.router.closing:
                    return
                continue
            self.connected.set()
            self.router.refresh_live_gauge()
            try:
                await self._read_loop()
            except (ConnectionError, ValueError, OSError):
                pass  # torn mid-frame: same as EOF
            finally:
                saw_eof = True
                await self._close_transport()
                self.router.refresh_live_gauge()
                if not self.router.closing:
                    self._fail_inflight(
                        "shard_failed",
                        f"shard {self.shard.index} connection lost",
                    )
                self._fail_controls()

    async def _read_loop(self) -> None:
        while True:
            line = await self._reader.readline()
            if not line:
                return  # EOF: shard died or drained away
            try:
                frame = decode(line)
            except ValueError:
                continue  # a torn frame; the link will EOF right after
            op = frame.get("op")
            if op == "submit" and "id" in frame:
                entry = self.inflight.pop(frame["id"], None)
                if entry is not None and entry.state is SENT:
                    self.router.finish(entry, frame)
            elif op == "cancel":
                fut = self._cancels.pop(frame.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(frame)
            else:
                waiters = self._control.get(op)
                if waiters:
                    fut = waiters.popleft()
                    if not fut.done():
                        fut.set_result(frame)

    # -- forwarding -------------------------------------------------------

    def enqueue(self, entry: _FleetEntry) -> None:
        entry.link = self
        self.outbox.append(entry)
        self._have_work.set()

    async def _pump(self) -> None:
        """Single writer: drain the outbox into the shard connection.
        Runs only while connected; a down link leaves entries queued
        (their deadline timers still fire)."""
        while True:
            if not self.outbox:
                self._have_work.clear()
                await self._have_work.wait()
                continue
            await self.connected.wait()
            if not self.outbox:
                continue
            entry = self.outbox.popleft()
            if entry.state is not QUEUED:
                continue  # expired or cancelled while queued
            frame = {"op": "submit", "id": entry.rid, "job": entry.job_wire}
            if entry.trace_id:
                frame["trace_id"] = entry.trace_id
            if entry.deadline_ms is not None:
                remaining = entry.deadline_ms - (
                    (time.monotonic() - entry.t_submit) * 1e3
                )
                if remaining <= 0:
                    self.router.expire(entry)
                    continue
                frame["deadline_ms"] = remaining
            entry.state = SENT
            entry.t_sent = time.monotonic()
            self.inflight[entry.rid] = entry
            sent = False
            try:
                async with self._wlock:
                    writer = self._writer
                    if writer is not None:
                        writer.write(encode(frame))
                        await writer.drain()
                        sent = True
            except (ConnectionError, RuntimeError, OSError):
                pass
            if sent:
                # the shard's timer owns expiry from here on
                if entry.deadline_handle is not None:
                    entry.deadline_handle.cancel()
                    entry.deadline_handle = None
            elif (
                self.inflight.pop(entry.rid, None) is not None
                and entry.state is SENT
            ):
                # the write raced a torn connection and the reader has
                # not failed this entry: put it back for the reconnect
                entry.state = QUEUED
                self.outbox.appendleft(entry)

    def _fail_inflight(self, code: str, detail: str) -> None:
        entries = list(self.inflight.values())
        self.inflight.clear()
        for entry in entries:
            if entry.state is SENT:
                self.router.fail(entry, code, detail)

    def _fail_controls(self) -> None:
        for waiters in self._control.values():
            while waiters:
                fut = waiters.popleft()
                if not fut.done():
                    fut.set_result(None)
        for fut in self._cancels.values():
            if not fut.done():
                fut.set_result({"found": False})
        self._cancels.clear()

    def fail_queued(self, code: str, detail: str) -> None:
        """Reject everything still in the outbox (terminal drain of a
        permanently-down shard)."""
        while self.outbox:
            entry = self.outbox.popleft()
            if entry.state is QUEUED:
                self.router.fail(entry, code, detail)

    # -- control RPCs -----------------------------------------------------

    async def request(self, op: str, timeout: float = CONTROL_TIMEOUT_S,
                      **fields) -> dict | None:
        """One control round trip (stats/metrics/trace/shutdown); None
        when the shard is unreachable or slow."""
        if not self.connected.is_set():
            return None
        fut = asyncio.get_running_loop().create_future()
        self._control.setdefault(op, deque()).append(fut)
        try:
            async with self._wlock:
                self._writer.write(encode({"op": op, **fields}))
                await self._writer.drain()
            return await asyncio.wait_for(fut, timeout)
        except (ConnectionError, RuntimeError, OSError, asyncio.TimeoutError,
                TimeoutError):
            return None

    async def forward_cancel(self, rid: str,
                             timeout: float = CONTROL_TIMEOUT_S) -> bool:
        if not self.connected.is_set():
            return False
        fut = asyncio.get_running_loop().create_future()
        self._cancels[rid] = fut
        try:
            async with self._wlock:
                self._writer.write(encode({"op": "cancel", "id": rid}))
                await self._writer.drain()
            frame = await asyncio.wait_for(fut, timeout)
            return bool(frame and frame.get("found"))
        except (ConnectionError, RuntimeError, OSError, asyncio.TimeoutError,
                TimeoutError):
            return False
        finally:
            self._cancels.pop(rid, None)


class FleetRouter:
    """The front-end process: client listener, hash ring, shard links,
    and the fleet-level metrics registry."""

    def __init__(self, config: FleetConfig):
        if config.socket_dir is None:
            raise ValueError("FleetConfig.socket_dir is required")
        self.config = config
        os.makedirs(config.socket_dir, exist_ok=True)
        self.shards = [
            ShardProcess(
                i,
                os.path.join(config.socket_dir, f"shard-{i}.sock"),
                max_queue=config.max_queue,
                max_batch=config.max_batch,
                max_wait_ms=config.max_wait_ms,
                pool_size=config.pool_size,
                cache_dir=config.cache_dir,
                log_path=os.path.join(config.socket_dir, f"shard-{i}.log"),
                snapshot_dir=(
                    os.path.join(config.snapshot_dir, f"shard-{i}")
                    if config.snapshot_dir is not None
                    else None
                ),
                snapshot_interval_s=config.snapshot_interval_s,
                tiering=config.tiering,
                tier_entry=config.tier_entry,
                tier_max=config.tier_max,
                tier_thresholds=config.tier_thresholds,
                tier_decay_s=config.tier_decay_s,
            )
            for i in range(config.shards)
        ]
        self.links = [ShardLink(self, sp) for sp in self.shards]
        self.ring = HashRing(range(config.shards), vnodes=config.vnodes)
        self.closing = False
        self._draining = False
        self._server: asyncio.AbstractServer | None = None
        self._conns: set[_ClientConn] = set()
        self._replies: set[asyncio.Task] = set()
        self._shutdown_ev: asyncio.Event | None = None
        self._rid_counter = 0
        self._t0 = time.monotonic()
        self.registry = MetricsRegistry()
        self._c = {
            name: self.registry.counter(f"fleet.jobs.{name}")
            for name in ROUTER_COUNTERS
        }
        self._h = {
            "route": self.registry.histogram("fleet.latency_ms.route"),
            "total": self.registry.histogram("fleet.latency_ms.total"),
        }
        self._hot_gauge = self.registry.gauge("fleet.graphs.hot")

    def count(self, name: str, n: int = 1) -> None:
        self._c[name].inc(n)

    def refresh_live_gauge(self) -> None:
        self.registry.gauge("fleet.shards.live").set(
            sum(1 for link in self.links if link.connected.is_set())
        )

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        cfg = self.config
        self._shutdown_ev = asyncio.Event()
        for sp in self.shards:
            sp.spawn()
        for link in self.links:
            link.start()
        if cfg.path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_conn, path=cfg.path, limit=MAX_LINE
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_conn, host=cfg.host, port=cfg.port,
                limit=MAX_LINE,
            )
        self._t0 = time.monotonic()

    @property
    def endpoint(self) -> dict:
        if self.config.path is not None:
            return {"path": self.config.path}
        assert self._server is not None and self._server.sockets
        host, port = self._server.sockets[0].getsockname()[:2]
        return {"host": host, "port": port}

    def begin_shutdown(self) -> None:
        """Start the drain; idempotent, callable from signal handlers."""
        if self._draining:
            return
        self._draining = True
        if self._shutdown_ev is not None:
            self._shutdown_ev.set()

    @property
    def pending(self) -> int:
        """Accepted jobs not yet replied to (queued here + on shards)."""
        return sum(link.outstanding for link in self.links)

    async def serve_forever(self) -> None:
        assert self._shutdown_ev is not None, "call start() first"
        await self._shutdown_ev.wait()
        # 1. every accepted job must settle: shard links keep pumping
        #    and replying; permanently-down links fail their queue now
        while True:
            for link in self.links:
                if link.down or (
                    not link.shard.alive and not self.config.respawn
                ):
                    link.fail_queued(
                        "shard_failed",
                        f"shard {link.shard.index} is down at drain",
                    )
            if self.pending == 0:
                break
            await asyncio.sleep(0.02)
        # 2. flush every reply task to the client sockets
        while self._replies:
            await asyncio.gather(*list(self._replies), return_exceptions=True)
        # 3. now the shards can go: graceful drain via their own protocol
        self.closing = True
        await asyncio.gather(
            *[self._stop_shard(link) for link in self.links],
            return_exceptions=True,
        )
        for link in self.links:
            await link.stop()
        await self._teardown()

    async def _stop_shard(self, link: ShardLink) -> None:
        if link.connected.is_set():
            await link.request("shutdown", timeout=5.0)
        elif link.shard.alive:
            link.shard.terminate()
        exited = await asyncio.to_thread(link.shard.wait, 15.0)
        if exited is None:
            link.shard.kill()
            await asyncio.to_thread(link.shard.wait, 5.0)

    async def _teardown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._conns):
            conn.alive = False
            with contextlib.suppress(Exception):
                conn.writer.close()
        if self.config.path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.config.path)

    def _post(self, conn: _ClientConn, frame: dict) -> None:
        task = asyncio.get_running_loop().create_task(conn.send(frame))
        self._replies.add(task)
        task.add_done_callback(self._replies.discard)

    # -- entry settlement --------------------------------------------------

    def finish(self, entry: _FleetEntry, frame: dict) -> None:
        """A shard replied for ``entry``: account, re-address the frame
        to the client's request id, and deliver."""
        entry.settle()
        now = time.monotonic()
        self._h["total"].observe((now - entry.t_submit) * 1e3)
        if entry.t_sent is not None:
            self._h["route"].observe((entry.t_sent - entry.t_submit) * 1e3)
        if frame.get("ok"):
            result = frame.get("result") or {}
            if result.get("error") is None:
                self.count("completed")
            else:
                self.count("failed")
        else:
            self.count("forwarded_rejects")
        frame["id"] = entry.client_id
        self._post(entry.conn, frame)

    def fail(self, entry: _FleetEntry, code: str, detail: str) -> None:
        entry.settle()
        if code == "shard_failed":
            self.count("shard_failed")
        self._post(entry.conn, _submit_error(entry.client_id, code, detail))

    def expire(self, entry: _FleetEntry) -> None:
        if entry.state is not QUEUED:
            return
        if entry.link is not None:
            with contextlib.suppress(ValueError):
                entry.link.outbox.remove(entry)
        entry.settle()
        self.count("expired")
        self._post(entry.conn, _submit_error(
            entry.client_id, "deadline_expired",
            "deadline passed while queued at the router",
        ))

    # -- routing ----------------------------------------------------------

    def route(self, key: str) -> ShardLink:
        """Pick the shard for ``key``: the ring primary while cold; once
        hot, the least-loaded of the key's ``replication`` ring
        successors (preferring connected links)."""
        hits = self.registry.counter(f"fleet.graph_hits.{key[:16]}")
        hits.inc()
        if hits.value == self.config.hot_threshold:
            self._hot_gauge.inc()
        n = 1
        if hits.value >= self.config.hot_threshold:
            n = self.config.replication
        candidates = [self.links[i] for i in self.ring.lookup(key, n)]
        if len(candidates) == 1:
            return candidates[0]
        best = min(
            candidates,
            key=lambda lk: (not lk.connected.is_set(), lk.outstanding),
        )
        if best is not candidates[0]:
            self.count("replicated")
        return best

    # -- client connections ------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _ClientConn(writer)
        self._conns.add(conn)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break
                except asyncio.CancelledError:
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    msg = decode(line)
                except ValueError as exc:
                    await conn.send(_error_frame(
                        None, None, "bad_request", f"unparseable frame: {exc}"
                    ))
                    continue
                try:
                    await self._dispatch(conn, msg)
                except Exception as exc:  # a bad frame never kills the loop
                    await conn.send(_error_frame(
                        msg.get("op"), msg.get("id"), "internal_error",
                        f"{type(exc).__name__}: {exc}",
                    ))
        finally:
            conn.alive = False
            self._conns.discard(conn)
            # orphaned queued entries: nobody is left to read the result
            for entry in list(conn.entries.values()):
                if entry.state is QUEUED and entry.link is not None:
                    with contextlib.suppress(ValueError):
                        entry.link.outbox.remove(entry)
                    entry.settle()
                    self.count("cancelled")
            with contextlib.suppress(Exception):
                writer.close()

    async def _dispatch(self, conn: _ClientConn, msg: dict) -> None:
        op = msg.get("op")
        if op == "submit":
            await self._op_submit(conn, msg)
        elif op == "cancel":
            await self._op_cancel(conn, msg)
        elif op == "stats":
            await conn.send({"ok": True, "op": "stats",
                             "stats": await self.stats_snapshot()})
        elif op == "metrics":
            await conn.send({"ok": True, "op": "metrics",
                             "metrics": await self.metrics_snapshot()})
        elif op == "tiers":
            await conn.send({"ok": True, "op": "tiers",
                             "tiers": await self.tiers_snapshot()})
        elif op == "trace":
            tid = msg.get("trace_id")
            if not isinstance(tid, str) or not tid:
                await conn.send(_error_frame(
                    "trace", msg.get("id"), "bad_request",
                    "trace needs a trace_id string",
                ))
                return
            spans: list = []
            for reply in await asyncio.gather(
                *[lk.request("trace", trace_id=tid) for lk in self.links]
            ):
                if reply and reply.get("ok"):
                    spans.extend(reply.get("spans", []))
            await conn.send({"ok": True, "op": "trace", "trace_id": tid,
                             "spans": spans})
        elif op == "ping":
            await conn.send({
                "ok": True, "op": "ping", "version": PROTOCOL_VERSION,
                "fleet": {
                    "shards": len(self.links),
                    "live": sum(
                        1 for lk in self.links if lk.connected.is_set()
                    ),
                },
            })
        elif op == "shutdown":
            await conn.send({"ok": True, "op": "shutdown",
                             "draining": self.pending})
            self.begin_shutdown()
        else:
            await conn.send(_error_frame(
                op, msg.get("id"), "bad_request", f"unknown op {op!r}"
            ))

    async def _op_submit(self, conn: _ClientConn, msg: dict) -> None:
        req_id = msg.get("id")
        if not isinstance(req_id, str) or "job" not in msg:
            await conn.send(_error_frame(
                "submit", req_id, "bad_request",
                "submit needs a string id and a job object",
            ))
            return
        if req_id in conn.entries:
            await conn.send(_submit_error(
                req_id, "bad_request", "duplicate in-flight request id"
            ))
            return
        try:
            job = job_from_wire(msg["job"])
        except Exception as exc:
            await conn.send(_submit_error(
                req_id, "bad_request", f"malformed job: {exc}"
            ))
            return
        if self._draining:
            await conn.send(_submit_error(
                req_id, "shutting_down", "fleet is draining"
            ))
            return
        key = graph_key(job.source, job.options)
        link = self.route(key)
        if link.outstanding >= self.config.max_pending:
            self.count("rejected")
            await conn.send(_submit_error(
                req_id, "queue_full",
                f"shard {link.shard.index} at max_pending="
                f"{self.config.max_pending}",
                queue_depth=link.outstanding,
            ))
            return
        self._rid_counter += 1
        entry = _FleetEntry(
            conn, req_id, f"f{self._rid_counter}", msg["job"], key,
            msg.get("trace_id") or job.trace_id or None,
        )
        conn.entries[req_id] = entry
        self.count("submitted")
        deadline_ms = msg.get("deadline_ms")
        if deadline_ms is not None:
            entry.deadline_ms = max(0.0, float(deadline_ms))
            entry.deadline_handle = asyncio.get_running_loop().call_later(
                entry.deadline_ms / 1000.0, self.expire, entry
            )
        link.enqueue(entry)

    async def _op_cancel(self, conn: _ClientConn, msg: dict) -> None:
        req_id = msg.get("id")
        entry = conn.entries.get(req_id) if isinstance(req_id, str) else None
        found = False
        if entry is not None and entry.state is QUEUED:
            if entry.link is not None:
                with contextlib.suppress(ValueError):
                    entry.link.outbox.remove(entry)
            entry.settle()
            self.count("cancelled")
            found = True
            await conn.send(_submit_error(
                req_id, "cancelled", "cancelled by client"
            ))
        elif entry is not None and entry.state is SENT:
            # the shard owns it; forward and relay its verdict (a found
            # cancel also produces a submit-error frame, which flows back
            # through the normal in-flight path)
            found = await entry.link.forward_cancel(entry.rid)
        await conn.send({
            "ok": True, "op": "cancel", "id": req_id, "found": bool(found),
        })

    # -- stats / metrics ---------------------------------------------------

    async def _shard_replies(self, op: str, **fields) -> list[dict | None]:
        return list(await asyncio.gather(
            *[link.request(op, **fields) for link in self.links]
        ))

    async def stats_snapshot(self) -> dict:
        """Fleet-wide stats: aggregated counters, router-observed
        latencies, and a per-shard breakdown.

        Top-level ``latency_ms.queue``/``latency_ms.total`` are measured
        at the router (time queued here; submit→reply).  ``compile`` and
        ``sim`` percentiles are computed over the shards' *pooled* raw
        sample rings (requested with ``samples=True``) — per-shard
        percentiles do not compose, and a count-weighted average of them
        systematically under-reports tail latency when shards are
        skewed.  ``count``/``mean``/``max`` compose exactly either way.
        """
        from ..engine.latency import LatencySummary

        replies = await self._shard_replies("stats", samples=True)
        shards: dict[str, dict] = {}
        for link, reply in zip(self.links, replies):
            idx = str(link.shard.index)
            if reply is None or not reply.get("ok"):
                shards[idx] = {
                    "up": False,
                    "alive_process": link.shard.alive,
                    "outstanding_at_router": link.outstanding,
                }
            else:
                st = reply["stats"]
                st["up"] = True
                st["outstanding_at_router"] = link.outstanding
                shards[idx] = st
        up = [st for st in shards.values() if st.get("up")]

        def total(field: str) -> float:
            return sum(st.get(field, 0) for st in up)

        uptime = time.monotonic() - self._t0
        done = self._c["completed"].value + self._c["failed"].value
        cache = {
            "jobs_hit": sum(st["cache"]["jobs_hit"] for st in up),
            "jobs_done": sum(st["cache"]["jobs_done"] for st in up),
        }
        cache["hit_rate"] = (
            cache["jobs_hit"] / cache["jobs_done"] if cache["jobs_done"] else 0.0
        )
        engines = [st["cache"].get("engine") for st in up]
        engines = [e for e in engines if e]
        if engines:
            cache["engine"] = {
                k: sum(e[k] for e in engines)
                for k in ("memory_hits", "disk_hits", "compiles", "entries")
            }
        latency = {
            "queue": LatencySummary.from_samples(
                self._h["route"].samples()
            ).to_json(),
            "total": LatencySummary.from_samples(
                self._h["total"].samples()
            ).to_json(),
        }
        for stage in ("compile", "sim"):
            latency[stage] = _merge_latency(
                [st["latency_ms"][stage] for st in up]
            )
        # the rings served their purpose; keep the per-shard breakdown
        # (and the client-facing reply) summary-sized
        for st in up:
            for stage_summary in st.get("latency_ms", {}).values():
                stage_summary.pop("samples", None)
        return {
            "uptime_s": uptime,
            "draining": self._draining,
            "queue_depth": sum(len(lk.outbox) for lk in self.links)
            + int(total("queue_depth")),
            "in_flight": int(total("in_flight")),
            "max_queue": self.config.max_queue,
            "max_batch": self.config.max_batch,
            "max_wait_ms": self.config.max_wait_ms,
            "pool_size": self.config.pool_size,
            "batches": int(total("batches")),
            "submitted": self._c["submitted"].value,
            "completed": self._c["completed"].value,
            "failed": self._c["failed"].value,
            "rejected": self._c["rejected"].value + int(total("rejected")),
            "expired": self._c["expired"].value + int(total("expired")),
            "cancelled": self._c["cancelled"].value + int(total("cancelled")),
            "jobs_per_s": done / uptime if uptime > 0 else 0.0,
            "cache": cache,
            "latency_ms": latency,
            "fleet": {
                "shards": len(self.links),
                "live": sum(
                    1 for lk in self.links if lk.connected.is_set()
                ),
                "replication": self.config.replication,
                "hot_threshold": self.config.hot_threshold,
                "hot_graphs": int(self._hot_gauge.value),
                "replicated_routes": self._c["replicated"].value,
                "respawns": self._c["respawns"].value,
                "shard_failed": self._c["shard_failed"].value,
                "rejected_at_router": self._c["rejected"].value,
                "forwarded_rejects": self._c["forwarded_rejects"].value,
                "max_pending": self.config.max_pending,
            },
            "shards": shards,
        }

    async def tiers_snapshot(self) -> dict:
        """Fleet-wide tiering view: totals summed over live shards, the
        hottest graphs pooled across the fleet, and each shard's own
        ``tiers`` payload under ``shards``."""
        replies = await self._shard_replies("tiers")
        shards: dict[str, dict] = {}
        totals = {"graphs": 0, "promotions": 0, "demotions": 0,
                  "prewarms": 0}
        top: list[dict] = []
        enabled = False
        for link, reply in zip(self.links, replies):
            idx = str(link.shard.index)
            if reply is None or not reply.get("ok"):
                shards[idx] = {"up": False}
                continue
            t = reply["tiers"]
            t["up"] = True
            shards[idx] = t
            if t.get("enabled"):
                enabled = True
                for k in totals:
                    totals[k] += int(t.get(k, 0))
                for row in t.get("top", []):
                    top.append({**row, "shard": link.shard.index})
        top.sort(key=lambda r: -r.get("hotness", 0.0))
        return {
            "enabled": enabled,
            **totals,
            "top": top[:50],
            "snapshot": {"dir": self.config.snapshot_dir,
                         "interval_s": self.config.snapshot_interval_s},
            "shards": shards,
        }

    async def metrics_snapshot(self) -> dict:
        """Registry dump: the router's own instruments, shard counters
        and histograms aggregated in (sums; bucket-wise for histograms),
        and each shard's full snapshot under ``shards``."""
        self.registry.gauge("fleet.uptime_s").set(
            time.monotonic() - self._t0
        )
        self.registry.gauge("fleet.pending").set(self.pending)
        self.refresh_live_gauge()
        snap = self.registry.snapshot()
        replies = await self._shard_replies("metrics")
        shards: dict[str, dict] = {}
        for link, reply in zip(self.links, replies):
            idx = str(link.shard.index)
            if reply is None or not reply.get("ok"):
                shards[idx] = {"up": False}
                continue
            m = reply["metrics"]
            m["up"] = True
            shards[idx] = m
            for name, value in m.get("counters", {}).items():
                snap["counters"][name] = (
                    snap["counters"].get(name, 0) + value
                )
            for name, h in m.get("histograms", {}).items():
                agg = snap["histograms"].get(name)
                if agg is None:
                    snap["histograms"][name] = {
                        "count": h["count"], "sum": h["sum"],
                        "buckets": [list(b) for b in h["buckets"]],
                    }
                elif [b[0] for b in agg["buckets"]] == [
                    b[0] for b in h["buckets"]
                ]:
                    agg["count"] += h["count"]
                    agg["sum"] += h["sum"]
                    for mine, theirs in zip(agg["buckets"], h["buckets"]):
                        mine[1] += theirs[1]
        snap["shards"] = shards
        return snap


def _merge_latency(summaries: list[dict]) -> dict:
    """Merge per-shard :class:`LatencySummary` dicts into fleet totals.

    ``count``/``mean``/``max`` compose exactly from the summaries.
    Percentiles do not: a count-weighted average of per-shard p99s
    under-reports the fleet tail whenever one shard is slower than the
    rest (the slow shard's p99 gets diluted by the fast shards' counts
    even though the pooled p99 sits inside the slow shard's
    distribution).  When every shard shipped its raw sample ring we
    pool the rings and compute the percentiles directly; the weighted
    average survives only as a fallback for shards that predate the
    ``samples`` stats flag.
    """
    from ..engine.latency import percentile

    summaries = [s for s in summaries if s and s.get("count")]
    count = sum(s["count"] for s in summaries)
    if not count:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                "p99": 0.0, "max": 0.0}
    out = {"count": count, "max": max(s["max"] for s in summaries),
           "mean": sum(s["mean"] * s["count"] for s in summaries) / count}
    if all(s.get("samples") for s in summaries):
        pooled = sorted(x for s in summaries for x in s["samples"])
        for field_, q in (("p50", 50), ("p95", 95), ("p99", 99)):
            out[field_] = percentile(pooled, q)
    else:
        for field_ in ("p50", "p95", "p99"):
            out[field_] = sum(s[field_] * s["count"] for s in summaries) / count
    return out


def _error_frame(op, req_id, code: str, detail: str) -> dict:
    frame = {"ok": False, "op": op, "error": code, "detail": detail}
    if req_id is not None:
        frame["id"] = req_id
    return frame


def _submit_error(req_id, code: str, detail: str, **extra) -> dict:
    frame = _error_frame("submit", req_id, code, detail)
    frame.update(extra)
    return frame


async def serve_fleet(config: FleetConfig) -> FleetRouter:
    """Start a router (and its shards) on the current event loop; the
    caller awaits :meth:`FleetRouter.serve_forever`."""
    router = FleetRouter(config)
    await router.start()
    return router
