"""Backend shard processes: spawn, watch, respawn.

Each shard is a full :mod:`repro.service` server (``python -m repro
serve``) in its own OS process with its own event loop, engine executor,
and shard-local :class:`~repro.engine.cache.GraphCache` — the unit the
router consistent-hashes jobs onto.  Running shards as real processes
(not threads) is the point: N shards scale across N cores past the GIL,
and a shard crash — up to and including ``kill -9`` — is a torn socket
the router can detect, not a corrupted address space.

The supervisor policy lives in the router; this module only knows how
to start a shard, tell whether it is alive, and start it again on the
same socket path (respawn keeps ring placement stable: the shard's
identity is its index, not its pid).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path


class ShardProcess:
    """One backend server subprocess bound to a fixed UNIX socket path."""

    def __init__(
        self,
        index: int,
        socket_path: str,
        *,
        max_queue: int = 64,
        max_batch: int = 8,
        max_wait_ms: float = 5.0,
        pool_size: int = 1,
        cache_dir: str | None = None,
        log_path: str | None = None,
        snapshot_dir: str | None = None,
        snapshot_interval_s: float = 0.0,
        tiering: bool = False,
        tier_entry: str = "fast",
        tier_max: str = "vectorized",
        tier_thresholds: tuple[int, ...] = (8, 64),
        tier_decay_s: float = 10.0,
    ):
        self.index = index
        self.socket_path = socket_path
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.pool_size = pool_size
        self.cache_dir = cache_dir
        self.log_path = log_path
        self.snapshot_dir = snapshot_dir
        self.snapshot_interval_s = snapshot_interval_s
        self.tiering = tiering
        self.tier_entry = tier_entry
        self.tier_max = tier_max
        self.tier_thresholds = tuple(tier_thresholds)
        self.tier_decay_s = tier_decay_s
        self.proc: subprocess.Popen | None = None
        self.spawns = 0  # total spawns; spawns - 1 == respawns

    # -- lifecycle --------------------------------------------------------

    def _argv(self) -> list[str]:
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--socket", self.socket_path,
            "--max-queue", str(self.max_queue),
            "--max-batch", str(self.max_batch),
            "--max-wait-ms", str(self.max_wait_ms),
            "--jobs", str(self.pool_size),
        ]
        if self.cache_dir is not None:
            argv += ["--cache-dir", self.cache_dir]
        if self.snapshot_dir is not None:
            argv += ["--snapshot-dir", self.snapshot_dir,
                     "--snapshot-interval", str(self.snapshot_interval_s)]
        if self.tiering:
            argv += [
                "--tiering",
                "--tier-entry", self.tier_entry,
                "--tier-max", self.tier_max,
                "--tier-thresholds",
                ",".join(str(t) for t in self.tier_thresholds),
                "--tier-decay-s", str(self.tier_decay_s),
            ]
        return argv

    def spawn(self) -> None:
        """Start (or restart) the shard server on its socket path."""
        if self.alive:
            raise RuntimeError(f"shard {self.index} is already running")
        # a kill -9'd server cannot unlink its socket; a stale path would
        # make the respawned server fail to bind
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        env = dict(os.environ)
        # the shard must import the same repro tree the router runs from,
        # regardless of the caller's cwd or install mode
        pkg_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = pkg_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        log = (
            open(self.log_path, "ab")
            if self.log_path is not None
            else subprocess.DEVNULL
        )
        try:
            self.proc = subprocess.Popen(
                self._argv(),
                stdout=log,
                stderr=log if self.log_path is not None else subprocess.DEVNULL,
                stdin=subprocess.DEVNULL,
                env=env,
            )
        finally:
            if self.log_path is not None:
                log.close()
        self.spawns += 1

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    @property
    def pid(self) -> int | None:
        return self.proc.pid if self.proc is not None else None

    # -- teardown ---------------------------------------------------------

    def terminate(self) -> None:
        """SIGTERM — the server's signal handler runs a graceful drain."""
        if self.alive:
            self.proc.terminate()

    def kill(self) -> None:
        """SIGKILL — the crash the failure tests simulate."""
        if self.alive:
            self.proc.send_signal(signal.SIGKILL)

    def wait(self, timeout: float | None = None) -> int | None:
        """Blocking wait for exit (call off the event loop); ``None`` if
        the process is still up after ``timeout``."""
        if self.proc is None:
            return None
        try:
            return self.proc.wait(timeout)
        except subprocess.TimeoutExpired:
            return None

    def reap(self, timeout: float = 10.0) -> None:
        """Terminate, escalate to kill, and always collect the zombie."""
        if self.proc is None:
            return
        self.terminate()
        if self.wait(timeout) is None:
            self.kill()
            self.wait(5.0)
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
