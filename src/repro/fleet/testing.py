"""Host a FleetRouter on a background thread, shards and all.

Mirrors :mod:`repro.service.testing`: the router runs on a dedicated
event-loop thread in this process (fast to start, shares tracebacks),
while its shards are the real subprocesses — so fleet tests exercise
the actual multi-process topology, including ``kill -9``.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import shutil
import tempfile
import threading

from ..service.testing import _SUN_PATH_MAX
from .router import FleetConfig, FleetRouter


def ephemeral_fleet_dir() -> str:
    """A short-path scratch directory for the router socket, shard
    sockets, and shard logs (short so every socket path stays under the
    kernel's sun_path limit — see :mod:`repro.service.testing`)."""
    d = tempfile.mkdtemp(prefix="repro-fleet-")
    # longest tenant: <d>/shard-NN.sock — leave headroom for two digits
    if len(d.encode()) + len("/shard-99.sock") > _SUN_PATH_MAX:
        os.rmdir(d)
        d = tempfile.mkdtemp(prefix="rf-", dir="/tmp")
    return d


class FleetThread:
    """Run one router (plus its shard subprocesses) on an event-loop
    thread; ``start()`` blocks until the router socket listens."""

    def __init__(self, config: FleetConfig):
        self.config = config
        self.router: FleetRouter | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(target=self._main, daemon=True)

    def _main(self) -> None:
        async def body():
            self.router = FleetRouter(self.config)
            try:
                await self.router.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                raise
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self.router.serve_forever()

        try:
            asyncio.run(body())
        except BaseException as exc:
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()

    def start(self, timeout: float = 30.0) -> dict:
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("fleet router did not start listening in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"fleet failed to start: {self._startup_error!r}"
            )
        return self.router.endpoint

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.router.begin_shutdown)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError("fleet did not drain and exit in time")
        # belt and braces: a startup failure can leave shards running
        if self.router is not None:
            for sp in self.router.shards:
                if sp.alive:
                    sp.reap()


@contextlib.contextmanager
def running_fleet(config: FleetConfig | None = None, **kwargs):
    """``with running_fleet(shards=2) as (endpoint, router): ...`` —
    endpoint kwargs feed straight into a ServiceClient, exactly like
    :func:`repro.service.testing.running_server`.

    With no explicit endpoint or socket_dir, everything (router socket,
    shard sockets, shard logs) lives in one ephemeral short-path
    directory removed on exit.
    """
    ephemeral_dir = None
    if config is None:
        if "socket_dir" not in kwargs:
            kwargs["socket_dir"] = ephemeral_fleet_dir()
            ephemeral_dir = kwargs["socket_dir"]
        if "path" not in kwargs and "port" not in kwargs:
            kwargs["path"] = os.path.join(kwargs["socket_dir"], "router.sock")
        config = FleetConfig(**kwargs)
    elif kwargs:
        raise TypeError("pass either a config or keyword fields, not both")
    host = FleetThread(config)
    endpoint = host.start()
    try:
        yield endpoint, host.router
    finally:
        host.stop()
        if ephemeral_dir is not None and ephemeral_dir not in (
            "/", "/tmp", tempfile.gettempdir()
        ):
            shutil.rmtree(ephemeral_dir, ignore_errors=True)
