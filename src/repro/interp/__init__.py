"""Reference sequential interpreters.

Two independent implementations of the source language's standard
operational semantics — one over the AST, one over the CFG — used as ground
truth: every translation schema's dataflow execution must produce the same
final memory.
"""

from .ast_interp import run_ast
from .cfg_interp import run_cfg

__all__ = ["run_ast", "run_cfg"]
