"""Sequential AST interpreter: the standard operational semantics — a
program counter over statements mutating a global updatable store."""

from __future__ import annotations

from ..lang.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    CondGoto,
    Expr,
    Goto,
    IntLit,
    Program,
    Skip,
    UnOp,
    Var,
)
from ..machine.memory import DataMemory
from ..semantics import apply_binop, apply_unop, truthy


class StepLimitExceeded(Exception):
    """The interpreter ran longer than allowed (probably nontermination)."""


def eval_expr(e: Expr, mem: DataMemory) -> int:
    if isinstance(e, IntLit):
        return e.value
    if isinstance(e, Var):
        return mem.read(e.name)
    if isinstance(e, ArrayRef):
        return mem.aread(e.name, eval_expr(e.index, mem))
    if isinstance(e, BinOp):
        return apply_binop(e.op, eval_expr(e.left, mem), eval_expr(e.right, mem))
    if isinstance(e, UnOp):
        return apply_unop(e.op, eval_expr(e.operand, mem))
    raise TypeError(f"unknown expression {type(e).__name__}")


def run_ast(
    prog: Program,
    inputs: dict[str, int] | None = None,
    max_steps: int = 1_000_000,
) -> dict[str, int | list[int]]:
    """Run a program, returning the final store snapshot.

    ``goto`` targets may be anywhere in the program (including inside
    structured bodies), so execution works over a *flattened* statement list
    produced by the same lowering the CFG builder uses — guaranteeing the
    two interpreters agree on unstructured control flow.  Subroutine calls
    are expanded first (the same expansion the compiler uses).
    """
    from ..cfg.builder import lower
    from ..lang.subroutines import expand_subroutines

    if prog.subs:
        prog, _ = expand_subroutines(prog)
    flat = lower(prog)
    labels: dict[str, int] = {}
    for i, s in enumerate(flat):
        if s.label:
            labels[s.label] = i

    mem = DataMemory.for_program(prog, inputs)
    pc = 0
    steps = 0
    while pc < len(flat):
        steps += 1
        if steps > max_steps:
            raise StepLimitExceeded(f"more than {max_steps} statements executed")
        s = flat[pc]
        if isinstance(s, Assign):
            value = eval_expr(s.expr, mem)
            if isinstance(s.target, ArrayRef):
                mem.awrite(s.target.name, eval_expr(s.target.index, mem), value)
            else:
                mem.write(s.target.name, value)
            pc += 1
        elif isinstance(s, Goto):
            pc = labels[s.target]
        elif isinstance(s, CondGoto):
            if truthy(eval_expr(s.pred, mem)):
                pc = labels[s.then_target]
            elif s.else_target is not None:
                pc = labels[s.else_target]
            else:
                pc += 1
        elif isinstance(s, Skip):
            pc += 1
        else:
            raise TypeError(f"unexpected flat statement {type(s).__name__}")
    return mem.snapshot()
