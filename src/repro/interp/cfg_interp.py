"""Sequential CFG interpreter: walks the control-flow graph node by node,
an independent check on the CFG builder and the AST interpreter."""

from __future__ import annotations

from ..cfg.graph import CFG, NodeKind
from ..lang.ast_nodes import ArrayRef, Program
from ..machine.memory import DataMemory
from ..semantics import truthy
from .ast_interp import StepLimitExceeded, eval_expr


def run_cfg(
    cfg: CFG,
    prog: Program,
    inputs: dict[str, int] | None = None,
    max_steps: int = 1_000_000,
) -> dict[str, int | list[int]]:
    """Execute the CFG sequentially; returns the final store snapshot.

    ``prog`` supplies the array declarations for sizing memory.  Works on
    loop-control-augmented graphs too (LOOP_ENTRY/LOOP_EXIT are no-ops
    sequentially).
    """
    mem = DataMemory.for_program(prog, inputs)
    cur = cfg.entry
    steps = 0
    while cur != cfg.exit:
        steps += 1
        if steps > max_steps:
            raise StepLimitExceeded(f"more than {max_steps} nodes executed")
        node = cfg.node(cur)
        kind = node.kind
        if kind is NodeKind.START:
            cur = next(e.dst for e in cfg.out_edges(cur) if e.direction is True)
        elif kind is NodeKind.ASSIGN:
            value = eval_expr(node.expr, mem)
            if isinstance(node.target, ArrayRef):
                mem.awrite(
                    node.target.name, eval_expr(node.target.index, mem), value
                )
            else:
                mem.write(node.target.name, value)
            (edge,) = cfg.out_edges(cur)
            cur = edge.dst
        elif kind is NodeKind.FORK:
            taken = truthy(eval_expr(node.pred, mem))
            cur = next(
                e.dst for e in cfg.out_edges(cur) if e.direction is taken
            )
        elif kind in (NodeKind.JOIN, NodeKind.LOOP_ENTRY, NodeKind.LOOP_EXIT):
            (edge,) = cfg.out_edges(cur)
            cur = edge.dst
        else:
            raise TypeError(f"cannot interpret node kind {kind}")
    return mem.snapshot()
