"""Imperative source language front end.

The paper translates programs in a conventional imperative language
(FORTRAN-like scalars, arrays, unstructured ``goto`` control flow, and
aliased variable names) into dataflow graphs.  This package provides a small
such language:

* assignments ``x := e;`` and ``a[i] := e;``
* unstructured control flow: labels, ``goto l;``, and binary forks
  ``if p then goto l1 else goto l2;`` exactly as in Section 2.1
* structured sugar ``if p then { ... } else { ... }`` and
  ``while p do { ... }`` which the CFG builder lowers to forks and joins
* ``array a[n];`` declarations
* ``alias (x, y);`` declarations that build the alias structure of
  Section 5 (standing in for FORTRAN by-reference parameter aliasing)

The public surface is :func:`parse` (source text -> :class:`Program`) and the
AST node classes re-exported here.
"""

from .errors import CompileError, LexError, ParseError, SemanticError, SourceLocation
from .tokens import Token, TokenKind
from .lexer import tokenize
from .ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    CondGoto,
    Expr,
    Goto,
    If,
    IntLit,
    Program,
    Skip,
    Stmt,
    SubDef,
    UnOp,
    Var,
    While,
)
from .subroutines import ExpansionReport, expand_subroutines
from .parser import parse
from .pretty import pretty

__all__ = [
    "ArrayRef",
    "Assign",
    "BinOp",
    "Call",
    "CompileError",
    "CondGoto",
    "ExpansionReport",
    "Expr",
    "SubDef",
    "expand_subroutines",
    "Goto",
    "If",
    "IntLit",
    "LexError",
    "ParseError",
    "Program",
    "SemanticError",
    "Skip",
    "SourceLocation",
    "Stmt",
    "Token",
    "TokenKind",
    "UnOp",
    "Var",
    "While",
    "parse",
    "pretty",
    "tokenize",
]
