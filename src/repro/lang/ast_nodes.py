"""Abstract syntax tree for the source language.

Expressions are pure (no side effects); all state change happens in
:class:`Assign`.  Statements may carry a ``label`` making them a goto target.
Structured statements (:class:`If`, :class:`While`) are syntactic sugar that
the CFG builder lowers into the fork/join form of Section 2.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import SourceLocation

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Expr:
    """Base class for expressions."""


@dataclass(frozen=True, slots=True)
class IntLit(Expr):
    """Integer literal."""

    value: int


@dataclass(frozen=True, slots=True)
class Var(Expr):
    """Scalar variable reference (a read when used in an expression, a write
    target when used as the left-hand side of :class:`Assign`)."""

    name: str


@dataclass(frozen=True, slots=True)
class ArrayRef(Expr):
    """Array element reference ``name[index]``."""

    name: str
    index: Expr


# Binary operators.  Comparisons and logical connectives yield 0/1.
# Division and modulus are *total*: a zero divisor yields 0 (documented
# deviation from trap semantics; keeps random-program property tests total).
BINARY_OPS = frozenset(
    {"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "and", "or"}
)
UNARY_OPS = frozenset({"-", "not"})


@dataclass(frozen=True, slots=True)
class BinOp(Expr):
    """Binary operation ``left op right``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary operator {self.op!r}")


@dataclass(frozen=True, slots=True)
class UnOp(Expr):
    """Unary operation ``op operand``."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary operator {self.op!r}")


def expr_vars(e: Expr) -> list[str]:
    """Variable names read by expression ``e`` (array names included), in
    first-appearance order, without duplicates."""
    out: dict[str, None] = {}

    def walk(x: Expr) -> None:
        if isinstance(x, Var):
            out.setdefault(x.name, None)
        elif isinstance(x, ArrayRef):
            out.setdefault(x.name, None)
            walk(x.index)
        elif isinstance(x, BinOp):
            walk(x.left)
            walk(x.right)
        elif isinstance(x, UnOp):
            walk(x.operand)

    walk(e)
    return list(out)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Stmt:
    """Base class for statements.  ``label`` names this statement as a goto
    target; ``location`` points back into the source."""

    label: str | None = field(default=None, kw_only=True)
    location: SourceLocation | None = field(default=None, kw_only=True)


@dataclass(slots=True)
class Assign(Stmt):
    """``target := expr;`` where target is a :class:`Var` or :class:`ArrayRef`."""

    target: Var | ArrayRef
    expr: Expr


@dataclass(slots=True)
class Goto(Stmt):
    """Unconditional jump ``goto target;``."""

    target: str


@dataclass(slots=True)
class CondGoto(Stmt):
    """Binary fork ``if pred then goto then_target else goto else_target;``.

    ``else_target`` of ``None`` means fall through to the next statement.
    """

    pred: Expr
    then_target: str
    else_target: str | None = None


@dataclass(slots=True)
class If(Stmt):
    """Structured conditional (sugar)."""

    cond: Expr
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)


@dataclass(slots=True)
class While(Stmt):
    """Structured loop (sugar)."""

    cond: Expr
    body: list[Stmt] = field(default_factory=list)


@dataclass(slots=True)
class Skip(Stmt):
    """No-op; useful as a labeled join point."""


@dataclass(slots=True)
class Call(Stmt):
    """Subroutine call ``call f(a, b, ...);`` — all parameters are passed
    by reference (FORTRAN-style), so distinct formals may alias.  Expanded
    away by :mod:`repro.lang.subroutines` before CFG construction."""

    name: str
    args: list[str] = field(default_factory=list)


@dataclass(slots=True)
class SubDef:
    """A subroutine definition ``sub f(p, q) { ... }``.

    Subroutines have no return value; they communicate through their
    by-reference parameters (and only those — any other name used in the
    body is a local, renamed per expansion)."""

    name: str
    formals: list[str]
    body: list[Stmt]
    location: SourceLocation | None = None


# ---------------------------------------------------------------------------
# Program
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Program:
    """A whole translation unit.

    * ``arrays`` maps declared array names to their lengths.
    * ``scalars`` lists explicitly declared scalar names (implicit scalars —
      any identifier used but not declared — are also permitted).
    * ``alias_groups`` holds the ``alias (...)`` declarations: each group is a
      tuple of names declared mutually aliased.  Section 5's alias relation is
      the reflexive-symmetric closure of these pairs.
    * ``body`` is the statement list.
    """

    body: list[Stmt] = field(default_factory=list)
    arrays: dict[str, int] = field(default_factory=dict)
    scalars: list[str] = field(default_factory=list)
    alias_groups: list[tuple[str, ...]] = field(default_factory=list)
    subs: dict[str, "SubDef"] = field(default_factory=dict)

    def variables(self) -> list[str]:
        """All variable names (scalars and arrays) referenced or declared,
        in a deterministic first-appearance order."""
        seen: dict[str, None] = {}

        def expr_vars(e: Expr) -> None:
            if isinstance(e, Var):
                seen.setdefault(e.name, None)
            elif isinstance(e, ArrayRef):
                seen.setdefault(e.name, None)
                expr_vars(e.index)
            elif isinstance(e, BinOp):
                expr_vars(e.left)
                expr_vars(e.right)
            elif isinstance(e, UnOp):
                expr_vars(e.operand)

        def stmt_vars(s: Stmt) -> None:
            if isinstance(s, Assign):
                if isinstance(s.target, ArrayRef):
                    seen.setdefault(s.target.name, None)
                    expr_vars(s.target.index)
                else:
                    seen.setdefault(s.target.name, None)
                expr_vars(s.expr)
            elif isinstance(s, CondGoto):
                expr_vars(s.pred)
            elif isinstance(s, If):
                expr_vars(s.cond)
                for t in s.then_body:
                    stmt_vars(t)
                for t in s.else_body:
                    stmt_vars(t)
            elif isinstance(s, While):
                expr_vars(s.cond)
                for t in s.body:
                    stmt_vars(t)
            elif isinstance(s, Call):
                for a in s.args:
                    seen.setdefault(a, None)

        for name in self.scalars:
            seen.setdefault(name, None)
        for name in self.arrays:
            seen.setdefault(name, None)
        for s in self.body:
            stmt_vars(s)
        for group in self.alias_groups:
            for name in group:
                seen.setdefault(name, None)
        return list(seen)

    def with_declared_variables(self) -> "Program":
        """A copy whose ``scalars`` explicitly declares every variable,
        pinning :meth:`variables` to the current order.  ``variables()``
        seeds declared names before walking the body, so once a program
        is rendered with this explicit ``var`` line its variable order —
        and everything keyed on it, notably region interface headers —
        survives edits that move a variable's first reference."""
        return replace(self, scalars=self.variables())
