"""Error types and source locations for the front end."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SourceLocation:
    """A 1-based (line, column) position in a source file."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


class CompileError(Exception):
    """Base class for all front-end errors.

    Carries an optional :class:`SourceLocation` so callers can point at the
    offending source text.
    """

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)


class LexError(CompileError):
    """Raised on malformed input at the character level."""


class ParseError(CompileError):
    """Raised on malformed input at the token level."""


class SemanticError(CompileError):
    """Raised on well-formed but meaningless programs (duplicate labels,
    gotos to undefined labels, use of undeclared arrays, ...)."""
