"""Hand-written lexer for the source language.

Comments run from ``#`` to end of line.  Whitespace separates tokens but is
otherwise insignificant.
"""

from __future__ import annotations

from .errors import LexError, SourceLocation
from .tokens import KEYWORDS, Token, TokenKind

# Two-character operators must be tried before their one-character prefixes.
_TWO_CHAR = {
    ":=": TokenKind.ASSIGN,
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
}

_ONE_CHAR = {
    ":": TokenKind.COLON,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
}


def tokenize(source: str) -> list[Token]:
    """Convert source text into a token list ending with an EOF token.

    Raises :class:`LexError` on any character that cannot start a token.
    """
    tokens: list[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)
    while i < n:
        c = source[i]
        if c == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if c in " \t\r":
            i += 1
            col += 1
            continue
        if c == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        loc = SourceLocation(line, col)
        two = source[i : i + 2]
        if two in _TWO_CHAR:
            tokens.append(Token(_TWO_CHAR[two], two, loc))
            i += 2
            col += 2
            continue
        if c in _ONE_CHAR:
            tokens.append(Token(_ONE_CHAR[c], c, loc))
            i += 1
            col += 1
            continue
        if c.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            if j < n and (source[j].isalpha() or source[j] == "_"):
                raise LexError(f"malformed number {source[i:j + 1]!r}", loc)
            tokens.append(Token(TokenKind.INT, source[i:j], loc))
            col += j - i
            i = j
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = KEYWORDS.get(text, TokenKind.IDENT)
            tokens.append(Token(kind, text, loc))
            col += j - i
            i = j
            continue
        raise LexError(f"unexpected character {c!r}", loc)
    tokens.append(Token(TokenKind.EOF, "", SourceLocation(line, col)))
    return tokens
