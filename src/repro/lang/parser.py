"""Recursive-descent parser for the source language.

Grammar (EBNF; ``{x}`` repetition, ``[x]`` option)::

    program   : {decl} {stmt} EOF
    decl      : "var" IDENT {"," IDENT} ";"
              | "array" IDENT "[" INT "]" {"," IDENT "[" INT "]"} ";"
              | "alias" "(" IDENT "," IDENT {"," IDENT} ")" ";"
    stmt      : [IDENT ":"] base
    base      : IDENT ":=" expr ";"
              | IDENT "[" expr "]" ":=" expr ";"
              | "goto" IDENT ";"
              | "if" expr "then" "goto" IDENT ["else" "goto" IDENT] ";"
              | "if" expr "then" block ["else" block]
              | "while" expr "do" block
              | "skip" ";"
    block     : "{" {stmt} "}"
    expr      : or_expr
    or_expr   : and_expr {"or" and_expr}
    and_expr  : not_expr {"and" not_expr}
    not_expr  : "not" not_expr | cmp_expr
    cmp_expr  : add_expr [("=="|"!="|"<"|"<="|">"|">=") add_expr]
    add_expr  : mul_expr {("+"|"-") mul_expr}
    mul_expr  : unary {("*"|"/"|"%") unary}
    unary     : "-" unary | atom
    atom      : INT | IDENT ["[" expr "]"] | "(" expr ")"

A label is an identifier followed by ``:`` (but not ``:=``); it attaches to
the statement that follows it.
"""

from __future__ import annotations

from .ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    CondGoto,
    Expr,
    Goto,
    If,
    IntLit,
    Program,
    Skip,
    Stmt,
    SubDef,
    UnOp,
    Var,
    While,
)
from .errors import ParseError, SemanticError
from .lexer import tokenize
from .tokens import Token, TokenKind

_CMP_OPS = {
    TokenKind.EQ: "==",
    TokenKind.NE: "!=",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
}
_ADD_OPS = {TokenKind.PLUS: "+", TokenKind.MINUS: "-"}
_MUL_OPS = {TokenKind.STAR: "*", TokenKind.SLASH: "/", TokenKind.PERCENT: "%"}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def check(self, kind: TokenKind) -> bool:
        return self.peek().kind is kind

    def match(self, kind: TokenKind) -> Token | None:
        if self.check(kind):
            return self.advance()
        return None

    def expect(self, kind: TokenKind) -> Token:
        tok = self.peek()
        if tok.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r}, found {tok.kind.value!r}", tok.location
            )
        return self.advance()

    # -- grammar ----------------------------------------------------------

    def program(self) -> Program:
        prog = Program()
        while self.peek().kind in (
            TokenKind.KW_VAR,
            TokenKind.KW_ARRAY,
            TokenKind.KW_ALIAS,
        ):
            self.decl(prog)
        while self.check(TokenKind.KW_SUB):
            self.subdef(prog)
        while not self.check(TokenKind.EOF):
            prog.body.append(self.stmt())
        _validate(prog)
        return prog

    def subdef(self, prog: Program) -> None:
        tok = self.expect(TokenKind.KW_SUB)
        name = self.expect(TokenKind.IDENT)
        if name.text in prog.subs:
            raise SemanticError(
                f"duplicate subroutine {name.text!r}", name.location
            )
        self.expect(TokenKind.LPAREN)
        formals: list[str] = []
        if not self.check(TokenKind.RPAREN):
            formals.append(self.expect(TokenKind.IDENT).text)
            while self.match(TokenKind.COMMA):
                formals.append(self.expect(TokenKind.IDENT).text)
        if len(set(formals)) != len(formals):
            raise SemanticError(
                f"duplicate formal parameter in sub {name.text!r}",
                name.location,
            )
        self.expect(TokenKind.RPAREN)
        body = self.block()
        prog.subs[name.text] = SubDef(
            name.text, formals, body, location=tok.location
        )

    def decl(self, prog: Program) -> None:
        tok = self.advance()
        if tok.kind is TokenKind.KW_VAR:
            while True:
                name = self.expect(TokenKind.IDENT)
                if name.text in prog.scalars:
                    raise SemanticError(
                        f"duplicate scalar declaration {name.text!r}", name.location
                    )
                prog.scalars.append(name.text)
                if not self.match(TokenKind.COMMA):
                    break
            self.expect(TokenKind.SEMI)
        elif tok.kind is TokenKind.KW_ARRAY:
            while True:
                name = self.expect(TokenKind.IDENT)
                self.expect(TokenKind.LBRACKET)
                size = self.expect(TokenKind.INT)
                self.expect(TokenKind.RBRACKET)
                if name.text in prog.arrays:
                    raise SemanticError(
                        f"duplicate array declaration {name.text!r}", name.location
                    )
                prog.arrays[name.text] = int(size.text)
                if not self.match(TokenKind.COMMA):
                    break
            self.expect(TokenKind.SEMI)
        else:  # alias
            self.expect(TokenKind.LPAREN)
            names = [self.expect(TokenKind.IDENT).text]
            self.expect(TokenKind.COMMA)
            names.append(self.expect(TokenKind.IDENT).text)
            while self.match(TokenKind.COMMA):
                names.append(self.expect(TokenKind.IDENT).text)
            self.expect(TokenKind.RPAREN)
            self.expect(TokenKind.SEMI)
            prog.alias_groups.append(tuple(names))

    def stmt(self) -> Stmt:
        label = None
        if (
            self.check(TokenKind.IDENT)
            and self.peek(1).kind is TokenKind.COLON
        ):
            label = self.advance().text
            self.advance()  # colon
        s = self.base_stmt()
        s.label = label
        return s

    def base_stmt(self) -> Stmt:
        tok = self.peek()
        if tok.kind is TokenKind.KW_SKIP:
            self.advance()
            self.expect(TokenKind.SEMI)
            return Skip(location=tok.location)
        if tok.kind is TokenKind.KW_GOTO:
            self.advance()
            target = self.expect(TokenKind.IDENT).text
            self.expect(TokenKind.SEMI)
            return Goto(target, location=tok.location)
        if tok.kind is TokenKind.KW_CALL:
            self.advance()
            name = self.expect(TokenKind.IDENT).text
            self.expect(TokenKind.LPAREN)
            args: list[str] = []
            if not self.check(TokenKind.RPAREN):
                args.append(self.expect(TokenKind.IDENT).text)
                while self.match(TokenKind.COMMA):
                    args.append(self.expect(TokenKind.IDENT).text)
            self.expect(TokenKind.RPAREN)
            self.expect(TokenKind.SEMI)
            return Call(name, args, location=tok.location)
        if tok.kind is TokenKind.KW_IF:
            return self.if_stmt()
        if tok.kind is TokenKind.KW_WHILE:
            self.advance()
            cond = self.expr()
            self.expect(TokenKind.KW_DO)
            body = self.block()
            return While(cond, body, location=tok.location)
        if tok.kind is TokenKind.IDENT:
            return self.assign_stmt()
        raise ParseError(
            f"expected a statement, found {tok.kind.value!r}", tok.location
        )

    def if_stmt(self) -> Stmt:
        tok = self.expect(TokenKind.KW_IF)
        cond = self.expr()
        self.expect(TokenKind.KW_THEN)
        if self.check(TokenKind.KW_GOTO):
            self.advance()
            then_target = self.expect(TokenKind.IDENT).text
            else_target = None
            if self.match(TokenKind.KW_ELSE):
                self.expect(TokenKind.KW_GOTO)
                else_target = self.expect(TokenKind.IDENT).text
            self.expect(TokenKind.SEMI)
            return CondGoto(cond, then_target, else_target, location=tok.location)
        then_body = self.block()
        else_body: list[Stmt] = []
        if self.match(TokenKind.KW_ELSE):
            else_body = self.block()
        return If(cond, then_body, else_body, location=tok.location)

    def block(self) -> list[Stmt]:
        self.expect(TokenKind.LBRACE)
        stmts: list[Stmt] = []
        while not self.check(TokenKind.RBRACE):
            if self.check(TokenKind.EOF):
                raise ParseError("unterminated block", self.peek().location)
            stmts.append(self.stmt())
        self.advance()
        return stmts

    def assign_stmt(self) -> Stmt:
        name = self.expect(TokenKind.IDENT)
        target: Var | ArrayRef
        if self.match(TokenKind.LBRACKET):
            index = self.expr()
            self.expect(TokenKind.RBRACKET)
            target = ArrayRef(name.text, index)
        else:
            target = Var(name.text)
        self.expect(TokenKind.ASSIGN)
        value = self.expr()
        self.expect(TokenKind.SEMI)
        return Assign(target, value, location=name.location)

    # -- expressions -------------------------------------------------------

    def expr(self) -> Expr:
        return self.or_expr()

    def or_expr(self) -> Expr:
        left = self.and_expr()
        while self.match(TokenKind.KW_OR):
            left = BinOp("or", left, self.and_expr())
        return left

    def and_expr(self) -> Expr:
        left = self.not_expr()
        while self.match(TokenKind.KW_AND):
            left = BinOp("and", left, self.not_expr())
        return left

    def not_expr(self) -> Expr:
        if self.match(TokenKind.KW_NOT):
            return UnOp("not", self.not_expr())
        return self.cmp_expr()

    def cmp_expr(self) -> Expr:
        left = self.add_expr()
        op = _CMP_OPS.get(self.peek().kind)
        if op is not None:
            self.advance()
            return BinOp(op, left, self.add_expr())
        return left

    def add_expr(self) -> Expr:
        left = self.mul_expr()
        while (op := _ADD_OPS.get(self.peek().kind)) is not None:
            self.advance()
            left = BinOp(op, left, self.mul_expr())
        return left

    def mul_expr(self) -> Expr:
        left = self.unary()
        while (op := _MUL_OPS.get(self.peek().kind)) is not None:
            self.advance()
            left = BinOp(op, left, self.unary())
        return left

    def unary(self) -> Expr:
        if self.match(TokenKind.MINUS):
            return UnOp("-", self.unary())
        return self.atom()

    def atom(self) -> Expr:
        tok = self.peek()
        if tok.kind is TokenKind.INT:
            self.advance()
            return IntLit(int(tok.text))
        if tok.kind is TokenKind.IDENT:
            self.advance()
            if self.match(TokenKind.LBRACKET):
                index = self.expr()
                self.expect(TokenKind.RBRACKET)
                return ArrayRef(tok.text, index)
            return Var(tok.text)
        if tok.kind is TokenKind.LPAREN:
            self.advance()
            e = self.expr()
            self.expect(TokenKind.RPAREN)
            return e
        raise ParseError(
            f"expected an expression, found {tok.kind.value!r}", tok.location
        )


def _collect_labels(stmts: list[Stmt], labels: dict[str, Stmt]) -> None:
    for s in stmts:
        if s.label is not None:
            if s.label in labels:
                raise SemanticError(f"duplicate label {s.label!r}", s.location)
            labels[s.label] = s
        if isinstance(s, If):
            _collect_labels(s.then_body, labels)
            _collect_labels(s.else_body, labels)
        elif isinstance(s, While):
            _collect_labels(s.body, labels)


def _check_targets(stmts: list[Stmt], labels: dict[str, Stmt]) -> None:
    for s in stmts:
        if isinstance(s, Goto):
            if s.target not in labels:
                raise SemanticError(f"goto to undefined label {s.target!r}", s.location)
        elif isinstance(s, CondGoto):
            for t in (s.then_target, s.else_target):
                if t is not None and t not in labels:
                    raise SemanticError(f"goto to undefined label {t!r}", s.location)
        elif isinstance(s, If):
            _check_targets(s.then_body, labels)
            _check_targets(s.else_body, labels)
        elif isinstance(s, While):
            _check_targets(s.body, labels)


def _check_arrays(prog: Program) -> None:
    """Every ArrayRef must name a declared array; declared arrays must not be
    used as scalars."""
    arrays = set(prog.arrays)

    def expr_check(e: Expr, loc) -> None:
        from .ast_nodes import ArrayRef as AR, BinOp as B, UnOp as U, Var as V

        if isinstance(e, AR):
            if e.name not in arrays:
                raise SemanticError(f"use of undeclared array {e.name!r}", loc)
            expr_check(e.index, loc)
        elif isinstance(e, V):
            if e.name in arrays:
                raise SemanticError(
                    f"array {e.name!r} used without a subscript", loc
                )
        elif isinstance(e, B):
            expr_check(e.left, loc)
            expr_check(e.right, loc)
        elif isinstance(e, U):
            expr_check(e.operand, loc)

    def stmt_check(s: Stmt) -> None:
        if isinstance(s, Assign):
            if isinstance(s.target, ArrayRef):
                if s.target.name not in arrays:
                    raise SemanticError(
                        f"use of undeclared array {s.target.name!r}", s.location
                    )
                expr_check(s.target.index, s.location)
            elif s.target.name in arrays:
                raise SemanticError(
                    f"array {s.target.name!r} assigned without a subscript",
                    s.location,
                )
            expr_check(s.expr, s.location)
        elif isinstance(s, CondGoto):
            expr_check(s.pred, s.location)
        elif isinstance(s, If):
            expr_check(s.cond, s.location)
            for t in s.then_body + s.else_body:
                stmt_check(t)
        elif isinstance(s, While):
            expr_check(s.cond, s.location)
            for t in s.body:
                stmt_check(t)

    for s in prog.body:
        stmt_check(s)
    for sub in prog.subs.values():
        for s in sub.body:
            stmt_check(s)


def _check_calls(
    stmts: list[Stmt], prog: Program, current_sub: str | None
) -> None:
    """Calls must name defined subroutines with matching arity; arguments
    must be scalar variables; call graph must be acyclic (checked by a
    simple reachability walk from each sub)."""
    for s in stmts:
        if isinstance(s, Call):
            sub = prog.subs.get(s.name)
            if sub is None:
                raise SemanticError(
                    f"call of undefined subroutine {s.name!r}", s.location
                )
            if len(s.args) != len(sub.formals):
                raise SemanticError(
                    f"call of {s.name!r} with {len(s.args)} arguments "
                    f"(expects {len(sub.formals)})",
                    s.location,
                )
            for a in s.args:
                if a in prog.arrays:
                    raise SemanticError(
                        f"array {a!r} cannot be passed to a subroutine "
                        "(scalar by-reference parameters only)",
                        s.location,
                    )
        elif isinstance(s, If):
            _check_calls(s.then_body, prog, current_sub)
            _check_calls(s.else_body, prog, current_sub)
        elif isinstance(s, While):
            _check_calls(s.body, prog, current_sub)


def _callees(stmts: list[Stmt], out: set[str]) -> None:
    for s in stmts:
        if isinstance(s, Call):
            out.add(s.name)
        elif isinstance(s, If):
            _callees(s.then_body, out)
            _callees(s.else_body, out)
        elif isinstance(s, While):
            _callees(s.body, out)


def _check_no_recursion(prog: Program) -> None:
    direct: dict[str, set[str]] = {}
    for name, sub in prog.subs.items():
        callees: set[str] = set()
        _callees(sub.body, callees)
        direct[name] = callees
    for root in prog.subs:
        seen: set[str] = set()
        stack = list(direct[root])
        while stack:
            c = stack.pop()
            if c == root:
                raise SemanticError(
                    f"recursive subroutine {root!r} (calls are expanded "
                    "by inlining, so recursion is not supported)",
                    prog.subs[root].location,
                )
            if c in seen or c not in direct:
                continue
            seen.add(c)
            stack.extend(direct[c])


def _validate(prog: Program) -> None:
    labels: dict[str, Stmt] = {}
    _collect_labels(prog.body, labels)
    _check_targets(prog.body, labels)
    _check_arrays(prog)
    for sub in prog.subs.values():
        sub_labels: dict[str, Stmt] = {}
        _collect_labels(sub.body, sub_labels)
        _check_targets(sub.body, sub_labels)  # labels are sub-scoped
        _check_calls(sub.body, prog, sub.name)
    _check_calls(prog.body, prog, None)
    _check_no_recursion(prog)


def parse(source: str) -> Program:
    """Parse source text into a validated :class:`Program`.

    Raises :class:`~repro.lang.errors.CompileError` subclasses on bad input.
    """
    from ..obs.trace import tracer

    with tracer.span("compile.lex"):
        tokens = tokenize(source)
    with tracer.span("compile.parse"):
        return _Parser(tokens).program()
