"""Pretty-printer producing parseable source text (round-trip tested)."""

from __future__ import annotations

from .ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    CondGoto,
    Expr,
    Goto,
    If,
    IntLit,
    Program,
    Skip,
    Stmt,
    UnOp,
    Var,
    While,
)

# Precedence levels; higher binds tighter.  Parenthesization is emitted when
# a child has lower-or-equal precedence than its parent in a position where
# that would change parsing.
_PREC = {
    "or": 1,
    "and": 2,
    "not": 3,
    "==": 4,
    "!=": 4,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
    "neg": 7,
}


def pretty_expr(e: Expr, parent_prec: int = 0) -> str:
    """Render an expression, parenthesizing as needed."""
    if isinstance(e, IntLit):
        if e.value < 0:
            # negative literal renders as a unary minus application
            s = f"-{-e.value}"
            return f"({s})" if parent_prec > _PREC["neg"] else s
        return str(e.value)
    if isinstance(e, Var):
        return e.name
    if isinstance(e, ArrayRef):
        return f"{e.name}[{pretty_expr(e.index)}]"
    if isinstance(e, UnOp):
        prec = _PREC["neg"] if e.op == "-" else _PREC["not"]
        inner = pretty_expr(e.operand, prec)
        s = f"-{inner}" if e.op == "-" else f"not {inner}"
        return f"({s})" if parent_prec > prec else s
    if isinstance(e, BinOp):
        prec = _PREC[e.op]
        left = pretty_expr(e.left, prec)
        # comparisons are non-associative, +,-,*,/,% are left-associative:
        # the right child must be strictly tighter.
        right = pretty_expr(e.right, prec + 1)
        s = f"{left} {e.op} {right}"
        return f"({s})" if parent_prec > prec else s
    raise TypeError(f"unknown expression node {type(e).__name__}")


def _stmt_lines(s: Stmt, indent: int, out: list[str]) -> None:
    pad = "  " * indent
    prefix = f"{s.label}: " if s.label else ""
    if isinstance(s, Assign):
        if isinstance(s.target, ArrayRef):
            tgt = f"{s.target.name}[{pretty_expr(s.target.index)}]"
        else:
            tgt = s.target.name
        out.append(f"{pad}{prefix}{tgt} := {pretty_expr(s.expr)};")
    elif isinstance(s, Goto):
        out.append(f"{pad}{prefix}goto {s.target};")
    elif isinstance(s, CondGoto):
        line = f"{pad}{prefix}if {pretty_expr(s.pred)} then goto {s.then_target}"
        if s.else_target is not None:
            line += f" else goto {s.else_target}"
        out.append(line + ";")
    elif isinstance(s, Skip):
        out.append(f"{pad}{prefix}skip;")
    elif isinstance(s, Call):
        out.append(f"{pad}{prefix}call {s.name}({', '.join(s.args)});")
    elif isinstance(s, If):
        out.append(f"{pad}{prefix}if {pretty_expr(s.cond)} then {{")
        for t in s.then_body:
            _stmt_lines(t, indent + 1, out)
        if s.else_body:
            out.append(f"{pad}}} else {{")
            for t in s.else_body:
                _stmt_lines(t, indent + 1, out)
        out.append(f"{pad}}}")
    elif isinstance(s, While):
        out.append(f"{pad}{prefix}while {pretty_expr(s.cond)} do {{")
        for t in s.body:
            _stmt_lines(t, indent + 1, out)
        out.append(f"{pad}}}")
    else:
        raise TypeError(f"unknown statement node {type(s).__name__}")


def pretty(prog: Program) -> str:
    """Render a program as parseable source text."""
    out: list[str] = []
    if prog.scalars:
        out.append("var " + ", ".join(prog.scalars) + ";")
    if prog.arrays:
        decls = ", ".join(f"{n}[{sz}]" for n, sz in prog.arrays.items())
        out.append(f"array {decls};")
    for group in prog.alias_groups:
        out.append("alias (" + ", ".join(group) + ");")
    for sub in prog.subs.values():
        out.append(f"sub {sub.name}({', '.join(sub.formals)}) {{")
        for s in sub.body:
            _stmt_lines(s, 1, out)
        out.append("}")
    for s in prog.body:
        _stmt_lines(s, 0, out)
    return "\n".join(out) + ("\n" if out else "")
