"""Subroutine expansion — making the Section 5 FORTRAN scenario executable.

The paper's aliasing example is a FORTRAN subroutine::

    SUBROUTINE F(X, Y, Z)
    ...
    CALL F(A, B, A)
    CALL F(C, D, D)

All parameters are by reference, and F is compiled *once*, so its body must
be correct under any aliasing any call site can induce: X~Z (from the first
call) and Y~Z (from the second), but not X~Y.  Our language's ``sub``/
``call`` reproduce this:

* the *alias structure over the formals* of each subroutine is the union
  over call sites: formals p, q are aliased iff some call passes the same
  actual for both (computed transitively through nested calls);
* calls are then expanded by inlining — formals renamed to actuals, locals
  and labels freshened per site — and each site inherits the subroutine's
  formal-level alias pairs mapped through its own actuals.  A site that
  passes distinct actuals for a formally-aliased pair still treats them as
  may-aliased: that is exactly the price of compiling the body once, and
  it is what makes the expansion faithful to the paper rather than a mere
  specializing inliner.

Expansion happens before CFG construction (`compile_program` and the
reference interpreters call :func:`expand_subroutines` automatically).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    CondGoto,
    Expr,
    Goto,
    If,
    IntLit,
    Program,
    Skip,
    Stmt,
    SubDef,
    UnOp,
    Var,
    While,
    expr_vars,
)


def _rename_expr(e: Expr, env: dict[str, str]) -> Expr:
    if isinstance(e, IntLit):
        return e
    if isinstance(e, Var):
        return Var(env.get(e.name, e.name))
    if isinstance(e, ArrayRef):
        return ArrayRef(env.get(e.name, e.name), _rename_expr(e.index, env))
    if isinstance(e, BinOp):
        return BinOp(e.op, _rename_expr(e.left, env), _rename_expr(e.right, env))
    if isinstance(e, UnOp):
        return UnOp(e.op, _rename_expr(e.operand, env))
    raise TypeError(type(e))


def _rename_stmts(
    stmts: list[Stmt], env: dict[str, str], labels: dict[str, str]
) -> list[Stmt]:
    out: list[Stmt] = []
    for s in stmts:
        label = labels.get(s.label) if s.label else None
        if isinstance(s, Assign):
            tgt = s.target
            if isinstance(tgt, ArrayRef):
                new_tgt: Var | ArrayRef = ArrayRef(
                    env.get(tgt.name, tgt.name), _rename_expr(tgt.index, env)
                )
            else:
                new_tgt = Var(env.get(tgt.name, tgt.name))
            out.append(
                Assign(new_tgt, _rename_expr(s.expr, env), label=label,
                       location=s.location)
            )
        elif isinstance(s, Goto):
            out.append(Goto(labels[s.target], label=label, location=s.location))
        elif isinstance(s, CondGoto):
            out.append(
                CondGoto(
                    _rename_expr(s.pred, env),
                    labels[s.then_target],
                    labels[s.else_target] if s.else_target else None,
                    label=label,
                    location=s.location,
                )
            )
        elif isinstance(s, Skip):
            out.append(Skip(label=label, location=s.location))
        elif isinstance(s, If):
            out.append(
                If(
                    _rename_expr(s.cond, env),
                    _rename_stmts(s.then_body, env, labels),
                    _rename_stmts(s.else_body, env, labels),
                    label=label,
                    location=s.location,
                )
            )
        elif isinstance(s, While):
            out.append(
                While(
                    _rename_expr(s.cond, env),
                    _rename_stmts(s.body, env, labels),
                    label=label,
                    location=s.location,
                )
            )
        elif isinstance(s, Call):
            out.append(
                Call(
                    s.name,
                    [env.get(a, a) for a in s.args],
                    label=label,
                    location=s.location,
                )
            )
        else:
            raise TypeError(type(s))
    return out


def _collect_labels_in(stmts: list[Stmt], out: set[str]) -> None:
    for s in stmts:
        if s.label:
            out.add(s.label)
        if isinstance(s, If):
            _collect_labels_in(s.then_body, out)
            _collect_labels_in(s.else_body, out)
        elif isinstance(s, While):
            _collect_labels_in(s.body, out)


def _locals_of(sub: SubDef) -> list[str]:
    """Names used by the body that are not formals, in first-appearance
    order (these are per-expansion locals)."""
    seen: dict[str, None] = {}

    def walk(stmts: list[Stmt]) -> None:
        for s in stmts:
            if isinstance(s, Assign):
                if isinstance(s.target, ArrayRef):
                    seen.setdefault(s.target.name, None)
                    for v in expr_vars(s.target.index):
                        seen.setdefault(v, None)
                else:
                    seen.setdefault(s.target.name, None)
                for v in expr_vars(s.expr):
                    seen.setdefault(v, None)
            elif isinstance(s, CondGoto):
                for v in expr_vars(s.pred):
                    seen.setdefault(v, None)
            elif isinstance(s, If):
                for v in expr_vars(s.cond):
                    seen.setdefault(v, None)
                walk(s.then_body)
                walk(s.else_body)
            elif isinstance(s, While):
                for v in expr_vars(s.cond):
                    seen.setdefault(v, None)
                walk(s.body)
            elif isinstance(s, Call):
                for a in s.args:
                    seen.setdefault(a, None)

    walk(sub.body)
    return [v for v in seen if v not in sub.formals]


@dataclass
class ExpansionReport:
    """What expansion did: per subroutine, the formal-level alias pairs
    derived from the union of call sites, and the expansion count."""

    formal_aliases: dict[str, frozenset[tuple[str, str]]] = field(
        default_factory=dict
    )
    expansions: dict[str, int] = field(default_factory=dict)


def _formal_alias_pairs(prog: Program) -> dict[str, set[tuple[str, str]]]:
    """Fixpoint over the (acyclic) call graph: formals p, q of sub f are
    aliased iff some call of f passes identical actuals for them, or a call
    from inside sub g passes two of g's own already-aliased formals."""
    pairs: dict[str, set[tuple[str, str]]] = {n: set() for n in prog.subs}

    def aliased_in_context(a: str, b: str, ctx: str | None) -> bool:
        if a == b:
            return True
        if ctx is None:
            return False
        key = (a, b) if a <= b else (b, a)
        return key in pairs[ctx]

    def visit_calls(stmts: list[Stmt], ctx: str | None, changed: list[bool]):
        for s in stmts:
            if isinstance(s, Call):
                sub = prog.subs[s.name]
                for i, p in enumerate(sub.formals):
                    for j in range(i + 1, len(sub.formals)):
                        q = sub.formals[j]
                        if aliased_in_context(s.args[i], s.args[j], ctx):
                            key = (p, q) if p <= q else (q, p)
                            if key not in pairs[s.name]:
                                pairs[s.name].add(key)
                                changed[0] = True
            elif isinstance(s, If):
                visit_calls(s.then_body, ctx, changed)
                visit_calls(s.else_body, ctx, changed)
            elif isinstance(s, While):
                visit_calls(s.body, ctx, changed)

    while True:
        changed = [False]
        visit_calls(prog.body, None, changed)
        for name, sub in prog.subs.items():
            visit_calls(sub.body, name, changed)
        if not changed[0]:
            return pairs


def expand_subroutines(prog: Program) -> tuple[Program, ExpansionReport]:
    """Expand every call by inlining; returns the flat program (no subs, no
    Call statements) plus the expansion report.  The returned program's
    ``alias_groups`` gain, at every call site, the subroutine's formal
    alias pairs mapped through that site's actuals."""
    if not prog.subs:
        return prog, ExpansionReport()

    formal_pairs = _formal_alias_pairs(prog)
    report = ExpansionReport(
        formal_aliases={
            n: frozenset(p) for n, p in formal_pairs.items()
        },
        expansions={n: 0 for n in prog.subs},
    )

    taken: set[str] = set(prog.variables())
    for sub in prog.subs.values():
        taken.update(sub.formals)
        taken.update(_locals_of(sub))
    label_pool: set[str] = set()
    _collect_labels_in(prog.body, label_pool)
    for sub in prog.subs.values():
        _collect_labels_in(sub.body, label_pool)

    counter = [0]

    def fresh(base: str, pool: set[str]) -> str:
        while True:
            name = f"{base}_{counter[0]}"
            counter[0] += 1
            if name not in pool:
                pool.add(name)
                return name

    alias_groups: list[tuple[str, ...]] = list(prog.alias_groups)

    def expand(stmts: list[Stmt]) -> list[Stmt]:
        out: list[Stmt] = []
        for s in stmts:
            if isinstance(s, Call):
                sub = prog.subs[s.name]
                report.expansions[s.name] += 1
                env = dict(zip(sub.formals, s.args))
                for local in _locals_of(sub):
                    env[local] = fresh(f"_{s.name}_{local}", taken)
                labels_in: set[str] = set()
                _collect_labels_in(sub.body, labels_in)
                lmap = {
                    l: fresh(f"_{s.name}_{l}", label_pool) for l in labels_in
                }
                body = _rename_stmts(sub.body, env, lmap)
                # nested calls inside the inlined body expand too
                body = expand(body)
                if s.label:
                    out.append(Skip(label=s.label, location=s.location))
                out.extend(body)
                # the price of one compilation: this site inherits every
                # formal-level alias pair through its own actuals
                for p, q in sorted(formal_pairs[s.name]):
                    a, b = env[p], env[q]
                    if a != b:
                        alias_groups.append((a, b))
            elif isinstance(s, If):
                out.append(
                    If(
                        s.cond,
                        expand(s.then_body),
                        expand(s.else_body),
                        label=s.label,
                        location=s.location,
                    )
                )
            elif isinstance(s, While):
                out.append(
                    While(s.cond, expand(s.body), label=s.label,
                          location=s.location)
                )
            else:
                out.append(s)
        return out

    flat = Program(
        body=expand(prog.body),
        arrays=dict(prog.arrays),
        scalars=list(prog.scalars),
        alias_groups=_dedupe(alias_groups),
        subs={},
    )
    return flat, report


def _dedupe(groups: list[tuple[str, ...]]) -> list[tuple[str, ...]]:
    seen: dict[tuple[str, ...], None] = {}
    for g in groups:
        seen.setdefault(tuple(sorted(g)), None)
    return list(seen)
