"""Token kinds and the token record produced by the lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import SourceLocation


class TokenKind(enum.Enum):
    """Lexical classes of the source language."""

    IDENT = "identifier"
    INT = "integer literal"

    # keywords
    KW_IF = "if"
    KW_THEN = "then"
    KW_ELSE = "else"
    KW_GOTO = "goto"
    KW_WHILE = "while"
    KW_DO = "do"
    KW_SKIP = "skip"
    KW_ARRAY = "array"
    KW_VAR = "var"
    KW_ALIAS = "alias"
    KW_SUB = "sub"
    KW_CALL = "call"
    KW_AND = "and"
    KW_OR = "or"
    KW_NOT = "not"

    # punctuation / operators
    ASSIGN = ":="
    COLON = ":"
    SEMI = ";"
    COMMA = ","
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    EOF = "end of input"


KEYWORDS: dict[str, TokenKind] = {
    "if": TokenKind.KW_IF,
    "then": TokenKind.KW_THEN,
    "else": TokenKind.KW_ELSE,
    "goto": TokenKind.KW_GOTO,
    "while": TokenKind.KW_WHILE,
    "do": TokenKind.KW_DO,
    "skip": TokenKind.KW_SKIP,
    "array": TokenKind.KW_ARRAY,
    "var": TokenKind.KW_VAR,
    "alias": TokenKind.KW_ALIAS,
    "sub": TokenKind.KW_SUB,
    "call": TokenKind.KW_CALL,
    "and": TokenKind.KW_AND,
    "or": TokenKind.KW_OR,
    "not": TokenKind.KW_NOT,
}


@dataclass(frozen=True, slots=True)
class Token:
    """A lexeme with its kind, literal text, and position."""

    kind: TokenKind
    text: str
    location: SourceLocation

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.location}"
