"""Explicit-token-store dataflow machine simulator (the paper's execution
model, Section 2.2 — "a conventional explicit token store dataflow machine"
like Monsoon).

Key modeling decisions, all taken from the paper:

* **Tagged contexts.**  Each trip around a loop gets a fresh iteration
  context (the paper: "each invocation of a procedure and each loop
  iteration gets an activation context").  Tokens match at a fixed frame
  slot keyed by (operator, context) — two tokens with the same tag arriving
  at an occupied slot is a *token clash*, the failure mode Section 3 uses to
  motivate loop control.
* **Updatable memory.**  Unlike I-structure-only dataflow models, locations
  can be written many times; correct ordering is the program graph's job
  (the access tokens).  Loads/stores are split-phase: the operation issues
  at fire time and its output tokens appear ``memory_latency`` cycles later.
* **I-structures** (Section 6.3): write-once element memory with deferred
  reads, for the write-once array optimization.
* **Idealized or finite parallelism.**  ``num_pes=None`` fires every enabled
  operator each cycle (giving the critical path / parallelism profile);
  a finite count models a machine of that width.
"""

from .context import ACCESS, ROOT, Context, Token
from .config import MachineConfig
from .errors import (
    DeadlockError,
    IStructureError,
    MachineError,
    MemoryFault,
    SimulationLimitError,
    TokenClashError,
)
from .memory import DataMemory
from .istructure import IStructureMemory
from .metrics import Metrics
from .simulator import SimResult, Simulator, simulate_graph
from .packed import PackedGraph, PackedProgram, PackedSimulator, pack_graph
from .vectorized import VectorizedSimulator

__all__ = [
    "ACCESS",
    "Context",
    "DataMemory",
    "DeadlockError",
    "IStructureError",
    "IStructureMemory",
    "MachineConfig",
    "MachineError",
    "MemoryFault",
    "Metrics",
    "PackedGraph",
    "PackedProgram",
    "PackedSimulator",
    "ROOT",
    "SimResult",
    "SimulationLimitError",
    "Simulator",
    "Token",
    "TokenClashError",
    "VectorizedSimulator",
    "pack_graph",
    "simulate_graph",
]
