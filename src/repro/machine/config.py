"""Machine configuration."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineConfig:
    """Knobs for one simulation run.

    * ``num_pes`` — processing elements.  ``None`` = idealized machine: every
      enabled operator fires each cycle, so total cycles = the dataflow
      critical path.  A finite value models a machine of that width.
    * ``alu_latency`` / ``memory_latency`` — cycles from firing to output
      delivery for ordinary operators / split-phase memory operations.
      A node's own ``latency`` field adds on top.
    * ``on_clash`` — ``"raise"`` aborts on a same-tag token clash (a correct
      ETS machine rejects such graphs); ``"record"`` queues the extra token
      and keeps going, collecting clash reports (used to *demonstrate* the
      Section 3 problem without crashing the run).
    * ``seed`` — shuffles the firing order of enabled operators under a
      finite PE count; results of a *valid* graph must not depend on it
      (the determinism property tests exercise this).
    """

    num_pes: int | None = None
    alu_latency: int = 1
    memory_latency: int = 2
    on_clash: str = "raise"
    max_cycles: int = 1_000_000
    max_ops: int = 50_000_000
    seed: int | None = None
    trace: bool = False
    #: k-bounded loops (Monsoon-style throttling): at most k iterations of
    #: any loop activation may be in flight at once.  ``None`` = unbounded.
    #: ``1`` makes loop entries behave like the strict reading of Section 3
    #: ("takes the complete set of access tokens as input"): lockstep
    #: iterations.  Bounds resource usage at the cost of cross-iteration
    #: parallelism — see the ablation bench.
    loop_bound: int | None = None
    #: Multi-PE locality model: with a finite ``num_pes``, instructions are
    #: statically partitioned across PEs and a token crossing PE boundaries
    #: pays ``network_latency`` extra cycles (the interconnection-network
    #: hop the paper's abstract machine hides).  0 = uniform machine.
    network_latency: int = 0
    #: How instructions map to PEs: "round_robin" (node id modulo PE count,
    #: interleaved — poor locality), "block" (contiguous node-id ranges —
    #: good locality for graphs built in program order), or "random"
    #: (seeded by ``seed``).
    partition: str = "round_robin"
    #: Scheduler loop selection.  ``"auto"`` uses the vectorized
    #: graph-as-matrices interpreter whenever it is exact — unlimited PEs
    #: and no k-bounded throttling — and the general per-cycle scheduler
    #: otherwise.  ``"step"`` forces the per-cycle scheduler (the
    #: differential-testing baseline); ``"fast"`` demands the
    #: event-driven fast loop over the object graph; ``"packed"`` demands
    #: the flat-array interpreter over the lowered
    #: :class:`~repro.machine.packed.PackedGraph`; ``"vectorized"``
    #: demands the bucket-queue bulk-front interpreter over the same
    #: lowering (:class:`~repro.machine.vectorized.VectorizedSimulator`).
    #: ``fast``, ``packed``, and ``vectorized`` are rejected when a
    #: finite ``num_pes`` or a ``loop_bound`` makes arbitration stateful.
    sim_mode: str = "auto"

    def __post_init__(self) -> None:
        if self.on_clash not in ("raise", "record"):
            raise ValueError(f"bad on_clash {self.on_clash!r}")
        if self.num_pes is not None and self.num_pes < 1:
            raise ValueError("num_pes must be >= 1 or None")
        if self.alu_latency < 1 or self.memory_latency < 1:
            raise ValueError("latencies must be >= 1")
        if self.loop_bound is not None and self.loop_bound < 1:
            raise ValueError("loop_bound must be >= 1 or None")
        if self.network_latency < 0:
            raise ValueError("network_latency must be >= 0")
        if self.partition not in ("round_robin", "block", "random"):
            raise ValueError(f"bad partition {self.partition!r}")
        if self.network_latency and self.num_pes is None:
            raise ValueError(
                "network_latency needs a finite num_pes (tokens must have "
                "PEs to travel between)"
            )
        if self.sim_mode not in (
            "auto", "fast", "step", "packed", "vectorized"
        ):
            raise ValueError(f"bad sim_mode {self.sim_mode!r}")
        if self.sim_mode in ("fast", "packed", "vectorized") and (
            self.num_pes is not None or self.loop_bound is not None
        ):
            raise ValueError(
                f"sim_mode={self.sim_mode!r} requires num_pes=None and "
                "loop_bound=None (PE arbitration and k-bounding need "
                "per-cycle stepping)"
            )

    def backend(self) -> str:
        """Resolve ``sim_mode`` to the loop that will actually run:
        ``"vectorized"``, ``"packed"``, ``"fast"``, or ``"step"``.
        ``auto`` prefers the vectorized bulk-front interpreter whenever
        it is exact (same preconditions as ``packed``: idealized
        machine, no k-bounding)."""
        if self.sim_mode != "auto":
            return self.sim_mode
        if self.num_pes is None and self.loop_bound is None:
            return "vectorized"
        return "step"
