"""Tags, contexts and tokens."""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple


class _AccessValue:
    """The dummy value carried by access tokens.  The paper: "Notice that
    this token does not carry any value since it represents permission to
    access the stored state"."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "•"


ACCESS = _AccessValue()


@dataclass(frozen=True, slots=True)
class Context:
    """A tag context: which loop activation and iteration a token belongs
    to.  ``parent`` is the context in which the activation was entered
    (None only for the root)."""

    parent: "Context | None"
    activation: int
    iteration: int

    def next_iteration(self) -> "Context":
        return Context(self.parent, self.activation, self.iteration + 1)

    def depth(self) -> int:
        d = 0
        cur = self.parent
        while cur is not None:
            d += 1
            cur = cur.parent
        return d

    def __repr__(self) -> str:
        chain = []
        cur: Context | None = self
        while cur is not None:
            chain.append(f"{cur.activation}.{cur.iteration}")
            cur = cur.parent
        return "<" + "/".join(reversed(chain)) + ">"


ROOT = Context(None, 0, 0)


class Token(NamedTuple):
    """A token in flight: destined for ``(node, port)`` with tag ``ctx``."""

    node: int
    port: int
    value: object  # int or ACCESS
    ctx: Context
