"""Machine failure modes."""

from __future__ import annotations


class MachineError(Exception):
    """Base class for simulator errors."""


class TokenClashError(MachineError):
    """Two tokens with the same tag arrived at the same operator input slot
    — the graph does not specify a meaningful (deterministic) dataflow
    computation.  This is exactly the failure Section 3 exhibits for naive
    Schema 2 on cyclic graphs."""

    def __init__(self, node: int, port: int, ctx, describe: str = ""):
        self.node = node
        self.port = port
        self.ctx = ctx
        super().__init__(
            f"token clash at node {node} ({describe}) port {port} ctx {ctx}"
        )


class DeadlockError(MachineError):
    """The machine quiesced before the END node received all its tokens."""

    def __init__(self, message: str, waiting=None):
        self.waiting = waiting or []
        super().__init__(message)


class SimulationLimitError(MachineError):
    """Cycle or operation budget exceeded (likely a livelock)."""


class MemoryFault(MachineError):
    """Bad address: unknown array or out-of-bounds subscript."""


class IStructureError(MachineError):
    """Multiple writes to one I-structure element (they are single
    assignment) or malformed I-structure access."""
