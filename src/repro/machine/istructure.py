"""I-structure memory (Arvind et al., referenced as [3] in the paper).

Each element is written at most once.  A read of an empty element is
*deferred*: the reader's identity is queued and satisfied when the write
arrives, so reads and writes of a write-once array may proceed concurrently
(Section 6.3's enhancement).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import IStructureError, MemoryFault

_EMPTY = 0
_FULL = 1


@dataclass
class _Element:
    state: int = _EMPTY
    value: int = 0
    deferred: list = field(default_factory=list)


class IStructureMemory:
    """Named write-once arrays with deferred reads."""

    def __init__(self, arrays: dict[str, int] | None = None):
        self._arrays: dict[str, list[_Element]] = {
            name: [_Element() for _ in range(size)]
            for name, size in (arrays or {}).items()
        }

    def declare(self, name: str, size: int) -> None:
        self._arrays[name] = [_Element() for _ in range(size)]

    def has(self, name: str) -> bool:
        return name in self._arrays

    def _element(self, arr: str, index: int) -> _Element:
        try:
            cells = self._arrays[arr]
        except KeyError:
            raise MemoryFault(f"unknown I-structure {arr!r}") from None
        if not 0 <= index < len(cells):
            raise MemoryFault(
                f"index {index} out of bounds for I-structure {arr!r}[{len(cells)}]"
            )
        return cells[index]

    def read(self, arr: str, index: int, waiter) -> tuple[bool, int]:
        """Attempt a read.  Returns ``(True, value)`` if the element is
        full; otherwise registers ``waiter`` and returns ``(False, 0)``."""
        el = self._element(arr, index)
        if el.state == _FULL:
            return True, el.value
        el.deferred.append(waiter)
        return False, 0

    def write(self, arr: str, index: int, value: int) -> list:
        """Write an element (must be empty) and return the deferred waiters
        now satisfied; the caller delivers their responses."""
        el = self._element(arr, index)
        if el.state == _FULL:
            raise IStructureError(
                f"second write to I-structure element {arr}[{index}]"
            )
        el.state = _FULL
        el.value = value
        waiters, el.deferred = el.deferred, []
        return waiters

    def snapshot(self) -> dict[str, list[int]]:
        """Contents with unwritten elements reading as 0 (matching the
        zero-initialized plain-memory convention, for equivalence checks)."""
        return {
            name: [el.value if el.state == _FULL else 0 for el in cells]
            for name, cells in self._arrays.items()
        }

    def release_pending_with_default(self, default: int = 0) -> list:
        """Satisfy every deferred reader with the default element value,
        leaving the elements empty (a write may still arrive later and fill
        them).  Called by the machine at quiescence: with no tokens in
        flight, no write can ever release these readers, and the updatable
        arrays they mirror read 0 when unwritten.  Returns the satisfied
        waiters paired with the value."""
        out = []
        for cells in self._arrays.values():
            for el in cells:
                if el.deferred:
                    waiters, el.deferred = el.deferred, []
                    out.extend((w, default) for w in waiters)
        return out

    def pending_reads(self) -> list[tuple[str, int]]:
        """Elements with deferred readers — nonempty at quiescence means
        deadlock (a read of a never-written element)."""
        out = []
        for name, cells in self._arrays.items():
            for i, el in enumerate(cells):
                if el.deferred:
                    out.append((name, i))
        return out
