"""Updatable data memory: named scalar locations and bounds-checked arrays.

The paper's memory model (Section 2.2): locations can be written more than
once; the result of a read depends on the order of operations, so correct
ordering must be enforced by the program graph, not by this unit.
"""

from __future__ import annotations

from .errors import MemoryFault


class DataMemory:
    """Scalar and array storage.  Unwritten scalars read as 0; arrays are
    zero-initialized at their declared size."""

    def __init__(
        self,
        scalars: dict[str, int] | None = None,
        arrays: dict[str, int] | None = None,
    ):
        self.scalars: dict[str, int] = dict(scalars or {})
        self.arrays: dict[str, list[int]] = {
            name: [0] * size for name, size in (arrays or {}).items()
        }

    @staticmethod
    def for_program(prog, inputs: dict[str, int] | None = None) -> "DataMemory":
        """Memory sized for a parsed :class:`~repro.lang.Program`: every
        program scalar is explicitly initialized (to its ``inputs`` value or
        0), so final snapshots are comparable across execution paths."""
        inputs = inputs or {}
        scalars = {
            v: inputs.get(v, 0)
            for v in prog.variables()
            if v not in prog.arrays
        }
        for name in inputs:
            if name in prog.arrays:
                raise MemoryFault(f"{name!r} is an array, not a scalar input")
            scalars[name] = inputs[name]
        mem = DataMemory(scalars=scalars, arrays=prog.arrays)
        return mem

    # -- scalars ----------------------------------------------------------

    def read(self, var: str) -> int:
        if var in self.arrays:
            raise MemoryFault(f"scalar read of array {var!r}")
        return self.scalars.get(var, 0)

    def write(self, var: str, value: int) -> None:
        if var in self.arrays:
            raise MemoryFault(f"scalar write of array {var!r}")
        self.scalars[var] = value

    # -- arrays -----------------------------------------------------------

    def aread(self, arr: str, index: int) -> int:
        cells = self._cells(arr, index)
        return cells[index]

    def awrite(self, arr: str, index: int, value: int) -> None:
        cells = self._cells(arr, index)
        cells[index] = value

    def _cells(self, arr: str, index: int) -> list[int]:
        try:
            cells = self.arrays[arr]
        except KeyError:
            raise MemoryFault(f"unknown array {arr!r}") from None
        if not 0 <= index < len(cells):
            raise MemoryFault(
                f"index {index} out of bounds for {arr!r}[{len(cells)}]"
            )
        return cells

    # -- inspection --------------------------------------------------------

    def snapshot(self) -> dict[str, int | list[int]]:
        """Final state for equivalence checks: scalar values plus array
        contents (copies)."""
        out: dict[str, int | list[int]] = dict(self.scalars)
        for name, cells in self.arrays.items():
            out[name] = list(cells)
        return out

    def copy(self) -> "DataMemory":
        m = DataMemory()
        m.scalars = dict(self.scalars)
        m.arrays = {k: list(v) for k, v in self.arrays.items()}
        return m
