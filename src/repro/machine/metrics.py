"""Execution metrics: the quantities our parallelism claims are stated in."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Metrics:
    """Counters from one simulation run.

    * ``cycles`` — makespan.  With unlimited PEs this is the dataflow
      critical path of the computation.
    * ``operations`` — total operator firings (S1, the sequential work).
    * ``profile[t]`` — operators fired at cycle t (the parallelism profile).
    * ``avg_parallelism`` — operations / cycles (S1/S∞ with unlimited PEs).
    """

    cycles: int = 0
    operations: int = 0
    by_kind: dict = field(default_factory=dict)
    profile: dict = field(default_factory=dict)
    memory_ops: int = 0
    switch_ops: int = 0
    merge_ops: int = 0
    synch_ops: int = 0
    clashes: int = 0
    # resource high-water marks (explicit-token-store occupancy)
    peak_tokens_in_flight: int = 0
    peak_waiting_frames: int = 0
    peak_enabled: int = 0

    @property
    def avg_parallelism(self) -> float:
        return self.operations / self.cycles if self.cycles else 0.0

    @property
    def peak_parallelism(self) -> int:
        return max(self.profile.values(), default=0)

    @property
    def critical_path(self) -> int:
        """Alias for ``cycles``; meaningful as the critical path only when
        the run used unlimited PEs."""
        return self.cycles

    def profile_list(self) -> list[int]:
        if not self.profile:
            return []
        out = [0] * (max(self.profile) + 1)
        for t, c in self.profile.items():
            out[t] = c
        return out

    def summary(self) -> str:
        return (
            f"{self.operations} ops in {self.cycles} cycles "
            f"(avg parallelism {self.avg_parallelism:.2f}, "
            f"peak {self.peak_parallelism}); "
            f"{self.memory_ops} memory ops, {self.synch_ops} synchs"
        )
