"""Packed-graph execution backend: the flat-array ETS interpreter.

The general :class:`~repro.machine.simulator.Simulator` walks the
object-graph :class:`~repro.dfg.graph.DFGraph` — per-token ``dict``
lookups, ``OpKind`` enum chains, and tuple-of-dataclass ``Context`` tags
whose hashes are recomputed on every frame probe.  This module compiles a
validated graph **once** into a :class:`PackedGraph` — struct-of-arrays
form (integer opcodes, arity and latency tables, CSR fan-out adjacency,
precomputed per-node dispatch records) — and executes it with
:class:`PackedSimulator`, whose inner loop:

* addresses waiting-matching frame slots by a single integer key
  ``ctx_id * n_nodes + node_index`` into one flat dict (the paper's O(1)
  ETS frame-slot discipline, §2.2);
* replaces tuple ``Context`` allocation with *interned integer tag
  contexts* — ``next_iteration`` and activation entry are dict lookups
  over ``(parent_id, activation, iteration)`` triples, so the hot path
  never hashes a context chain;
* inlines delivery, matching, and firing into one dispatch loop with
  pre-resolved operator callables, folding per-firing metric updates into
  per-batch counters.

The loop is a line-for-line mirror of the event-driven fast loop
(:meth:`Simulator._loop_fast`): same heap order, same delivery order, same
firing batches — so memory, ``end_values``, every :class:`Metrics` field
(including resource peaks and the parallelism profile), and the recorded
clash list are bit-identical.  The differential suite in
``tests/engine/test_packed_differential.py`` holds it to that across the
full corpus × schemas × clash-record mode.

:class:`PackedGraph` is also the engine's *shipping* form: it pickles to a
few flat tuples (no AST, no CFG, no node objects), so
:func:`~repro.engine.batch.run_batch` can send a compiled program to a
pool worker for a fraction of the cost of the full
:class:`~repro.translate.pipeline.CompiledProgram` object graph.
:class:`PackedProgram` bundles the packed graph with the memory-image
spec a worker needs to run it.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass, field

from ..dfg.graph import DFGraph
from ..dfg.nodes import MEMORY_KINDS, OpKind, num_inputs, num_outputs
from ..semantics import BINOP_FUNCS, UNOP_FUNCS
from .config import MachineConfig
from .context import ACCESS, ROOT, Context
from .errors import (
    DeadlockError,
    MachineError,
    SimulationLimitError,
    TokenClashError,
)
from .istructure import IStructureMemory
from .memory import DataMemory
from .metrics import Metrics
from .simulator import SimResult

# integer opcodes — dense, so per-opcode counters are plain list cells
OP_START = 0
OP_END = 1
OP_CONST = 2
OP_BINOP = 3
OP_UNOP = 4
OP_LOAD = 5
OP_STORE = 6
OP_ALOAD = 7
OP_ASTORE = 8
OP_ILOAD = 9
OP_ISTORE = 10
OP_SWITCH = 11
OP_MERGE = 12
OP_SYNCH = 13
OP_LOOP_ENTRY = 14
OP_LOOP_EXIT = 15
N_OPCODES = 16

_OPCODE_OF = {
    OpKind.START: OP_START,
    OpKind.END: OP_END,
    OpKind.CONST: OP_CONST,
    OpKind.BINOP: OP_BINOP,
    OpKind.UNOP: OP_UNOP,
    OpKind.LOAD: OP_LOAD,
    OpKind.STORE: OP_STORE,
    OpKind.ALOAD: OP_ALOAD,
    OpKind.ASTORE: OP_ASTORE,
    OpKind.ILOAD: OP_ILOAD,
    OpKind.ISTORE: OP_ISTORE,
    OpKind.SWITCH: OP_SWITCH,
    OpKind.MERGE: OP_MERGE,
    OpKind.SYNCH: OP_SYNCH,
    OpKind.LOOP_ENTRY: OP_LOOP_ENTRY,
    OpKind.LOOP_EXIT: OP_LOOP_EXIT,
}

#: opcode -> OpKind.value, for folding per-opcode counters into by_kind
OPCODE_KIND_VALUE = tuple(
    kind.value
    for kind, _ in sorted(_OPCODE_OF.items(), key=lambda kv: kv[1])
)

_MEM_OPCODES = frozenset(_OPCODE_OF[k] for k in MEMORY_KINDS)

# delivery classes, checked in the reference simulator's priority order
DC_END = 0
DC_NONSTRICT = 1  # MERGE / LOOP_ENTRY / LOOP_EXIT: fire per token
DC_SINGLE = 2  # one input port: fire per token, no frame
DC_STRICT = 3  # match all inputs at a frame slot

#: sentinel for an empty frame slot (None is not usable: ACCESS/ints only,
#: but a distinct object keeps the check a fast identity test)
_EMPTY = object()


@dataclass(frozen=True)
class PackedGraph:
    """A :class:`~repro.dfg.graph.DFGraph` lowered to flat arrays.

    Node indices are ``0..n-1`` in ascending original-node-id order;
    ``node_ids[i]`` maps back for error messages, traces, and clash
    reports (which must match the reference simulator byte for byte).

    Fan-out adjacency is CSR over (node, output port): the arcs of node
    ``i``'s port ``p`` are ``arc_dst/arc_port[port_ptr[arc_index[i] + p] :
    port_ptr[arc_index[i] + p + 1]]``.  ``port_ptr`` has one entry per
    output port plus a final sentinel, so the slice bound of a node's last
    port is the next node's first — one cumulative array, no per-node
    fixup.
    """

    n: int
    node_ids: tuple[int, ...]
    opcodes: tuple[int, ...]
    nin: tuple[int, ...]
    nout: tuple[int, ...]
    dcls: tuple[int, ...]
    extra_lat: tuple[int, ...]
    is_mem: tuple[bool, ...]
    #: per-node payload: CONST value, BINOP/UNOP op string, memory-op
    #: variable name, LOOP_* channel count, or None
    aux: tuple
    describe: tuple[str, ...]
    # CSR fan-out
    arc_index: tuple[int, ...]
    port_ptr: tuple[int, ...]
    arc_dst: tuple[int, ...]
    arc_port: tuple[int, ...]
    # endpoints
    start: int
    end: int
    seeds: tuple[tuple[str, str], ...]
    returns: tuple[str | None, ...]

    def out_arcs(self, idx: int, port: int) -> list[tuple[int, int]]:
        """(dst index, dst port) consumers of one output port."""
        base = self.arc_index[idx] + port
        lo, hi = self.port_ptr[base], self.port_ptr[base + 1]
        return list(zip(self.arc_dst[lo:hi], self.arc_port[lo:hi]))

    def num_arcs(self) -> int:
        return len(self.arc_dst)


def pack_graph(graph: DFGraph) -> PackedGraph:
    """The lowering pass: validate, then flatten to struct-of-arrays."""
    graph.validate(allow_dangling_outputs=True)
    order = sorted(graph.nodes)
    index_of = {nid: i for i, nid in enumerate(order)}

    opcodes, nins, nouts, dcls, extra_lat, is_mem = [], [], [], [], [], []
    aux, describe = [], []
    arc_index, port_ptr, arc_dst, arc_port = [], [], [], []

    for nid in order:
        node = graph.nodes[nid]
        kind = node.kind
        opcodes.append(_OPCODE_OF[kind])
        nin = num_inputs(node)
        nout = num_outputs(node)
        nins.append(nin)
        nouts.append(nout)
        if kind is OpKind.END:
            dcls.append(DC_END)
        elif kind in (OpKind.MERGE, OpKind.LOOP_ENTRY, OpKind.LOOP_EXIT):
            dcls.append(DC_NONSTRICT)
        elif nin == 1:
            dcls.append(DC_SINGLE)
        else:
            dcls.append(DC_STRICT)
        extra_lat.append(node.latency)
        is_mem.append(kind in MEMORY_KINDS)
        if kind is OpKind.CONST:
            aux.append(node.value)
        elif kind in (OpKind.BINOP, OpKind.UNOP):
            aux.append(node.op)
        elif kind in MEMORY_KINDS:
            aux.append(node.var)
        elif kind in (OpKind.LOOP_ENTRY, OpKind.LOOP_EXIT):
            aux.append(node.nchannels)
        else:
            aux.append(None)
        describe.append(node.describe())

        arc_index.append(len(port_ptr))
        outs = graph._out[nid]
        for p in range(nout):
            port_ptr.append(len(arc_dst))
            for arc in outs.get(p, ()):  # preserve arc insertion order
                arc_dst.append(index_of[arc.dst])
                arc_port.append(arc.dst_port)
    port_ptr.append(len(arc_dst))

    start_node = graph.node(graph.start)
    end_node = graph.node(graph.end)
    return PackedGraph(
        n=len(order),
        node_ids=tuple(order),
        opcodes=tuple(opcodes),
        nin=tuple(nins),
        nout=tuple(nouts),
        dcls=tuple(dcls),
        extra_lat=tuple(extra_lat),
        is_mem=tuple(is_mem),
        aux=tuple(aux),
        describe=tuple(describe),
        arc_index=tuple(arc_index),
        port_ptr=tuple(port_ptr),
        arc_dst=tuple(arc_dst),
        arc_port=tuple(arc_port),
        start=index_of[graph.start],
        end=index_of[graph.end],
        seeds=tuple((s.kind, s.label) for s in start_node.seeds),
        returns=tuple(end_node.returns),
    )


@dataclass(frozen=True)
class PackedProgram:
    """The cross-process shipping unit: a packed graph plus the memory
    image spec needed to run it — everything a pool worker needs, and
    nothing else (no AST, CFG, streams, or translation state).

    ``scalar_vars`` are the program's scalars (initialized to the input
    value or 0); ``arrays`` the updatable arrays and ``istruct_arrays``
    the I-structure-promoted ones, both as (name, size) pairs.
    """

    packed: PackedGraph
    scalar_vars: tuple[str, ...]
    arrays: tuple[tuple[str, int], ...] = ()
    istruct_arrays: tuple[tuple[str, int], ...] = ()

    def memories(
        self, inputs: dict[str, int] | None = None
    ) -> tuple[DataMemory, IStructureMemory]:
        """Mirror of :meth:`CompiledProgram.memories` over the flat spec."""
        inputs = inputs or {}
        array_names = {name for name, _ in self.arrays}
        array_names.update(name for name, _ in self.istruct_arrays)
        scalars = {v: inputs.get(v, 0) for v in self.scalar_vars}
        scalars.update(
            {k: v for k, v in inputs.items() if k not in array_names}
        )
        mem = DataMemory(scalars=scalars, arrays=dict(self.arrays))
        ist = IStructureMemory(dict(self.istruct_arrays))
        return mem, ist

    def run(
        self,
        inputs: dict[str, int] | None = None,
        config: MachineConfig | None = None,
    ) -> SimResult:
        mem, ist = self.memories(inputs)
        cfg = config or MachineConfig()
        if cfg.backend() == "vectorized":
            from .vectorized import VectorizedSimulator  # circular-safe

            return VectorizedSimulator(self.packed, mem, ist, cfg).run()
        return PackedSimulator(self.packed, mem, ist, cfg).run()


class PackedSimulator:
    """The flat-array ETS interpreter over one :class:`PackedGraph`.

    Exact observable twin of the reference :class:`Simulator` running the
    event-driven fast loop; requires the same preconditions (``num_pes``
    unset, ``loop_bound`` unset).
    """

    def __init__(
        self,
        packed: PackedGraph,
        memory: DataMemory | None = None,
        istructs: IStructureMemory | None = None,
        config: MachineConfig | None = None,
    ):
        self.pg = packed
        self.memory = memory if memory is not None else DataMemory()
        self.istructs = istructs if istructs is not None else IStructureMemory()
        self.config = config or MachineConfig()
        if self.config.num_pes is not None or self.config.loop_bound is not None:
            raise ValueError(
                "PackedSimulator requires num_pes=None and loop_bound=None "
                "(PE arbitration and k-bounding need the per-cycle stepper)"
            )

        cfg = self.config
        # per-node dispatch records: (opcode, total latency, per-port arc
        # tuple, resolved payload) — one index, one unpack per firing
        rt = []
        pg = packed
        for i in range(pg.n):
            op = pg.opcodes[i]
            lat = (
                cfg.memory_latency if pg.is_mem[i] else cfg.alu_latency
            ) + pg.extra_lat[i]
            outs = tuple(
                tuple(pg.out_arcs(i, p)) for p in range(pg.nout[i])
            )
            a = pg.aux[i]
            if op == OP_BINOP:
                a = BINOP_FUNCS[a]
            elif op == OP_UNOP:
                a = UNOP_FUNCS[a]
            rt.append((op, lat, outs, a))
        self._rt = rt

        # interned integer tag contexts: id 0 is ROOT; parents/activations/
        # iterations are parallel arrays, (parent, act, iter) -> id interns
        self._ctx_parent = [-1]
        self._ctx_act = [0]
        self._ctx_iter = [0]
        self._ctx_intern: dict[tuple[int, int, int], int] = {(-1, 0, 0): 0}

        self._heap: list = []
        self._seq = 0
        self._frames: dict[int, list] = {}
        self._extras: dict[tuple[int, int], deque] = {}
        self._enabled: list = []
        self._activations: dict[int, int] = {}
        self._next_activation = 1
        self._end_arrivals: dict[int, object] = {}
        self._cycle = 0
        self._kind_counts = [0] * N_OPCODES
        self._profile: dict[int, int] = {}
        self._m_ops = 0
        self._m_clashes = 0
        self._peak_tokens = 0
        self._peak_frames = 0
        self._peak_enabled = 0

        self.metrics = Metrics()
        self.clashes: list[tuple[int, int, str]] = []
        self.trace: list[tuple[int, int, str, str]] = []
        self._occupancy: list = []
        self.profile_hook = None

    # -- context plumbing (cold paths) -----------------------------------

    def _ctx_repr(self, c: int) -> str:
        """Exactly :meth:`Context.__repr__` for the interned id."""
        parts = []
        act, it, par = self._ctx_act, self._ctx_iter, self._ctx_parent
        while c >= 0:
            parts.append(f"{act[c]}.{it[c]}")
            c = par[c]
        return "<" + "/".join(reversed(parts)) + ">"

    def _ctx_obj(self, c: int) -> Context:
        """Materialize a real :class:`Context` (error paths only)."""
        if c == 0:
            return ROOT
        parent = self._ctx_parent[c]
        return Context(
            self._ctx_obj(parent) if parent >= 0 else None,
            self._ctx_act[c],
            self._ctx_iter[c],
        )

    # -- error paths ------------------------------------------------------

    def _bad_port(self, idx: int, port: int) -> None:
        pg = self.pg
        raise MachineError(
            f"token delivered to nonexistent input port {port} of node "
            f"{pg.node_ids[idx]} ({pg.describe[idx]}): node has "
            f"{pg.nin[idx]} input port(s)"
        )

    def _bad_value(self, idx: int, v) -> None:
        pg = self.pg
        raise MachineError(
            f"operator {pg.node_ids[idx]} ({pg.describe[idx]}) received a "
            f"non-value token {v!r} on a value port"
        )

    # -- main loop ---------------------------------------------------------

    def run(self) -> SimResult:
        t0 = time.perf_counter()
        pg = self.pg
        heap = self._heap
        # seed the START outputs, mirroring Simulator.run exactly
        seq = 0
        start_outs = self._rt[pg.start][2]
        for port, (skind, slabel) in enumerate(pg.seeds):
            value = ACCESS if skind == "access" else self.memory.read(slabel)
            if port < len(start_outs):
                for d, dp in start_outs[port]:
                    seq += 1
                    heapq.heappush(heap, (0, seq, d, dp, value, 0))
        self._seq = seq

        try:
            self._loop()
        finally:
            self._fold_metrics()

        self.metrics.cycles = self._cycle
        self._check_completion()

        end_values: dict[str, int] = {}
        for port, var in enumerate(pg.returns):
            if var is not None:
                end_values[var] = self._end_arrivals[port]  # type: ignore[assignment]

        snapshot = self.memory.snapshot()
        snapshot.update(self.istructs.snapshot())
        snapshot.update(end_values)
        return SimResult(
            memory=snapshot,
            metrics=self.metrics,
            end_values=end_values,
            clashes=self.clashes,
            trace=self.trace,
            wall_time=time.perf_counter() - t0,
            fast_path=True,
            occupancy=self._occupancy,
            backend="packed",
        )

    def _loop(self) -> None:
        """The inlined deliver/match/fire loop.  Control flow mirrors
        :meth:`Simulator._loop_fast` checkpoint for checkpoint; only the
        data representation differs."""
        cfg = self.config
        pg = self.pg
        N = pg.n
        nin_a = pg.nin
        dcls = pg.dcls
        node_ids = pg.node_ids
        describe = pg.describe
        rt = self._rt
        heap = self._heap
        push = heapq.heappush
        pop = heapq.heappop
        frames = self._frames
        extras = self._extras
        enabled = self._enabled
        cpar = self._ctx_parent
        cact = self._ctx_act
        cit = self._ctx_iter
        cintern = self._ctx_intern
        activations = self._activations
        end_arrivals = self._end_arrivals
        n_returns = len(pg.returns)
        memory = self.memory
        istructs = self.istructs
        clashes_list = self.clashes
        trace_list = self.trace
        occ = self._occupancy
        kc = self._kind_counts
        profile = self._profile
        record_clash = cfg.on_clash == "record"
        trace_on = cfg.trace
        max_cycles = cfg.max_cycles
        max_ops = cfg.max_ops
        mem_lat = cfg.memory_latency
        hook = self.profile_hook
        isinst = isinstance

        seq = self._seq
        cyc = self._cycle
        m_ops = self._m_ops
        peak_tok = self._peak_tokens
        peak_frames = self._peak_frames
        peak_en = self._peak_enabled
        EMPTY = _EMPTY

        try:
            while True:
                if not heap:
                    # quiescent: deferred I-structure reads of elements no
                    # write can ever fill now read the default (0)
                    released = istructs.release_pending_with_default()
                    if not released:
                        break
                    for (widx, wctx), value in released:
                        arcs = rt[widx][2][0]
                        if arcs:
                            at = cyc + mem_lat
                            for d, dp in arcs:
                                seq += 1
                                push(heap, (at, seq, d, dp, value, wctx))
                    continue
                t = heap[0][0]
                if t > cyc:
                    cyc = t
                n_tok = len(heap)
                if n_tok > peak_tok:
                    peak_tok = n_tok
                    occ.append([cyc, n_tok, len(frames), len(enabled)])
                    if hook is not None:
                        hook(cyc, n_tok, len(frames), len(enabled))
                while heap and heap[0][0] <= cyc:
                    _, _, idx, port, value, ctx = pop(heap)
                    cls = dcls[idx]
                    if cls == 3:  # strict: match at the frame slot
                        nin = nin_a[idx]
                        if port >= nin:
                            self._bad_port(idx, port)
                        fk = ctx * N + idx
                        frame = frames.get(fk)
                        if frame is None:
                            frame = frames[fk] = [0] + [EMPTY] * nin
                        if frame[port + 1] is EMPTY:
                            frame[port + 1] = value
                            frame[0] += 1
                        else:
                            self._m_clashes += 1
                            if not record_clash:
                                raise TokenClashError(
                                    node_ids[idx], port, self._ctx_obj(ctx),
                                    describe[idx],
                                )
                            clashes_list.append(
                                (node_ids[idx], port, self._ctx_repr(ctx))
                            )
                            q = extras.get((fk, port))
                            if q is None:
                                q = extras[(fk, port)] = deque()
                            q.append(value)
                        if frame[0] == nin:
                            inputs = frame[1:]
                            if extras:
                                cnt = 0
                                for p in range(nin):
                                    q = extras.get((fk, p))
                                    if q:
                                        frame[p + 1] = q.popleft()
                                        if not q:
                                            del extras[(fk, p)]
                                        cnt += 1
                                    else:
                                        frame[p + 1] = EMPTY
                                frame[0] = cnt
                                if cnt == 0:
                                    del frames[fk]
                            else:
                                del frames[fk]
                            enabled.append((idx, ctx, inputs))
                    elif cls == 2:  # single input: fire per token
                        if port:
                            self._bad_port(idx, port)
                        enabled.append((idx, ctx, (value,)))
                    elif cls == 1:  # nonstrict: merge / loop entry / exit
                        if port >= nin_a[idx]:
                            self._bad_port(idx, port)
                        enabled.append((idx, ctx, port, value))
                    else:  # END
                        if port >= n_returns:
                            self._bad_port(idx, port)
                        if ctx != 0:
                            raise MachineError(
                                "token reached END in non-root context "
                                f"{self._ctx_repr(ctx)}"
                            )
                        if port in end_arrivals:
                            raise TokenClashError(
                                node_ids[idx], port, self._ctx_obj(ctx), "end"
                            )
                        end_arrivals[port] = value
                nf = len(frames)
                if nf > peak_frames:
                    peak_frames = nf
                ne = len(enabled)
                if ne > peak_en:
                    peak_en = ne
                if not enabled:
                    continue
                for act in enabled:
                    idx = act[0]
                    ctx = act[1]
                    op, lat, outs, aux = rt[idx]
                    kc[op] += 1
                    if trace_on:
                        trace_list.append(
                            (cyc, node_ids[idx], describe[idx],
                             self._ctx_repr(ctx))
                        )
                    if op == 11:  # SWITCH
                        ins = act[2]
                        c = ins[1]
                        if c is ACCESS or not isinst(c, int):
                            self._bad_value(idx, c)
                        arcs = outs[0 if c != 0 else 1]
                        if arcs:
                            v = ins[0]
                            at = cyc + lat
                            for d, dp in arcs:
                                seq += 1
                                push(heap, (at, seq, d, dp, v, ctx))
                    elif op == 12:  # MERGE
                        arcs = outs[0]
                        if arcs:
                            v = act[3]
                            at = cyc + lat
                            for d, dp in arcs:
                                seq += 1
                                push(heap, (at, seq, d, dp, v, ctx))
                    elif op == 3:  # BINOP
                        ins = act[2]
                        a = ins[0]
                        b = ins[1]
                        if a is ACCESS or not isinst(a, int):
                            self._bad_value(idx, a)
                        if b is ACCESS or not isinst(b, int):
                            self._bad_value(idx, b)
                        v = aux(a, b)
                        arcs = outs[0]
                        if arcs:
                            at = cyc + lat
                            for d, dp in arcs:
                                seq += 1
                                push(heap, (at, seq, d, dp, v, ctx))
                    elif op == 13:  # SYNCH
                        arcs = outs[0]
                        if arcs:
                            at = cyc + lat
                            for d, dp in arcs:
                                seq += 1
                                push(heap, (at, seq, d, dp, ACCESS, ctx))
                    elif op == 2:  # CONST
                        arcs = outs[0]
                        if arcs:
                            at = cyc + lat
                            for d, dp in arcs:
                                seq += 1
                                push(heap, (at, seq, d, dp, aux, ctx))
                    elif op == 14:  # LOOP_ENTRY
                        port = act[2]
                        value = act[3]
                        if port < aux:  # external entry: join the activation
                            akey = ctx * N + idx
                            base = activations.get(akey)
                            if base is None:
                                na = self._next_activation
                                self._next_activation = na + 1
                                base = len(cpar)
                                cintern[(ctx, na, 0)] = base
                                cpar.append(ctx)
                                cact.append(na)
                                cit.append(0)
                                activations[akey] = base
                            arcs = outs[port]
                            if arcs:
                                at = cyc + lat
                                for d, dp in arcs:
                                    seq += 1
                                    push(heap, (at, seq, d, dp, value, base))
                        else:  # backedge: advance the iteration tag
                            key = (cpar[ctx], cact[ctx], cit[ctx] + 1)
                            nc = cintern.get(key)
                            if nc is None:
                                nc = len(cpar)
                                cintern[key] = nc
                                cpar.append(key[0])
                                cact.append(key[1])
                                cit.append(key[2])
                            arcs = outs[port - aux]
                            if arcs:
                                at = cyc + lat
                                for d, dp in arcs:
                                    seq += 1
                                    push(heap, (at, seq, d, dp, value, nc))
                    elif op == 15:  # LOOP_EXIT
                        port = act[2]
                        value = act[3]
                        parent = cpar[ctx]
                        if parent < 0:
                            raise MachineError(
                                f"LOOP_EXIT {node_ids[idx]} fired in root "
                                "context"
                            )
                        arcs = outs[port]
                        if arcs:
                            at = cyc + lat
                            for d, dp in arcs:
                                seq += 1
                                push(heap, (at, seq, d, dp, value, parent))
                    elif op == 5:  # LOAD
                        v = memory.read(aux)
                        at = cyc + lat
                        for d, dp in outs[0]:
                            seq += 1
                            push(heap, (at, seq, d, dp, v, ctx))
                        for d, dp in outs[1]:
                            seq += 1
                            push(heap, (at, seq, d, dp, ACCESS, ctx))
                    elif op == 6:  # STORE
                        v = act[2][0]
                        if v is ACCESS or not isinst(v, int):
                            self._bad_value(idx, v)
                        memory.write(aux, v)
                        at = cyc + lat
                        for d, dp in outs[0]:
                            seq += 1
                            push(heap, (at, seq, d, dp, ACCESS, ctx))
                    elif op == 7:  # ALOAD
                        i0 = act[2][0]
                        if i0 is ACCESS or not isinst(i0, int):
                            self._bad_value(idx, i0)
                        v = memory.aread(aux, i0)
                        at = cyc + lat
                        for d, dp in outs[0]:
                            seq += 1
                            push(heap, (at, seq, d, dp, v, ctx))
                        for d, dp in outs[1]:
                            seq += 1
                            push(heap, (at, seq, d, dp, ACCESS, ctx))
                    elif op == 8:  # ASTORE
                        ins = act[2]
                        i0 = ins[0]
                        v = ins[1]
                        if i0 is ACCESS or not isinst(i0, int):
                            self._bad_value(idx, i0)
                        if v is ACCESS or not isinst(v, int):
                            self._bad_value(idx, v)
                        memory.awrite(aux, i0, v)
                        at = cyc + lat
                        for d, dp in outs[0]:
                            seq += 1
                            push(heap, (at, seq, d, dp, ACCESS, ctx))
                    elif op == 9:  # ILOAD
                        i0 = act[2][0]
                        if i0 is ACCESS or not isinst(i0, int):
                            self._bad_value(idx, i0)
                        ok, v = istructs.read(aux, i0, (idx, ctx))
                        if ok:
                            at = cyc + lat
                            for d, dp in outs[0]:
                                seq += 1
                                push(heap, (at, seq, d, dp, v, ctx))
                        # else deferred: the matching ISTORE emits for us
                    elif op == 10:  # ISTORE
                        ins = act[2]
                        i0 = ins[0]
                        v = ins[1]
                        if i0 is ACCESS or not isinst(i0, int):
                            self._bad_value(idx, i0)
                        if v is ACCESS or not isinst(v, int):
                            self._bad_value(idx, v)
                        waiters = istructs.write(aux, i0, v)
                        at = cyc + lat
                        for d, dp in outs[0]:
                            seq += 1
                            push(heap, (at, seq, d, dp, ACCESS, ctx))
                        for widx, wctx in waiters:
                            for d, dp in rt[widx][2][0]:
                                seq += 1
                                push(heap, (at, seq, d, dp, v, wctx))
                    elif op == 4:  # UNOP
                        a = act[2][0]
                        if a is ACCESS or not isinst(a, int):
                            self._bad_value(idx, a)
                        v = aux(a)
                        arcs = outs[0]
                        if arcs:
                            at = cyc + lat
                            for d, dp in arcs:
                                seq += 1
                                push(heap, (at, seq, d, dp, v, ctx))
                    else:
                        raise MachineError(
                            f"cannot execute kind {OPCODE_KIND_VALUE[op]}"
                        )
                n_fired = len(enabled)
                m_ops += n_fired
                profile[cyc] = profile.get(cyc, 0) + n_fired
                del enabled[:]
                cyc += 1
                if cyc > max_cycles:
                    raise SimulationLimitError(f"exceeded {max_cycles} cycles")
                if m_ops > max_ops:
                    raise SimulationLimitError(
                        f"exceeded {max_ops} operations"
                    )
        finally:
            self._seq = seq
            self._cycle = cyc
            self._m_ops = m_ops
            self._peak_tokens = peak_tok
            self._peak_frames = peak_frames
            self._peak_enabled = peak_en

    # -- bookkeeping -------------------------------------------------------

    def _fold_metrics(self) -> None:
        """Fold the per-opcode/batch counters into the :class:`Metrics`
        layout the reference simulator fills per firing."""
        m = self.metrics
        kc = self._kind_counts
        # the reference counts operations once per firing, so the total is
        # exactly the sum of the per-opcode counters — exact even when a
        # firing raised mid-batch
        m.operations = sum(kc)
        m.by_kind = {
            OPCODE_KIND_VALUE[op]: kc[op]
            for op in range(N_OPCODES)
            if kc[op]
        }
        m.profile = self._profile
        m.memory_ops = sum(kc[op] for op in _MEM_OPCODES)
        m.switch_ops = kc[OP_SWITCH]
        m.merge_ops = kc[OP_MERGE]
        m.synch_ops = kc[OP_SYNCH]
        m.clashes = self._m_clashes
        m.peak_tokens_in_flight = self._peak_tokens
        m.peak_waiting_frames = self._peak_frames
        m.peak_enabled = self._peak_enabled

    def _check_completion(self) -> None:
        pg = self.pg
        missing = [
            p for p in range(len(pg.returns)) if p not in self._end_arrivals
        ]
        pending_is = self.istructs.pending_reads()
        if not missing and not pending_is:
            return
        waiting = []
        N = pg.n
        for fk, frame in self._frames.items():
            idx = fk % N
            filled = sorted(
                p
                for p in range(pg.nin[idx])
                if frame[p + 1] is not _EMPTY
            )
            if filled:
                waiting.append(
                    f"node {pg.node_ids[idx]} ({pg.describe[idx]}) ctx "
                    f"{self._ctx_repr(fk // N)} has ports {filled} filled"
                )
        for arr, idx in pending_is:
            waiting.append(f"I-structure read of never-written {arr}[{idx}]")
        raise DeadlockError(
            f"machine quiesced with END ports {missing} missing "
            f"({len(waiting)} stuck frames)",
            waiting,
        )
