"""The explicit-token-store simulator core.

Cycle-driven: tokens are delivered from an event heap; operators whose
firing rule is met become *enabled activities*; each cycle up to ``num_pes``
activities fire (all of them on the idealized machine), producing output
tokens that are delivered after the operator's latency.  Matching for
strict operators happens at frame slots keyed by (operator, tag context),
exactly the explicit-token-store discipline: a second token arriving at an
occupied slot is a token clash.
"""

from __future__ import annotations

import heapq
import random
import time
from collections import deque
from dataclasses import dataclass, field

from ..dfg.graph import DFGraph
from ..dfg.nodes import MEMORY_KINDS, DFNode, OpKind, num_inputs
from ..semantics import apply_binop, apply_unop, truthy
from .config import MachineConfig
from .context import ACCESS, ROOT, Context, Token
from .errors import (
    DeadlockError,
    MachineError,
    SimulationLimitError,
    TokenClashError,
)
from .istructure import IStructureMemory
from .memory import DataMemory
from .metrics import Metrics


@dataclass
class SimResult:
    """Outcome of one run: final memory (scalars, arrays, I-structures, and
    any final values carried to END on tokens, merged into one snapshot),
    metrics, recorded clashes, and the optional trace."""

    memory: dict[str, int | list[int]]
    metrics: Metrics
    end_values: dict[str, int] = field(default_factory=dict)
    clashes: list[tuple[int, int, str]] = field(default_factory=list)
    trace: list[tuple[int, int, str, str]] = field(default_factory=list)
    #: host seconds spent inside :meth:`Simulator.run` (wall clock, not
    #: simulated cycles) — the denominator of engine speedup claims
    wall_time: float = 0.0
    #: True when the run used the event-driven fast loop
    fast_path: bool = False
    #: set by the engine layer: the compiled graph came from the cache
    cache_hit: bool = False
    #: token-occupancy high-water samples: one ``[cycle, tokens_in_flight,
    #: waiting_frames, enabled]`` row each time tokens-in-flight reaches a
    #: new peak.  Bounded (peaks are monotone) and loop-dependent: the
    #: sampling points of the fast and step loops may differ even when
    #: their metrics are identical.
    occupancy: list = field(default_factory=list)
    #: which scheduler loop ran: "step", "fast", "packed", or "vectorized"
    backend: str = ""


class _Frames:
    """The waiting-matching frame store: per (node, context), a deque of
    tokens per input port.  Deques only grow beyond one entry in
    clash-record mode."""

    __slots__ = ("slots",)

    def __init__(self):
        self.slots: dict[tuple[int, Context], dict[int, deque]] = {}

    def put(self, node: int, ctx: Context, port: int, value) -> bool:
        """Store a token.  Returns True if the slot was already occupied
        (a clash)."""
        frame = self.slots.setdefault((node, ctx), {})
        q = frame.setdefault(port, deque())
        q.append(value)
        return len(q) > 1

    def try_take(self, node: int, ctx: Context, nports: int):
        """If every port has a token, pop one from each and return the
        input list; else None."""
        frame = self.slots.get((node, ctx))
        if frame is None or len(frame) < nports:
            return None
        if any(not frame.get(p) for p in range(nports)):
            return None
        inputs = [frame[p].popleft() for p in range(nports)]
        if all(not q for q in frame.values()):
            del self.slots[(node, ctx)]
        return inputs

    def pending(self):
        """(node, ctx, filled-ports) for every partially-filled frame."""
        out = []
        for (node, ctx), frame in self.slots.items():
            filled = sorted(p for p, q in frame.items() if q)
            if filled:
                out.append((node, ctx, filled))
        return out


class Simulator:
    """One program graph + memory + config = one runnable machine."""

    def __init__(
        self,
        graph: DFGraph,
        memory: DataMemory | None = None,
        istructs: IStructureMemory | None = None,
        config: MachineConfig | None = None,
        packed=None,
    ):
        graph.validate(allow_dangling_outputs=True)
        self.graph = graph
        #: pre-lowered PackedGraph, if the caller already paid for packing
        #: (the engine caches it next to the graph); otherwise lowered on
        #: demand the first time the packed backend is selected
        self._packed = packed
        self.memory = memory if memory is not None else DataMemory()
        self.istructs = istructs if istructs is not None else IStructureMemory()
        self.config = config or MachineConfig()
        self._rng = (
            random.Random(self.config.seed)
            if self.config.seed is not None
            else None
        )

        self._heap: list[tuple[int, int, Token]] = []
        self._seq = 0
        self._frames = _Frames()
        self._enabled: deque = deque()
        self._activations: dict[tuple[int, Context], Context] = {}
        self._next_activation = 1
        # k-bounded loop throttling state, per (loop entry node, activation)
        self._throttle: dict[tuple[int, int], dict] = {}
        # static instruction partitioning across PEs (locality model)
        self._pe_of: dict[int, int] = {}
        cfgc = self.config
        if cfgc.num_pes is not None and cfgc.network_latency:
            ordered = sorted(graph.nodes)
            p = cfgc.num_pes
            if cfgc.partition == "round_robin":
                self._pe_of = {n: i % p for i, n in enumerate(ordered)}
            elif cfgc.partition == "block":
                chunk = max(1, -(-len(ordered) // p))
                self._pe_of = {
                    n: min(i // chunk, p - 1) for i, n in enumerate(ordered)
                }
            else:  # random
                rng = random.Random(cfgc.seed or 0)
                assignment = [i % p for i in range(len(ordered))]
                rng.shuffle(assignment)
                self._pe_of = dict(zip(ordered, assignment))
        self._end_arrivals: dict[int, object] = {}
        self._cycle = 0
        # hot-path tables: per-node total latency and the graph's fan-out
        # adjacency, resolved once so neither is recomputed per firing
        self._lat: dict[int, int] = {
            nid: (
                cfgc.memory_latency
                if n.kind in MEMORY_KINDS
                else cfgc.alu_latency
            )
            + n.latency
            for nid, n in graph.nodes.items()
        }
        self._out: dict[int, dict[int, list]] = graph._out

        self.metrics = Metrics()
        self.clashes: list[tuple[int, int, str]] = []
        self.trace: list[tuple[int, int, str, str]] = []
        # profiling: occupancy rows sampled at token high-water marks,
        # folded into SimResult; profile_hook (if set) is called with the
        # same (cycle, tokens, frames, enabled) at each sample — the
        # observability layer's window into a live run
        self._occupancy: list = []
        self.profile_hook = None

    def _sample_occupancy(self, tokens: int, frames: int, enabled: int) -> None:
        self._occupancy.append([self._cycle, tokens, frames, enabled])
        if self.profile_hook is not None:
            self.profile_hook(self._cycle, tokens, frames, enabled)

    # -- plumbing -----------------------------------------------------------

    def _schedule(self, token: Token, at: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (at, self._seq, token))

    def _emit(self, node: DFNode, port: int, value, ctx: Context, lat: int) -> None:
        arcs = self._out[node.id].get(port)
        if not arcs:
            return
        at = self._cycle + lat
        pe_of = self._pe_of
        if pe_of:
            net = self.config.network_latency
            src_pe = pe_of.get(node.id)
            for arc in arcs:
                hop = (
                    net
                    if src_pe is not None and pe_of.get(arc.dst) != src_pe
                    else 0
                )
                self._schedule(
                    Token(arc.dst, arc.dst_port, value, ctx), at + hop
                )
        else:
            heap = self._heap
            seq = self._seq
            for arc in arcs:
                seq += 1
                heapq.heappush(
                    heap, (at, seq, Token(arc.dst, arc.dst_port, value, ctx))
                )
            self._seq = seq

    # -- delivery ------------------------------------------------------------

    def _deliver(self, token: Token) -> None:
        node = self.graph.node(token.node)
        kind = node.kind
        nin = num_inputs(node)
        if token.port >= nin:
            # without this a stray token would wedge the frame silently:
            # try_take only probes ports < nin, so the frame never fills
            raise MachineError(
                f"token delivered to nonexistent input port {token.port} of "
                f"node {node.id} ({node.describe()}): node has {nin} input "
                f"port(s)"
            )
        if kind is OpKind.END:
            if token.ctx != ROOT:
                raise MachineError(
                    f"token reached END in non-root context {token.ctx}"
                )
            if token.port in self._end_arrivals:
                raise TokenClashError(node.id, token.port, token.ctx, "end")
            self._end_arrivals[token.port] = token.value
            return
        if kind in (OpKind.MERGE, OpKind.LOOP_ENTRY, OpKind.LOOP_EXIT):
            # nonstrict: fire per token
            self._enabled.append((token.node, token.ctx, ((token.port, token.value),)))
            return
        if nin == 1:
            self._enabled.append((token.node, token.ctx, ((token.port, token.value),)))
            return
        clashed = self._frames.put(token.node, token.ctx, token.port, token.value)
        if clashed:
            self.metrics.clashes += 1
            if self.config.on_clash == "raise":
                raise TokenClashError(
                    node.id, token.port, token.ctx, node.describe()
                )
            self.clashes.append((node.id, token.port, repr(token.ctx)))
        inputs = self._frames.try_take(token.node, token.ctx, nin)
        if inputs is not None:
            self._enabled.append(
                (token.node, token.ctx, tuple(enumerate(inputs)))
            )

    # -- execution -------------------------------------------------------------

    def _fire(self, activity) -> None:
        nid, ctx, inputs = activity
        node = self.graph.node(nid)
        kind = node.kind
        lat = self._lat[nid]
        m = self.metrics
        m.operations += 1
        m.by_kind[kind.value] = m.by_kind.get(kind.value, 0) + 1
        m.profile[self._cycle] = m.profile.get(self._cycle, 0) + 1
        if kind in MEMORY_KINDS:
            m.memory_ops += 1
        elif kind is OpKind.SWITCH:
            m.switch_ops += 1
        elif kind is OpKind.MERGE:
            m.merge_ops += 1
        elif kind is OpKind.SYNCH:
            m.synch_ops += 1
        if self.config.trace:
            self.trace.append((self._cycle, nid, node.describe(), repr(ctx)))

        vals = dict(inputs)

        if kind is OpKind.CONST:
            self._emit(node, 0, node.value, ctx, lat)
        elif kind is OpKind.BINOP:
            self._emit(
                node, 0, apply_binop(node.op, _int(vals[0], node), _int(vals[1], node)), ctx, lat
            )
        elif kind is OpKind.UNOP:
            self._emit(node, 0, apply_unop(node.op, _int(vals[0], node)), ctx, lat)
        elif kind is OpKind.LOAD:
            self._emit(node, 0, self.memory.read(node.var), ctx, lat)
            self._emit(node, 1, ACCESS, ctx, lat)
        elif kind is OpKind.STORE:
            self.memory.write(node.var, _int(vals[0], node))
            self._emit(node, 0, ACCESS, ctx, lat)
        elif kind is OpKind.ALOAD:
            self._emit(node, 0, self.memory.aread(node.var, _int(vals[0], node)), ctx, lat)
            self._emit(node, 1, ACCESS, ctx, lat)
        elif kind is OpKind.ASTORE:
            self.memory.awrite(node.var, _int(vals[0], node), _int(vals[1], node))
            self._emit(node, 0, ACCESS, ctx, lat)
        elif kind is OpKind.ILOAD:
            ok, value = self.istructs.read(
                node.var, _int(vals[0], node), (nid, ctx)
            )
            if ok:
                self._emit(node, 0, value, ctx, lat)
            # else deferred: the matching ISTORE will emit for us
        elif kind is OpKind.ISTORE:
            waiters = self.istructs.write(
                node.var, _int(vals[0], node), _int(vals[1], node)
            )
            self._emit(node, 0, ACCESS, ctx, lat)
            value = _int(vals[1], node)
            for wnid, wctx in waiters:
                wnode = self.graph.node(wnid)
                self._emit(wnode, 0, value, wctx, lat)
        elif kind is OpKind.SWITCH:
            out = 0 if truthy(_int(vals[1], node)) else 1
            self._emit(node, out, vals[0], ctx, lat)
        elif kind is OpKind.MERGE:
            ((_, value),) = inputs
            self._emit(node, 0, value, ctx, lat)
        elif kind is OpKind.SYNCH:
            self._emit(node, 0, ACCESS, ctx, lat)
        elif kind is OpKind.LOOP_ENTRY:
            ((port, value),) = inputs
            n = node.nchannels
            if port < n:
                # external entry: allocate (or join) this loop activation
                key = (nid, ctx)
                base = self._activations.get(key)
                if base is None:
                    base = Context(ctx, self._next_activation, 0)
                    self._next_activation += 1
                    self._activations[key] = base
                self._emit(node, port, value, base, lat)
            else:
                # backedge: advance the iteration tag (throttled when the
                # machine runs k-bounded loops)
                k = self.config.loop_bound
                new_ctx = ctx.next_iteration()
                if k is None:
                    self._emit(node, port - n, value, new_ctx, lat)
                else:
                    self._throttle_backedge(
                        node, port - n, value, new_ctx, lat, k
                    )
        elif kind is OpKind.LOOP_EXIT:
            ((port, value),) = inputs
            if ctx.parent is None:
                raise MachineError(
                    f"LOOP_EXIT {nid} fired in root context"
                )
            self._emit(node, port, value, ctx.parent, lat)
        elif kind is OpKind.START:
            raise MachineError("START must not fire; it is seeded")
        else:
            raise MachineError(f"cannot execute kind {kind}")

    def _throttle_backedge(
        self, node: DFNode, out_port: int, value, new_ctx: Context, lat: int, k: int
    ) -> None:
        """k-bounded loops: a token for iteration t may start circulating
        only when t <= C + k - 1, where C is the number of fully completed
        laps (all channels arrived back at the loop entry).  k=1 is
        lockstep; larger k trades token-store occupancy for
        cross-iteration parallelism."""
        key = (node.id, new_ctx.activation)
        st = self._throttle.setdefault(
            key, {"arrivals": {}, "buffered": [], "completed": 0}
        )
        t = new_ctx.iteration
        st["arrivals"][t] = st["arrivals"].get(t, 0) + 1
        # advance the completed-lap prefix
        n = node.nchannels
        while st["arrivals"].get(st["completed"] + 1, 0) >= n:
            st["completed"] += 1
        limit = st["completed"] + k - 1
        if t <= limit:
            self._emit(node, out_port, value, new_ctx, lat)
        else:
            st["buffered"].append((t, out_port, value, new_ctx))
        if st["buffered"]:
            still = []
            for bt, bp, bv, bc in st["buffered"]:
                if bt <= limit:
                    self._emit(node, bp, bv, bc, lat)
                else:
                    still.append((bt, bp, bv, bc))
            st["buffered"] = still

    # -- main loop ----------------------------------------------------------

    def run(self) -> SimResult:
        if self.config.backend() in ("packed", "vectorized"):
            return self._run_packed()
        t0 = time.perf_counter()
        start = self.graph.node(self.graph.start)
        for port, seed in enumerate(start.seeds):
            value = (
                ACCESS
                if seed.kind == "access"
                else self.memory.read(seed.label)
            )
            for arc in self.graph.consumers(start.id, port):
                self._schedule(Token(arc.dst, arc.dst_port, value, ROOT), 0)

        fast = self._use_fast_path()
        if fast:
            self._loop_fast()
        else:
            self._loop_step()

        self.metrics.cycles = self._cycle
        self._check_completion()

        end = self.graph.node(self.graph.end)
        end_values: dict[str, int] = {}
        for port, var in enumerate(end.returns):
            if var is not None:
                end_values[var] = self._end_arrivals[port]  # type: ignore[assignment]

        snapshot = self.memory.snapshot()
        snapshot.update(self.istructs.snapshot())
        snapshot.update(end_values)
        return SimResult(
            memory=snapshot,
            metrics=self.metrics,
            end_values=end_values,
            clashes=self.clashes,
            trace=self.trace,
            wall_time=time.perf_counter() - t0,
            fast_path=fast,
            occupancy=self._occupancy,
            backend="fast" if fast else "step",
        )

    def _run_packed(self) -> SimResult:
        """Delegate to the flat-array (or vectorized) interpreter, then
        adopt its bookkeeping so this Simulator reads as if it ran the
        loop itself (callers inspect ``.metrics``/``.clashes``/``.trace``
        post-run)."""
        from .packed import PackedSimulator, pack_graph  # circular-safe

        if self._packed is None:
            self._packed = pack_graph(self.graph)
        if self.config.backend() == "vectorized":
            from .vectorized import VectorizedSimulator

            sim_cls = VectorizedSimulator
        else:
            sim_cls = PackedSimulator
        ps = sim_cls(
            self._packed, self.memory, self.istructs, self.config
        )
        ps.profile_hook = self.profile_hook
        result = ps.run()
        self.metrics = ps.metrics
        self.clashes = ps.clashes
        self.trace = ps.trace
        self._occupancy = ps._occupancy
        self._cycle = ps._cycle
        return result

    def _use_fast_path(self) -> bool:
        return self.config.backend() == "fast"

    def _loop_fast(self) -> None:
        """Event-driven scheduler for the idealized machine: no PE
        arbitration state, so every enabled activity fires the cycle it
        becomes enabled and the clock jumps straight between event times.
        Produces cycle counts, operation counts, and final memory identical
        to :meth:`_loop_step` (the differential suite holds it to that)."""
        cfg = self.config
        heap = self._heap
        enabled = self._enabled
        frame_slots = self._frames.slots
        m = self.metrics
        deliver = self._deliver
        fire = self._fire
        pop = heapq.heappop
        max_cycles = cfg.max_cycles
        max_ops = cfg.max_ops
        while True:
            if not heap:
                # quiescent: deferred I-structure reads of elements no
                # write can ever fill now read the default (0), matching
                # zero-initialized updatable arrays
                released = self.istructs.release_pending_with_default()
                if not released:
                    break
                for (wnid, wctx), value in released:
                    self._emit(
                        self.graph.node(wnid), 0, value, wctx,
                        cfg.memory_latency,
                    )
                continue
            t = heap[0][0]
            if t > self._cycle:
                self._cycle = t
            n = len(heap)
            if n > m.peak_tokens_in_flight:
                m.peak_tokens_in_flight = n
                self._sample_occupancy(n, len(frame_slots), len(enabled))
            cyc = self._cycle
            while heap and heap[0][0] <= cyc:
                deliver(pop(heap)[2])
            nf = len(frame_slots)
            if nf > m.peak_waiting_frames:
                m.peak_waiting_frames = nf
            ne = len(enabled)
            if ne > m.peak_enabled:
                m.peak_enabled = ne
            if not enabled:
                continue
            for act in enabled:
                fire(act)
            enabled.clear()
            self._cycle += 1
            if self._cycle > max_cycles:
                raise SimulationLimitError(f"exceeded {max_cycles} cycles")
            if m.operations > max_ops:
                raise SimulationLimitError(f"exceeded {max_ops} operations")

    def _loop_step(self) -> None:
        """The general per-cycle scheduler: steps the clock a cycle at a
        time whenever work is backlogged, which is what finite-PE
        arbitration and k-bounded throttling need.  This is the seed
        implementation's loop, unchanged — it doubles as the baseline the
        fast loop is differentially tested against."""
        cfg = self.config
        heap = self._heap
        enabled = self._enabled
        while True:
            if not enabled:
                if not heap:
                    # quiescent: deferred I-structure reads of elements no
                    # write can ever fill now read the default (0), matching
                    # zero-initialized updatable arrays
                    released = self.istructs.release_pending_with_default()
                    if not released:
                        break
                    for (wnid, wctx), value in released:
                        self._emit(
                            self.graph.node(wnid), 0, value, wctx,
                            self.config.memory_latency,
                        )
                    continue
                self._cycle = max(self._cycle, heap[0][0])
            if len(heap) > self.metrics.peak_tokens_in_flight:
                self.metrics.peak_tokens_in_flight = len(heap)
                self._sample_occupancy(
                    len(heap), len(self._frames.slots), len(enabled)
                )
            while heap and heap[0][0] <= self._cycle:
                _, _, token = heapq.heappop(heap)
                self._deliver(token)
            frames = len(self._frames.slots)
            if frames > self.metrics.peak_waiting_frames:
                self.metrics.peak_waiting_frames = frames
            if len(enabled) > self.metrics.peak_enabled:
                self.metrics.peak_enabled = len(enabled)
            if not enabled:
                continue
            if cfg.num_pes is None:
                batch = list(enabled)
                enabled.clear()
            elif self._pe_of:
                # locality model: each PE issues at most one operation per
                # cycle, from the activities mapped to it
                busy: set[int] = set()
                batch = []
                rest = []
                while enabled:
                    act = enabled.popleft()
                    pe = self._pe_of.get(act[0], 0)
                    if pe in busy:
                        rest.append(act)
                    else:
                        busy.add(pe)
                        batch.append(act)
                enabled.extend(rest)
            else:
                if self._rng is not None and len(enabled) > cfg.num_pes:
                    pool = list(enabled)
                    enabled.clear()
                    self._rng.shuffle(pool)
                    batch = pool[: cfg.num_pes]
                    enabled.extend(pool[cfg.num_pes :])
                else:
                    batch = [
                        enabled.popleft()
                        for _ in range(min(cfg.num_pes, len(enabled)))
                    ]
            for act in batch:
                self._fire(act)
            self._cycle += 1
            if self._cycle > cfg.max_cycles:
                raise SimulationLimitError(
                    f"exceeded {cfg.max_cycles} cycles"
                )
            if self.metrics.operations > cfg.max_ops:
                raise SimulationLimitError(f"exceeded {cfg.max_ops} operations")

    def _check_completion(self) -> None:
        end = self.graph.node(self.graph.end)
        missing = [
            p for p in range(len(end.returns)) if p not in self._end_arrivals
        ]
        pending_is = self.istructs.pending_reads()
        if not missing and not pending_is:
            return
        waiting = []
        for node, ctx, filled in self._frames.pending():
            waiting.append(
                f"node {node} ({self.graph.node(node).describe()}) ctx {ctx} "
                f"has ports {filled} filled"
            )
        for arr, idx in pending_is:
            waiting.append(f"I-structure read of never-written {arr}[{idx}]")
        raise DeadlockError(
            f"machine quiesced with END ports {missing} missing "
            f"({len(waiting)} stuck frames)",
            waiting,
        )


def _int(v, node: DFNode) -> int:
    if v is ACCESS or not isinstance(v, int):
        raise MachineError(
            f"operator {node.id} ({node.describe()}) received a non-value "
            f"token {v!r} on a value port"
        )
    return v


def simulate_graph(
    graph: DFGraph,
    memory: DataMemory | None = None,
    istructs: IStructureMemory | None = None,
    config: MachineConfig | None = None,
) -> SimResult:
    """Convenience one-shot runner."""
    return Simulator(graph, memory, istructs, config).run()
