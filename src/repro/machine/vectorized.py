"""Vectorized graph-as-matrices execution backend.

Bukatin & Matthews (*Dataflow Graphs as Matrices*) observe that a
dataflow graph *is* a sparse matrix: firing a node multiplies its output
value into the adjacency rows of its output ports.  The packed backend
(PR 4) already stores exactly that matrix — the CSR fan-out tables of
:class:`~repro.machine.packed.PackedGraph` — but still interprets it
token-by-token through a global event heap: every arc of every fired
port becomes its own 6-tuple, heappushed and heappopped individually.

This module keeps the packed lowering and replaces the *token transport*
with sparse matrix-row operations over the whole ready front:

* **Bucket queues instead of a heap.**  Latencies are >= 1 (enforced by
  :class:`~repro.machine.config.MachineConfig`), so every token emitted
  during cycle *c* is delivered strictly after *c*.  Pending deliveries
  live in per-cycle buckets (``dict[time, list]``); the scheduler drains
  exactly the due buckets each iteration and the O(log n) per-token
  heap discipline disappears.  Within a bucket, append order equals the
  heap's ``(at, seq)`` pop order, so delivery order is bit-identical.
* **Deferred fan-out expansion.**  Firing a port appends one *emission
  record* ``(plan, value, ctx)`` — the sparse adjacency row times the
  scalar value — instead of one heap entry per arc.  A fan-out of k
  costs one append; the row is walked only at delivery time.
* **Precompiled delivery plans.**  Each CSR port slot is classified
  once: an all-single-consumer row extends the enabled front with one
  C-level list comprehension; a row with a wide all-strict prefix into
  root-context frames (the trailing arcs, typically one END arc, are
  walked in order) takes a bulk arrival path; anything else walks a
  precomputed
  ``(dst, port, class, arity, slot)`` tuple with zero per-token array
  indexing.
* **Flat root-context frame store.**  Root-context waiting-matching
  frames (the overwhelming majority outside loops) live in flat
  parallel arrays — arrival counts, fill flags, and a CSR-offset value
  store — i.e. the dense matrix form of the ETS frame memory.  Loop
  contexts keep the packed dict representation.  A single insertion-
  ordered dict tracks *which* frames are open so occupancy sampling and
  deadlock reports match the reference byte for byte.
* **Optional numpy fast path** (feature-probed, never required): when
  numpy is importable, wide strict rows deliver via fancy-indexed bulk
  arrival counting — the literal matrix-column update.  Values stay
  Python ints end to end (arbitrary precision is part of the
  semantics); numpy only moves the bookkeeping.  Set ``REPRO_NO_NUMPY``
  to force the pure-python path.

The loop mirrors :class:`~repro.machine.packed.PackedSimulator`
checkpoint for checkpoint — same delivery order, same firing order,
same occupancy sample points — so ``memory``, ``end_values``, every
:class:`~repro.machine.metrics.Metrics` field, clash list contents and
order, traces, and error strings are bit-identical.  The differential
suite and the N-way oracle (``repro.validate``) hold it to that.
"""

from __future__ import annotations

import heapq
import os
import time
from collections import deque

from .config import MachineConfig
from .context import ACCESS
from .errors import MachineError, SimulationLimitError, TokenClashError
from .istructure import IStructureMemory
from .memory import DataMemory
from .packed import (
    _EMPTY,
    OPCODE_KIND_VALUE,
    PackedGraph,
    PackedSimulator,
)
from .simulator import SimResult

#: a bulk (numpy) strict-row delivery only pays off past this fan-out;
#: narrower rows take the scalar plan walk
_NP_BULK_MIN = 16

# plan modes (element 0 of every plan tuple; element 1 is the arc count)
_P_SINGLE = 0  #: every arc feeds port 0 of a single-input node
_P_BULK = 1  #: wide all-strict prefix, distinct dsts — numpy bulk eligible
_P_WALK = 2  #: anything else: walk the per-arc tuple
_P_BATCH = 3  #: fused fan-in record: one batch of single-strict-arc fires

#: fire-key bit marking a node whose whole output row is one strict arc
#: into a root frame — a homogeneous front of such nodes collapses to a
#: single _P_BATCH record (the matrix-column scatter)
_FK_BATCH = 1 << 50
_FK_LAT_MASK = (1 << 40) - 1


def _probe_numpy():
    """Feature probe: numpy is optional and never a dependency."""
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - depends on environment
        return None
    return numpy


class VectorizedSimulator(PackedSimulator):
    """The graph-as-matrices interpreter over one :class:`PackedGraph`.

    Exact observable twin of :class:`PackedSimulator` (and therefore of
    the reference loops); requires the same preconditions (``num_pes``
    unset, ``loop_bound`` unset).
    """

    def __init__(
        self,
        packed: PackedGraph,
        memory: DataMemory | None = None,
        istructs: IStructureMemory | None = None,
        config: MachineConfig | None = None,
    ):
        super().__init__(packed, memory, istructs, config)
        pg = packed
        n = pg.n
        nin = pg.nin
        dcls = pg.dcls

        # CSR offsets into the flat root-context frame value store: node
        # i's input port p lives at slot fbase[i] + p
        fbase = [0] * n
        total = 0
        for i in range(n):
            fbase[i] = total
            total += nin[i]
        self._fbase = fbase

        np_mod = _probe_numpy()

        # compile one delivery plan per CSR (node, port) slot
        plans = []
        any_bulk = False
        for i in range(n):
            per_port = []
            for p in range(pg.nout[i]):
                arcs = pg.out_arcs(i, p)
                if not arcs:
                    per_port.append(None)
                    continue
                walk = tuple(
                    (
                        d,
                        dp,
                        dcls[d],
                        nin[d],
                        fbase[d] + dp
                        if (dcls[d] == 3 and dp < nin[d])
                        else -1,
                    )
                    for d, dp in arcs
                )
                if all(c == 2 and dp == 0 for _, dp, c, _, _ in walk):
                    per_port.append(
                        (_P_SINGLE, len(arcs), tuple(d for d, _ in arcs))
                    )
                    continue
                # longest all-strict valid-port prefix: bulk-eligible
                # iff it is wide, hits distinct frames, and no strict
                # arc hides in the suffix (prefix-then-suffix delivery
                # is then exactly row order — see _loop)
                k = 0
                for _, dp2, c2, ni2, _ in walk:
                    if c2 == 3 and dp2 < ni2:
                        k += 1
                    else:
                        break
                if (
                    np_mod is not None
                    and k >= _NP_BULK_MIN
                    and all(c2 != 3 for _, _, c2, _, _ in walk[k:])
                    and len({d for d, *_ in walk[:k]}) == k
                ):
                    any_bulk = True
                    prefix = walk[:k]
                    per_port.append(
                        (
                            _P_BULK,
                            len(arcs),
                            walk,
                            np_mod.array(
                                [d for d, *_ in prefix], dtype=np_mod.intp
                            ),
                            np_mod.array(
                                [s for *_, s in prefix], dtype=np_mod.intp
                            ),
                            np_mod.array(
                                [ni for _, _, _, ni, _ in prefix],
                                dtype=np_mod.int64,
                            ),
                            walk[k:],
                        )
                    )
                else:
                    per_port.append((_P_WALK, len(arcs), walk))
            plans.append(tuple(per_port))
        self._plans = tuple(plans)

        # fan-in fusion: a node whose entire port-0 row is ONE strict
        # arc into a root frame can fire as part of a fused batch — the
        # batch then scatters into the flat frame store as one numpy
        # column update.  Precompute the (slot, dst) column per node.
        n_batch = 0
        sslot = [-1] * n
        sdst = [0] * n
        for i in range(n):
            pp = plans[i]
            p0 = pp[0] if pp else None
            if p0 is not None and p0[0] == _P_WALK and p0[1] == 1:
                d, dp, cls_, nin_d, slot = p0[2][0]
                if cls_ == 3 and slot != -1:
                    sslot[i] = slot
                    sdst[i] = d
                    n_batch += 1
        self._np = np_mod if (any_bulk or n_batch >= 32) else None
        if self._np is not None:
            self._sslot = np_mod.array(sslot, dtype=np_mod.intp)
            self._sdst = np_mod.array(sdst, dtype=np_mod.intp)
            self._nin_np = np_mod.array(list(nin), dtype=np_mod.int64)
        else:
            self._sslot = self._sdst = self._nin_np = None

        # bulk-fire support: fuse opcode and latency into one int per
        # node so the homogeneous-front test is a single equality pass
        # (-1 marks operators that must take the scalar fire path), and
        # flatten the port-0 plan / operator-fn lookups the record
        # comprehensions index on every fired act
        rt = self._rt
        use_np = self._np is not None
        self._fire_key = [
            ((op << 40) | lat)
            | (_FK_BATCH if use_np and sslot[i] != -1 else 0)
            if op in (3, 4, 2, 12, 13) and 0 <= lat < (1 << 40)
            else -1
            for i, (op, lat, _, _) in enumerate(rt)
        ]
        self._plan0 = [pp[0] if pp else None for pp in self._plans]
        self._fn0 = [r[3] for r in rt]

        # root-context frame store: numpy-backed only when a bulk plan
        # can actually use it (scalar indexing of plain lists is faster)
        if self._np is not None:
            self._fvals = np_mod.empty(total, dtype=object)
            self._fvals[:] = _EMPTY
            self._filled = np_mod.zeros(total, dtype=bool)
            self._fcount = np_mod.zeros(n, dtype=np_mod.int64)
        else:
            self._fvals = [_EMPTY] * total
            self._filled = bytearray(total)
            self._fcount = [0] * n

        # per-cycle delivery buckets + a tiny heap of scheduled times
        # (one entry per *distinct* future cycle, not per token)
        self._buckets: dict[int, list] = {}
        self._times: list[int] = []
        self._n_inflight = 0
        # open waiting-matching frames in creation order: root-context
        # keys (< n) map to None (data is in the flat store), loop
        # contexts map to packed-style [count, v0, v1, ...] lists
        self._frames = {}

    # -- main loop ---------------------------------------------------------

    def run(self) -> SimResult:
        t0 = time.perf_counter()
        pg = self.pg
        buckets = self._buckets
        start_plans = self._plans[pg.start]
        n_inflight = 0
        b0 = None
        for port, (skind, slabel) in enumerate(pg.seeds):
            value = ACCESS if skind == "access" else self.memory.read(slabel)
            if port < len(start_plans):
                plan = start_plans[port]
                if plan is not None:
                    if b0 is None:
                        b0 = buckets[0] = []
                        heapq.heappush(self._times, 0)
                    b0.append((plan, value, 0))
                    n_inflight += plan[1]
        self._n_inflight = n_inflight

        try:
            self._loop()
        finally:
            self._fold_metrics()

        self.metrics.cycles = self._cycle
        self._check_completion()

        end_values: dict[str, int] = {}
        for port, var in enumerate(pg.returns):
            if var is not None:
                end_values[var] = self._end_arrivals[port]  # type: ignore[assignment]

        snapshot = self.memory.snapshot()
        snapshot.update(self.istructs.snapshot())
        snapshot.update(end_values)
        return SimResult(
            memory=snapshot,
            metrics=self.metrics,
            end_values=end_values,
            clashes=self.clashes,
            trace=self.trace,
            wall_time=time.perf_counter() - t0,
            fast_path=True,
            occupancy=self._occupancy,
            backend="vectorized",
        )

    def _loop(self) -> None:
        """Bucket-drained deliver/match/fire loop.  Control flow mirrors
        :meth:`PackedSimulator._loop` checkpoint for checkpoint; only
        the token transport and the frame store differ."""
        cfg = self.config
        pg = self.pg
        N = pg.n
        nin_a = pg.nin
        node_ids = pg.node_ids
        describe = pg.describe
        rt = self._rt
        plans_all = self._plans
        fkey = self._fire_key
        plan0 = self._plan0
        fn0 = self._fn0
        sslot = self._sslot
        sdst = self._sdst
        nin_np = self._nin_np
        buckets = self._buckets
        times = self._times
        tpush = heapq.heappush
        tpop = heapq.heappop
        frames = self._frames
        fbase = self._fbase
        fvals = self._fvals
        filled = self._filled
        fcount = self._fcount
        extras = self._extras
        enabled = self._enabled
        cpar = self._ctx_parent
        cact = self._ctx_act
        cit = self._ctx_iter
        cintern = self._ctx_intern
        activations = self._activations
        end_arrivals = self._end_arrivals
        n_returns = len(pg.returns)
        memory = self.memory
        istructs = self.istructs
        clashes_list = self.clashes
        trace_list = self.trace
        occ = self._occupancy
        kc = self._kind_counts
        profile = self._profile
        record_clash = cfg.on_clash == "record"
        trace_on = cfg.trace
        max_cycles = cfg.max_cycles
        max_ops = cfg.max_ops
        mem_lat = cfg.memory_latency
        hook = self.profile_hook
        isinst = isinstance
        np_mod = self._np

        cyc = self._cycle
        m_ops = self._m_ops
        n_inflight = self._n_inflight
        peak_tok = self._peak_tokens
        peak_frames = self._peak_frames
        peak_en = self._peak_enabled
        EMPTY = _EMPTY

        try:
            while True:
                if not times:
                    # quiescent: deferred I-structure reads of elements no
                    # write can ever fill now read the default (0)
                    released = istructs.release_pending_with_default()
                    if not released:
                        break
                    at = cyc + mem_lat
                    for (widx, wctx), value in released:
                        plan = plans_all[widx][0]
                        if plan is not None:
                            b = buckets.get(at)
                            if b is None:
                                b = buckets[at] = []
                                tpush(times, at)
                            b.append((plan, value, wctx))
                            n_inflight += plan[1]
                    continue
                t = times[0]
                if t > cyc:
                    cyc = t
                if n_inflight > peak_tok:
                    peak_tok = n_inflight
                    occ.append([cyc, n_inflight, len(frames), len(enabled)])
                    if hook is not None:
                        hook(cyc, n_inflight, len(frames), len(enabled))
                while times and times[0] <= cyc:
                    lst = buckets.pop(tpop(times))
                    j = 0
                    nrec = len(lst)
                    while j < nrec:
                        rec = lst[j]
                        j += 1
                        plan = rec[0]
                        value = rec[1]
                        ctx = rec[2]
                        mode = plan[0]
                        n_inflight -= plan[1]
                        if mode == 0:
                            # whole row feeds single-input consumers:
                            # extend the enabled front in one shot
                            vt = (value,)
                            enabled.extend(
                                [(d, ctx, vt) for d in plan[2]]
                            )
                            continue
                        if mode == 3:
                            # fused fan-in batch: rec[1] is the value
                            # list, rec[2] the numpy node-index vector;
                            # scatter the whole column into the flat
                            # frame store in a handful of array ops
                            idxs = ctx
                            slots = sslot[idxs]
                            ok = not extras and not filled[slots].any()
                            if ok:
                                dsts = sdst[idxs]
                                u, first = np_mod.unique(
                                    dsts, return_index=True
                                )
                                old = fcount[u]
                                new = old + np_mod.bincount(dsts)[u]
                                nin_u = nin_np[u]
                                ss = np_mod.sort(slots)
                                if (new > nin_u).any() or bool(
                                    (ss[1:] == ss[:-1]).any()
                                ):
                                    ok = False
                            if not ok:
                                # anything unusual (pending extras, a
                                # clash, a refilling or double-firing
                                # frame): expand in place into plain
                                # per-member records — the generic walk
                                # below then replays the exact scalar
                                # clash/extras semantics in order
                                n_inflight += plan[1]
                                lst[j:j] = [
                                    (plan0[i], v, 0)
                                    for i, v in zip(
                                        idxs.tolist(), value
                                    )
                                ]
                                nrec = len(lst)
                                continue
                            filled[slots] = True
                            fvals[slots] = value
                            fcount[u] = new
                            comp = new == nin_u
                            reg = (old == 0) & ~comp
                            if reg.any():
                                ru = u[reg]
                                for pos in np_mod.argsort(
                                    first[reg], kind="stable"
                                ):
                                    frames[int(ru[pos])] = None
                            if comp.any():
                                cu = u[comp]
                                cold = old[comp]
                                if cu.size > 1:
                                    # completion order = order of each
                                    # frame's last (filling) arrival
                                    _, rfirst = np_mod.unique(
                                        dsts[::-1], return_index=True
                                    )
                                    lastpos = plan[1] - 1 - rfirst
                                    o_ = np_mod.argsort(
                                        lastpos[comp], kind="stable"
                                    )
                                    cu = cu[o_]
                                    cold = cold[o_]
                                for d, o in zip(
                                    cu.tolist(), cold.tolist()
                                ):
                                    base = fbase[d]
                                    hi = base + nin_a[d]
                                    inputs = tuple(fvals[base:hi])
                                    filled[base:hi] = False
                                    fcount[d] = 0
                                    if o:
                                        del frames[d]
                                    enabled.append((d, 0, inputs))
                            continue
                        walk = plan[2]
                        if mode == 1 and ctx == 0 and not extras:
                            # wide strict prefix into root frames: bulk
                            # arrival counting (the matrix-column
                            # update), then walk the non-strict suffix
                            # — together exactly row-order delivery
                            slots = plan[4]
                            if not filled[slots].any():
                                dsts = plan[3]
                                filled[slots] = True
                                fvals[slots] = value
                                cnt = fcount[dsts] + 1
                                fcount[dsts] = cnt
                                for pos in np_mod.nonzero(cnt == 1)[0]:
                                    frames[int(dsts[pos])] = None
                                for pos in np_mod.nonzero(
                                    cnt == plan[5]
                                )[0]:
                                    d = int(dsts[pos])
                                    base = fbase[d]
                                    hi = base + nin_a[d]
                                    inputs = tuple(fvals[base:hi])
                                    filled[base:hi] = False
                                    fcount[d] = 0
                                    del frames[d]
                                    enabled.append((d, 0, inputs))
                                walk = plan[6]
                                if not walk:
                                    continue
                            # else a pre-filled slot means a clash:
                            # replay the whole row through the exact
                            # scalar path
                        for d, dp, cls, nin, slot in walk:
                            if cls == 3:  # strict: match at the frame
                                if dp >= nin:
                                    self._bad_port(d, dp)
                                if ctx == 0:
                                    if not filled[slot]:
                                        fvals[slot] = value
                                        filled[slot] = 1
                                        c = fcount[d] + 1
                                        fcount[d] = c
                                        if c == 1:
                                            frames[d] = None
                                    else:
                                        self._m_clashes += 1
                                        if not record_clash:
                                            raise TokenClashError(
                                                node_ids[d], dp,
                                                self._ctx_obj(0),
                                                describe[d],
                                            )
                                        clashes_list.append(
                                            (node_ids[d], dp,
                                             self._ctx_repr(0))
                                        )
                                        q = extras.get((d, dp))
                                        if q is None:
                                            q = extras[(d, dp)] = deque()
                                        q.append(value)
                                    if fcount[d] == nin:
                                        base = fbase[d]
                                        hi = base + nin
                                        inputs = tuple(fvals[base:hi])
                                        if extras:
                                            cnt = 0
                                            for p in range(nin):
                                                q = extras.get((d, p))
                                                if q:
                                                    fvals[base + p] = (
                                                        q.popleft()
                                                    )
                                                    if not q:
                                                        del extras[(d, p)]
                                                    filled[base + p] = 1
                                                    cnt += 1
                                                else:
                                                    filled[base + p] = 0
                                            fcount[d] = cnt
                                            if cnt == 0:
                                                del frames[d]
                                        else:
                                            for s in range(base, hi):
                                                filled[s] = 0
                                            fcount[d] = 0
                                            del frames[d]
                                        enabled.append((d, 0, inputs))
                                else:
                                    fk = ctx * N + d
                                    frame = frames.get(fk)
                                    if frame is None:
                                        frame = frames[fk] = (
                                            [0] + [EMPTY] * nin
                                        )
                                    if frame[dp + 1] is EMPTY:
                                        frame[dp + 1] = value
                                        frame[0] += 1
                                    else:
                                        self._m_clashes += 1
                                        if not record_clash:
                                            raise TokenClashError(
                                                node_ids[d], dp,
                                                self._ctx_obj(ctx),
                                                describe[d],
                                            )
                                        clashes_list.append(
                                            (node_ids[d], dp,
                                             self._ctx_repr(ctx))
                                        )
                                        q = extras.get((fk, dp))
                                        if q is None:
                                            q = extras[(fk, dp)] = deque()
                                        q.append(value)
                                    if frame[0] == nin:
                                        inputs = frame[1:]
                                        if extras:
                                            cnt = 0
                                            for p in range(nin):
                                                q = extras.get((fk, p))
                                                if q:
                                                    frame[p + 1] = (
                                                        q.popleft()
                                                    )
                                                    if not q:
                                                        del extras[(fk, p)]
                                                    cnt += 1
                                                else:
                                                    frame[p + 1] = EMPTY
                                            frame[0] = cnt
                                            if cnt == 0:
                                                del frames[fk]
                                        else:
                                            del frames[fk]
                                        enabled.append((d, ctx, inputs))
                            elif cls == 2:  # single input
                                if dp:
                                    self._bad_port(d, dp)
                                enabled.append((d, ctx, (value,)))
                            elif cls == 1:  # nonstrict
                                if dp >= nin:
                                    self._bad_port(d, dp)
                                enabled.append((d, ctx, dp, value))
                            else:  # END
                                if dp >= n_returns:
                                    self._bad_port(d, dp)
                                if ctx != 0:
                                    raise MachineError(
                                        "token reached END in non-root "
                                        f"context {self._ctx_repr(ctx)}"
                                    )
                                if dp in end_arrivals:
                                    raise TokenClashError(
                                        node_ids[d], dp,
                                        self._ctx_obj(ctx), "end",
                                    )
                                end_arrivals[dp] = value
                nf = len(frames)
                if nf > peak_frames:
                    peak_frames = nf
                ne = len(enabled)
                if ne > peak_en:
                    peak_en = ne
                if not enabled:
                    continue
                # -- bulk fire: a homogeneous wide front (one opcode,
                # one latency) collapses to a single C-level record
                # comprehension into one bucket.  Only pure operators
                # qualify (no memory side effects, no context forks);
                # the comprehension evaluates in enabled order, so the
                # bucket receives records in exactly the order the
                # scalar loop (and the packed heap) would produce.
                if ne >= 32 and not trace_on:
                    k0 = fkey[enabled[0][0]]
                    recs = None
                    if k0 >= _FK_BATCH:
                        # every member has one strict root-frame arc:
                        # emit ONE fused record for the whole front
                        # (root contexts only — the flat store is the
                        # batch target)
                        op0 = (k0 >> 40) & 0x3FF
                        vals = None
                        if op0 == 3:  # BINOP
                            if all(
                                fkey[a[0]] == k0
                                and not a[1]
                                and isinst(a[2][0], int)
                                and isinst(a[2][1], int)
                                for a in enabled
                            ):
                                vals = [
                                    fn0[a[0]](a[2][0], a[2][1])
                                    for a in enabled
                                ]
                        elif op0 == 4:  # UNOP
                            if all(
                                fkey[a[0]] == k0
                                and not a[1]
                                and isinst(a[2][0], int)
                                for a in enabled
                            ):
                                vals = [fn0[a[0]](a[2][0]) for a in enabled]
                        elif all(
                            fkey[a[0]] == k0 and not a[1] for a in enabled
                        ):
                            if op0 == 2:  # CONST: aux is the value
                                vals = [fn0[a[0]] for a in enabled]
                            elif op0 == 12:  # MERGE forwards its token
                                vals = [a[3] for a in enabled]
                            else:  # SYNCH emits one access token
                                vals = [ACCESS] * ne
                        if vals is not None:
                            recs = [
                                (
                                    (3, ne),
                                    vals,
                                    np_mod.fromiter(
                                        (a[0] for a in enabled),
                                        np_mod.intp,
                                        ne,
                                    ),
                                )
                            ]
                    elif k0 >= 0:
                        op0 = k0 >> 40
                        if op0 == 3:  # BINOP
                            if all(
                                fkey[a[0]] == k0
                                and isinst(a[2][0], int)
                                and isinst(a[2][1], int)
                                for a in enabled
                            ):
                                recs = [
                                    (
                                        plan0[a[0]],
                                        fn0[a[0]](a[2][0], a[2][1]),
                                        a[1],
                                    )
                                    for a in enabled
                                ]
                        elif op0 == 4:  # UNOP
                            if all(
                                fkey[a[0]] == k0 and isinst(a[2][0], int)
                                for a in enabled
                            ):
                                recs = [
                                    (plan0[a[0]], fn0[a[0]](a[2][0]), a[1])
                                    for a in enabled
                                ]
                        elif all(fkey[a[0]] == k0 for a in enabled):
                            if op0 == 2:  # CONST: aux is the value
                                recs = [
                                    (plan0[a[0]], fn0[a[0]], a[1])
                                    for a in enabled
                                ]
                            elif op0 == 12:  # MERGE forwards its token
                                recs = [
                                    (plan0[a[0]], a[3], a[1])
                                    for a in enabled
                                ]
                            else:  # SYNCH emits one access token
                                recs = [
                                    (plan0[a[0]], ACCESS, a[1])
                                    for a in enabled
                                ]
                    if recs is not None:
                        lat0 = k0 & _FK_LAT_MASK
                        kc[op0] += ne
                        live = [r for r in recs if r[0] is not None]
                        if live:
                            at = cyc + lat0
                            b = buckets.get(at)
                            if b is None:
                                b = buckets[at] = []
                                tpush(times, at)
                            b.extend(live)
                            n_inflight += sum(r[0][1] for r in live)
                        m_ops += ne
                        profile[cyc] = profile.get(cyc, 0) + ne
                        del enabled[:]
                        cyc += 1
                        if cyc > max_cycles:
                            raise SimulationLimitError(
                                f"exceeded {max_cycles} cycles"
                            )
                        if m_ops > max_ops:
                            raise SimulationLimitError(
                                f"exceeded {max_ops} operations"
                            )
                        continue
                for act in enabled:
                    idx = act[0]
                    ctx = act[1]
                    op, lat, _, aux = rt[idx]
                    plans = plans_all[idx]
                    kc[op] += 1
                    if trace_on:
                        trace_list.append(
                            (cyc, node_ids[idx], describe[idx],
                             self._ctx_repr(ctx))
                        )
                    if op == 11:  # SWITCH
                        ins = act[2]
                        c = ins[1]
                        if c is ACCESS or not isinst(c, int):
                            self._bad_value(idx, c)
                        plan = plans[0 if c != 0 else 1]
                        if plan is not None:
                            at = cyc + lat
                            b = buckets.get(at)
                            if b is None:
                                b = buckets[at] = []
                                tpush(times, at)
                            b.append((plan, ins[0], ctx))
                            n_inflight += plan[1]
                    elif op == 12:  # MERGE
                        plan = plans[0]
                        if plan is not None:
                            at = cyc + lat
                            b = buckets.get(at)
                            if b is None:
                                b = buckets[at] = []
                                tpush(times, at)
                            b.append((plan, act[3], ctx))
                            n_inflight += plan[1]
                    elif op == 3:  # BINOP
                        ins = act[2]
                        a = ins[0]
                        b_ = ins[1]
                        if a is ACCESS or not isinst(a, int):
                            self._bad_value(idx, a)
                        if b_ is ACCESS or not isinst(b_, int):
                            self._bad_value(idx, b_)
                        v = aux(a, b_)
                        plan = plans[0]
                        if plan is not None:
                            at = cyc + lat
                            b = buckets.get(at)
                            if b is None:
                                b = buckets[at] = []
                                tpush(times, at)
                            b.append((plan, v, ctx))
                            n_inflight += plan[1]
                    elif op == 13:  # SYNCH
                        plan = plans[0]
                        if plan is not None:
                            at = cyc + lat
                            b = buckets.get(at)
                            if b is None:
                                b = buckets[at] = []
                                tpush(times, at)
                            b.append((plan, ACCESS, ctx))
                            n_inflight += plan[1]
                    elif op == 2:  # CONST
                        plan = plans[0]
                        if plan is not None:
                            at = cyc + lat
                            b = buckets.get(at)
                            if b is None:
                                b = buckets[at] = []
                                tpush(times, at)
                            b.append((plan, aux, ctx))
                            n_inflight += plan[1]
                    elif op == 14:  # LOOP_ENTRY
                        port = act[2]
                        value = act[3]
                        if port < aux:  # external entry: join activation
                            akey = ctx * N + idx
                            base = activations.get(akey)
                            if base is None:
                                na = self._next_activation
                                self._next_activation = na + 1
                                base = len(cpar)
                                cintern[(ctx, na, 0)] = base
                                cpar.append(ctx)
                                cact.append(na)
                                cit.append(0)
                                activations[akey] = base
                            plan = plans[port]
                            if plan is not None:
                                at = cyc + lat
                                b = buckets.get(at)
                                if b is None:
                                    b = buckets[at] = []
                                    tpush(times, at)
                                b.append((plan, value, base))
                                n_inflight += plan[1]
                        else:  # backedge: advance the iteration tag
                            key = (cpar[ctx], cact[ctx], cit[ctx] + 1)
                            nc = cintern.get(key)
                            if nc is None:
                                nc = len(cpar)
                                cintern[key] = nc
                                cpar.append(key[0])
                                cact.append(key[1])
                                cit.append(key[2])
                            plan = plans[port - aux]
                            if plan is not None:
                                at = cyc + lat
                                b = buckets.get(at)
                                if b is None:
                                    b = buckets[at] = []
                                    tpush(times, at)
                                b.append((plan, value, nc))
                                n_inflight += plan[1]
                    elif op == 15:  # LOOP_EXIT
                        port = act[2]
                        value = act[3]
                        parent = cpar[ctx]
                        if parent < 0:
                            raise MachineError(
                                f"LOOP_EXIT {node_ids[idx]} fired in root "
                                "context"
                            )
                        plan = plans[port]
                        if plan is not None:
                            at = cyc + lat
                            b = buckets.get(at)
                            if b is None:
                                b = buckets[at] = []
                                tpush(times, at)
                            b.append((plan, value, parent))
                            n_inflight += plan[1]
                    elif op == 5:  # LOAD
                        v = memory.read(aux)
                        at = cyc + lat
                        b = buckets.get(at)
                        if b is None:
                            b = buckets[at] = []
                            tpush(times, at)
                        plan = plans[0]
                        if plan is not None:
                            b.append((plan, v, ctx))
                            n_inflight += plan[1]
                        plan = plans[1]
                        if plan is not None:
                            b.append((plan, ACCESS, ctx))
                            n_inflight += plan[1]
                    elif op == 6:  # STORE
                        v = act[2][0]
                        if v is ACCESS or not isinst(v, int):
                            self._bad_value(idx, v)
                        memory.write(aux, v)
                        plan = plans[0]
                        if plan is not None:
                            at = cyc + lat
                            b = buckets.get(at)
                            if b is None:
                                b = buckets[at] = []
                                tpush(times, at)
                            b.append((plan, ACCESS, ctx))
                            n_inflight += plan[1]
                    elif op == 7:  # ALOAD
                        i0 = act[2][0]
                        if i0 is ACCESS or not isinst(i0, int):
                            self._bad_value(idx, i0)
                        v = memory.aread(aux, i0)
                        at = cyc + lat
                        b = buckets.get(at)
                        if b is None:
                            b = buckets[at] = []
                            tpush(times, at)
                        plan = plans[0]
                        if plan is not None:
                            b.append((plan, v, ctx))
                            n_inflight += plan[1]
                        plan = plans[1]
                        if plan is not None:
                            b.append((plan, ACCESS, ctx))
                            n_inflight += plan[1]
                    elif op == 8:  # ASTORE
                        ins = act[2]
                        i0 = ins[0]
                        v = ins[1]
                        if i0 is ACCESS or not isinst(i0, int):
                            self._bad_value(idx, i0)
                        if v is ACCESS or not isinst(v, int):
                            self._bad_value(idx, v)
                        memory.awrite(aux, i0, v)
                        plan = plans[0]
                        if plan is not None:
                            at = cyc + lat
                            b = buckets.get(at)
                            if b is None:
                                b = buckets[at] = []
                                tpush(times, at)
                            b.append((plan, ACCESS, ctx))
                            n_inflight += plan[1]
                    elif op == 9:  # ILOAD
                        i0 = act[2][0]
                        if i0 is ACCESS or not isinst(i0, int):
                            self._bad_value(idx, i0)
                        ok, v = istructs.read(aux, i0, (idx, ctx))
                        if ok:
                            plan = plans[0]
                            if plan is not None:
                                at = cyc + lat
                                b = buckets.get(at)
                                if b is None:
                                    b = buckets[at] = []
                                    tpush(times, at)
                                b.append((plan, v, ctx))
                                n_inflight += plan[1]
                        # else deferred: the matching ISTORE emits for us
                    elif op == 10:  # ISTORE
                        ins = act[2]
                        i0 = ins[0]
                        v = ins[1]
                        if i0 is ACCESS or not isinst(i0, int):
                            self._bad_value(idx, i0)
                        if v is ACCESS or not isinst(v, int):
                            self._bad_value(idx, v)
                        waiters = istructs.write(aux, i0, v)
                        at = cyc + lat
                        b = buckets.get(at)
                        if b is None:
                            b = buckets[at] = []
                            tpush(times, at)
                        plan = plans[0]
                        if plan is not None:
                            b.append((plan, ACCESS, ctx))
                            n_inflight += plan[1]
                        for widx, wctx in waiters:
                            plan = plans_all[widx][0]
                            if plan is not None:
                                b.append((plan, v, wctx))
                                n_inflight += plan[1]
                    elif op == 4:  # UNOP
                        a = act[2][0]
                        if a is ACCESS or not isinst(a, int):
                            self._bad_value(idx, a)
                        v = aux(a)
                        plan = plans[0]
                        if plan is not None:
                            at = cyc + lat
                            b = buckets.get(at)
                            if b is None:
                                b = buckets[at] = []
                                tpush(times, at)
                            b.append((plan, v, ctx))
                            n_inflight += plan[1]
                    else:
                        raise MachineError(
                            f"cannot execute kind {OPCODE_KIND_VALUE[op]}"
                        )
                n_fired = len(enabled)
                m_ops += n_fired
                profile[cyc] = profile.get(cyc, 0) + n_fired
                del enabled[:]
                cyc += 1
                if cyc > max_cycles:
                    raise SimulationLimitError(f"exceeded {max_cycles} cycles")
                if m_ops > max_ops:
                    raise SimulationLimitError(
                        f"exceeded {max_ops} operations"
                    )
        finally:
            self._cycle = cyc
            self._m_ops = m_ops
            self._n_inflight = n_inflight
            self._peak_tokens = peak_tok
            self._peak_frames = peak_frames
            self._peak_enabled = peak_en

    # -- bookkeeping -------------------------------------------------------

    def _check_completion(self) -> None:
        pg = self.pg
        missing = [
            p for p in range(len(pg.returns)) if p not in self._end_arrivals
        ]
        pending_is = self.istructs.pending_reads()
        if not missing and not pending_is:
            return
        waiting = []
        N = pg.n
        fbase = self._fbase
        filled = self._filled
        for fk, frame in self._frames.items():
            idx = fk % N
            if frame is None:  # root-context frame in the flat store
                base = fbase[idx]
                ports = sorted(
                    p for p in range(pg.nin[idx]) if filled[base + p]
                )
            else:
                ports = sorted(
                    p
                    for p in range(pg.nin[idx])
                    if frame[p + 1] is not _EMPTY
                )
            if ports:
                waiting.append(
                    f"node {pg.node_ids[idx]} ({pg.describe[idx]}) ctx "
                    f"{self._ctx_repr(fk // N)} has ports {ports} filled"
                )
        for arr, idx in pending_is:
            waiting.append(f"I-structure read of never-written {arr}[{idx}]")
        from .errors import DeadlockError

        raise DeadlockError(
            f"machine quiesced with END ports {missing} missing "
            f"({len(waiting)} stuck frames)",
            waiting,
        )
