"""repro.obs — end-to-end tracing and metrics (DESIGN.md §8).

Two stdlib-only pieces every layer above shares:

* :mod:`repro.obs.trace` — a span tracer with contextvar propagation.
  The engine stamps jobs with trace ids, workers record
  compile/cache/simulate spans, the service carries the id from client
  frame → queue → batch → reply; ``repro trace`` renders the tree.
* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  histograms backing the service's ``stats`` and ``metrics`` RPCs.

Tracing is off by default and designed to be unmeasurable when off;
see the module docstrings for the activation rules.
"""

from .metrics import (
    DEFAULT_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import (
    Span,
    Tracer,
    activate,
    current_trace_id,
    deactivate,
    new_span_id,
    new_trace_id,
    render_tree,
    tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "activate",
    "current_trace_id",
    "deactivate",
    "new_span_id",
    "new_trace_id",
    "render_tree",
    "tracer",
]
