"""In-process metrics registry: counters, gauges, histogram buckets.

The one set of numbers every surface quotes — the service's ``stats``
and ``metrics`` RPCs, the CLI, and the bench harness all read the same
:class:`MetricsRegistry` snapshot, so no two surfaces can disagree.

Instruments are thread-safe (the engine executor thread and the asyncio
loop both write them) and dependency-free.  Histograms keep both fixed
bucket counts (cheap, unbounded history) and a bounded ring of recent
raw samples so percentile summaries (p50/p95/p99 via
:class:`~repro.engine.latency.LatencySummary`) can be computed without
this module importing anything above it.
"""

from __future__ import annotations

import threading
from collections import deque

#: default latency buckets, in milliseconds (upper bounds; +Inf implied)
DEFAULT_BUCKETS_MS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)

#: raw samples a histogram retains for percentile summaries
SAMPLE_WINDOW = 2048


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A value that can go up and down (queue depth, cache entries)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Bucketed distribution plus a bounded ring of raw samples.

    ``observe`` files a sample into the first bucket whose upper bound
    is >= the value (the last, implicit bucket is +Inf).  ``samples()``
    returns the retained ring for percentile math.
    """

    __slots__ = ("name", "bounds", "_counts", "_sum", "_count", "_window",
                 "_lock")

    def __init__(self, name: str, buckets=DEFAULT_BUCKETS_MS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.bounds = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0
        self._window: deque[float] = deque(maxlen=SAMPLE_WINDOW)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            self._window.append(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def samples(self) -> list[float]:
        """The retained raw samples (most recent SAMPLE_WINDOW)."""
        with self._lock:
            return list(self._window)

    def snapshot(self) -> dict:
        with self._lock:
            buckets = [
                [bound, count]
                for bound, count in zip(self.bounds, self._counts)
            ]
            buckets.append(["+Inf", self._counts[-1]])
            return {"count": self._count, "sum": self._sum,
                    "buckets": buckets}


class MetricsRegistry:
    """Named instruments, get-or-create; one per server/process scope."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS_MS) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(name, buckets)
            return h

    def snapshot(self) -> dict:
        """JSON-ready dump of every instrument — the ``metrics`` RPC
        body."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(histograms.items())
            },
        }
