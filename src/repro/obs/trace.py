"""Zero-dependency span tracing with context propagation.

One *span* is a named, timed region of work; spans nest via a
``contextvars`` context, so a span opened while another is current
becomes its child.  All spans opened under one *trace id* form a tree
that can be rendered (:func:`render_tree`) or shipped across process
boundaries as plain dicts (:meth:`Span.to_wire`) — the batch engine
stamps jobs with a trace id, workers record compile/cache/simulate
spans, and the service propagates the id from client frame → queue →
batch → reply, so one request is followable end to end.

Tracing is **off by default** and costs one attribute read plus one
contextvar read per ``span()`` call when off (the ≤2 %% overhead budget
of the engine benchmarks).  Spans are recorded when either:

* the global :data:`tracer` is enabled (``tracer.enabled = True`` or the
  ``REPRO_TRACE`` environment variable), or
* a trace context is *active* — entered with :func:`activate`, which is
  what per-job tracing uses: the engine activates ``job.trace_id``
  around one job and collects exactly that job's spans, with the global
  switch still off.

Timestamps are ``time.perf_counter()`` seconds and therefore only
comparable within one process; durations are always meaningful, and
:func:`render_tree` tolerates spans from several processes in one tree
(unknown parents become roots).
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from contextvars import ContextVar
from dataclasses import dataclass, field

#: (trace id, parent span id) of the innermost open span, or None
_CTX: ContextVar[tuple[str, str] | None] = ContextVar(
    "repro_trace_ctx", default=None
)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    return os.urandom(4).hex()


def current_trace_id() -> str | None:
    """The active trace id, if a trace context or span is open."""
    ctx = _CTX.get()
    return ctx[0] if ctx is not None else None


def activate(trace_id: str, parent_id: str = ""):
    """Enter a trace context: subsequent spans on this thread/task are
    recorded under ``trace_id``.  Returns a token for :func:`deactivate`.
    """
    return _CTX.set((trace_id, parent_id))


def deactivate(token) -> None:
    """Leave a context entered with :func:`activate`."""
    _CTX.reset(token)


@dataclass
class Span:
    """One timed region.  ``start``/``end`` are perf_counter seconds."""

    trace_id: str
    span_id: str
    parent_id: str
    name: str
    start: float
    end: float = 0.0
    attrs: dict = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        return (self.end - self.start) * 1e3

    def to_wire(self) -> dict:
        d = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
        }
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        return d

    @classmethod
    def from_wire(cls, d: dict) -> Span:
        return cls(
            trace_id=d["trace_id"],
            span_id=d["span_id"],
            parent_id=d.get("parent_id", ""),
            name=d["name"],
            start=d.get("start", 0.0),
            end=d.get("end", 0.0),
            attrs=dict(d.get("attrs", {})),
        )


class _NoopSpan:
    """Returned by ``tracer.span()`` when tracing is off: a reusable,
    allocation-free context manager."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NOOP = _NoopSpan()


class _LiveSpan:
    """Context manager for one recorded span."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span", "_token")

    def __init__(self, tracer: Tracer, name: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span:
        ctx = _CTX.get()
        if ctx is None:
            trace_id, parent = new_trace_id(), ""
        else:
            trace_id, parent = ctx
        self._span = Span(
            trace_id=trace_id,
            span_id=new_span_id(),
            parent_id=parent,
            name=self._name,
            start=time.perf_counter(),
            attrs=self._attrs,
        )
        self._token = _CTX.set((trace_id, self._span.span_id))
        return self._span

    def __exit__(self, exc_type, exc, tb):
        _CTX.reset(self._token)
        self._span.end = time.perf_counter()
        if exc_type is not None:
            self._span.attrs["error"] = f"{exc_type.__name__}: {exc}"
        self._tracer.record(self._span)
        return False


class Tracer:
    """Bounded, thread-safe collector of finished spans, keyed by trace.

    Storage is an LRU of traces (``max_traces``) with a per-trace span
    cap (``max_spans``), so a long-running server cannot leak memory no
    matter how many requests it traces.
    """

    def __init__(
        self,
        enabled: bool = False,
        max_traces: int = 256,
        max_spans: int = 512,
    ):
        self.enabled = enabled
        self.max_traces = max_traces
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._traces: OrderedDict[str, list[Span]] = OrderedDict()

    # -- producing spans -------------------------------------------------

    def span(self, name: str, **attrs):
        """Open a span named ``name``.  A no-op (yielding ``None``) unless
        the tracer is enabled or a trace context is active."""
        if not self.enabled and _CTX.get() is None:
            return _NOOP
        return _LiveSpan(self, name, attrs)

    def record(self, span: Span) -> None:
        """File one finished span (also the ingest point for spans built
        by hand with explicit timestamps)."""
        with self._lock:
            bucket = self._traces.get(span.trace_id)
            if bucket is None:
                bucket = self._traces[span.trace_id] = []
                while len(self._traces) > self.max_traces:
                    self._traces.popitem(last=False)
            if len(bucket) < self.max_spans:
                bucket.append(span)

    def ingest(self, spans) -> None:
        """File spans that crossed a process boundary (wire dicts or
        Span objects)."""
        for s in spans:
            self.record(Span.from_wire(s) if isinstance(s, dict) else s)

    # -- reading spans ---------------------------------------------------

    def spans(self, trace_id: str) -> list[Span]:
        """All recorded spans of one trace (copy; arrival order)."""
        with self._lock:
            return list(self._traces.get(trace_id, ()))

    def take(self, trace_id: str) -> list[Span]:
        """Pop one trace's spans — what the engine ships back per job so
        worker-side buffers never accumulate."""
        with self._lock:
            return self._traces.pop(trace_id, [])

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()


#: the process-wide tracer every instrumented layer records into
tracer = Tracer(enabled=os.environ.get("REPRO_TRACE", "") not in ("", "0"))


def render_tree(spans) -> str:
    """Render spans (Span objects or wire dicts) as an indented tree.

    Spans whose parent is absent (e.g. recorded in another process)
    become roots; siblings sort by start time.  Durations are printed in
    milliseconds with the span's attributes trailing.
    """
    sp = [Span.from_wire(s) if isinstance(s, dict) else s for s in spans]
    ids = {s.span_id for s in sp}
    children: dict[str, list[Span]] = {}
    roots: list[Span] = []
    for s in sp:
        if s.parent_id and s.parent_id in ids:
            children.setdefault(s.parent_id, []).append(s)
        else:
            roots.append(s)
    lines: list[str] = []

    def walk(s: Span, depth: int) -> None:
        attrs = " ".join(f"{k}={v}" for k, v in sorted(s.attrs.items()))
        pad = "  " * depth
        line = f"{pad}{s.name:<{max(1, 28 - len(pad))}s} {s.duration_ms:9.3f}ms"
        lines.append(line + (f"  {attrs}" if attrs else ""))
        for child in sorted(
            children.get(s.span_id, ()), key=lambda c: (c.start, c.span_id)
        ):
            walk(child, depth + 1)

    for root in sorted(roots, key=lambda s: (s.start, s.span_id)):
        walk(root, 0)
    return "\n".join(lines)
