"""Top-level facade re-exporting the compile/simulate pipeline and the
batch engine layer."""

from .engine import (
    BatchJob,
    BatchResult,
    GraphCache,
    compile_cached,
    default_cache,
    run_batch,
)
from .translate.passes import Certificate, verify_pass_log
from .translate.pipeline import (
    SCHEMAS,
    CompileOptions,
    CompiledProgram,
    compile_program,
    run_source,
    simulate,
)
from .translate.verify import CertificateError

__all__ = [
    "SCHEMAS",
    "BatchJob",
    "BatchResult",
    "Certificate",
    "CertificateError",
    "CompileOptions",
    "CompiledProgram",
    "GraphCache",
    "compile_cached",
    "compile_program",
    "default_cache",
    "run_batch",
    "run_source",
    "simulate",
    "verify_pass_log",
]
