"""Top-level facade re-exporting the compile/simulate pipeline."""

from .translate.pipeline import (
    SCHEMAS,
    CompileOptions,
    CompiledProgram,
    compile_program,
    run_source,
    simulate,
)

__all__ = [
    "SCHEMAS",
    "CompileOptions",
    "CompiledProgram",
    "compile_program",
    "run_source",
    "simulate",
]
