"""Top-level facade re-exporting the compile/simulate pipeline and the
batch engine layer."""

from .engine import (
    BatchJob,
    BatchResult,
    GraphCache,
    compile_cached,
    default_cache,
    run_batch,
)
from .translate.pipeline import (
    SCHEMAS,
    CompileOptions,
    CompiledProgram,
    compile_program,
    run_source,
    simulate,
)

__all__ = [
    "SCHEMAS",
    "BatchJob",
    "BatchResult",
    "CompileOptions",
    "CompiledProgram",
    "GraphCache",
    "compile_cached",
    "compile_program",
    "default_cache",
    "run_batch",
    "run_source",
    "simulate",
]
