"""Shared scalar operator semantics.

Both the reference sequential interpreters and the dataflow machine use
these functions, so the two execution paths cannot drift apart.

Conventions (documented deviations from trap semantics, chosen so that the
language is total and random-program property tests never hit undefined
behaviour):

* all values are Python ints (arbitrary precision);
* comparisons and logical connectives yield 0/1; any nonzero value is true;
* division is *floor* division and, together with modulus, is **total**:
  a zero divisor yields 0.
"""

from __future__ import annotations


def truthy(v: int) -> bool:
    """The branch rule: any nonzero value is true."""
    return v != 0


def apply_binop(op: str, a: int, b: int) -> int:
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        return 0 if b == 0 else a // b
    if op == "%":
        return 0 if b == 0 else a % b
    if op == "==":
        return int(a == b)
    if op == "!=":
        return int(a != b)
    if op == "<":
        return int(a < b)
    if op == "<=":
        return int(a <= b)
    if op == ">":
        return int(a > b)
    if op == ">=":
        return int(a >= b)
    if op == "and":
        return int(truthy(a) and truthy(b))
    if op == "or":
        return int(truthy(a) or truthy(b))
    raise ValueError(f"unknown binary operator {op!r}")


def apply_unop(op: str, a: int) -> int:
    if op == "-":
        return -a
    if op == "not":
        return int(not truthy(a))
    raise ValueError(f"unknown unary operator {op!r}")


#: Resolved callables per operator, for interpreters that bind the
#: operation once at graph-lowering time instead of re-dispatching on the
#: op string per firing.  Must agree with :func:`apply_binop` /
#: :func:`apply_unop` on every input (a consistency test holds them to it).
BINOP_FUNCS: dict = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: 0 if b == 0 else a // b,
    "%": lambda a, b: 0 if b == 0 else a % b,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "and": lambda a, b: int(a != 0 and b != 0),
    "or": lambda a, b: int(a != 0 or b != 0),
}

UNOP_FUNCS: dict = {
    "-": lambda a: -a,
    "not": lambda a: int(a == 0),
}
