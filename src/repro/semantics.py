"""Shared scalar operator semantics.

Both the reference sequential interpreters and the dataflow machine use
these functions, so the two execution paths cannot drift apart.

Conventions (documented deviations from trap semantics, chosen so that the
language is total and random-program property tests never hit undefined
behaviour):

* all values are Python ints (arbitrary precision);
* comparisons and logical connectives yield 0/1; any nonzero value is true;
* division is *floor* division and, together with modulus, is **total**:
  a zero divisor yields 0.
"""

from __future__ import annotations


def truthy(v: int) -> bool:
    """The branch rule: any nonzero value is true."""
    return v != 0


def apply_binop(op: str, a: int, b: int) -> int:
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        return 0 if b == 0 else a // b
    if op == "%":
        return 0 if b == 0 else a % b
    if op == "==":
        return int(a == b)
    if op == "!=":
        return int(a != b)
    if op == "<":
        return int(a < b)
    if op == "<=":
        return int(a <= b)
    if op == ">":
        return int(a > b)
    if op == ">=":
        return int(a >= b)
    if op == "and":
        return int(truthy(a) and truthy(b))
    if op == "or":
        return int(truthy(a) or truthy(b))
    raise ValueError(f"unknown binary operator {op!r}")


def apply_unop(op: str, a: int) -> int:
    if op == "-":
        return -a
    if op == "not":
        return int(not truthy(a))
    raise ValueError(f"unknown unary operator {op!r}")
