"""repro.service — the always-on compile/simulate server.

The engine layer (:mod:`repro.engine`) made batches cheap; this layer
makes them *resident*: a long-running asyncio server owns a persistent
:class:`~repro.engine.cache.GraphCache` and worker pool, accepts jobs
over a JSON-lines socket protocol, coalesces them with a dynamic
micro-batcher (flush on ``max_batch`` or ``max_wait_ms``), applies
explicit backpressure (``queue_full``) past ``--max-queue``, honours
per-job deadlines and client cancellation, and drains gracefully on
shutdown.  ``repro serve`` / ``repro submit`` / ``repro stats`` are the
CLI front ends; DESIGN.md §7 documents the architecture and contracts.

The differential guarantee: results through the service are
bit-identical — memory, op counts, cycles, profiles — to a direct
``engine.run_batch()`` of the same jobs, for any batcher setting
(``tests/service/`` enforces it).
"""

from .batcher import MicroBatcher
from .client import AsyncServiceClient, JobRejected, ServiceClient, ServiceError
from .protocol import (
    PROTOCOL_VERSION,
    REJECTIONS,
    job_from_wire,
    job_to_wire,
    result_from_wire,
    result_to_wire,
)
from .server import ServiceConfig, ServiceServer, serve
from .testing import ServerThread, ephemeral_socket_path, running_server

__all__ = [
    "AsyncServiceClient",
    "JobRejected",
    "MicroBatcher",
    "PROTOCOL_VERSION",
    "REJECTIONS",
    "ServerThread",
    "ephemeral_socket_path",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "job_from_wire",
    "job_to_wire",
    "result_from_wire",
    "result_to_wire",
    "running_server",
    "serve",
]
