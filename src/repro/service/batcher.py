"""Dynamic micro-batching with explicit backpressure.

The inference-server pattern: submissions land in a bounded queue; a
single flush loop coalesces whatever is queued into one engine batch,
flushing as soon as either ``max_batch`` items are waiting or the oldest
waiting item has been held ``max_wait_ms`` — whichever comes first.  A
full queue rejects at the door (`offer` returns ``False``) instead of
buffering unboundedly; that rejection *is* the backpressure signal the
server turns into a ``queue_full`` error frame.

The batcher is transport-agnostic: items are opaque, and the server
provides the async ``runner`` that executes a popped batch and replies
to clients.  One batch is in flight at a time — while the runner awaits
the engine, new submissions queue up and form the next batch, which is
exactly what lets a persistent pool amortize across concurrent clients.
"""

from __future__ import annotations

import asyncio
from collections import deque


class MicroBatcher:
    """Coalesce queued items into batches for an async ``runner``.

    * ``runner(batch)`` — awaited with 1..``max_batch`` items, in arrival
      order; exceptions it raises abort the flush loop (the server's
      runner catches everything and replies per-item instead).
    * ``max_batch`` — flush immediately once this many items wait.
    * ``max_wait_ms`` — flush a partial batch once the oldest item has
      waited this long (0 = flush every item as soon as possible).
    * ``max_queue`` — :meth:`offer` rejects beyond this many *waiting*
      items (in-flight items are bounded separately by ``max_batch``).
    """

    def __init__(
        self,
        runner,
        *,
        max_batch: int = 8,
        max_wait_ms: float = 5.0,
        max_queue: int = 64,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self._runner = runner
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.max_queue = max_queue
        self._queue: deque = deque()
        self._wakeup = asyncio.Event()
        self._closing = False
        self.in_flight = 0
        self.batches = 0

    # -- producer side ----------------------------------------------------

    @property
    def depth(self) -> int:
        """Items waiting (excludes the batch currently running)."""
        return len(self._queue)

    def offer(self, item) -> bool:
        """Enqueue ``item``; ``False`` means the queue is full (or the
        batcher is draining) and the item was NOT accepted."""
        if self._closing or len(self._queue) >= self.max_queue:
            return False
        self._queue.append(item)
        self._wakeup.set()
        return True

    def discard(self, item) -> bool:
        """Remove a still-queued item (cancellation / deadline expiry).
        ``False`` if it already left the queue."""
        try:
            self._queue.remove(item)
        except ValueError:
            return False
        return True

    def close(self) -> None:
        """Stop accepting; :meth:`run` drains what is queued and returns."""
        self._closing = True
        self._wakeup.set()

    # -- consumer side ----------------------------------------------------

    async def run(self) -> None:
        """The flush loop; returns once closed and fully drained."""
        loop = asyncio.get_running_loop()
        while True:
            while not self._queue:
                if self._closing:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
            # first waiter defines the flush deadline; closing flushes now
            deadline = loop.time() + self.max_wait_ms / 1000.0
            while len(self._queue) < self.max_batch and not self._closing:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                self._wakeup.clear()
                try:
                    await asyncio.wait_for(self._wakeup.wait(), remaining)
                except (asyncio.TimeoutError, TimeoutError):
                    break
            batch = []
            while self._queue and len(batch) < self.max_batch:
                batch.append(self._queue.popleft())
            if not batch:
                continue
            self.in_flight = len(batch)
            self.batches += 1
            try:
                await self._runner(batch)
            finally:
                self.in_flight = 0
