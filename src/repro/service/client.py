"""Clients for the compile/simulate service.

:class:`ServiceClient` is synchronous (plain sockets — usable from
threads, the CLI, and load generators); :class:`AsyncServiceClient` is
its asyncio twin.  Both speak the JSON-lines protocol of
:mod:`repro.service.protocol` and decode results back into real
:class:`~repro.engine.batch.BatchResult` objects, so code written
against ``engine.run_batch()`` ports to the service by swapping the
call.

Transport-level rejections (``queue_full``, ``deadline_expired``,
``cancelled``, ``shutting_down``) raise :class:`JobRejected` from
``submit``/``result``; :meth:`ServiceClient.submit_many` instead embeds
them as error-carrying results so a burst can count rejections without
losing its accepted siblings.  A job that *ran* and raised comes back as
a normal ``BatchResult`` with ``.ok == False`` — exactly like
``run_batch`` reports it.
"""

from __future__ import annotations

import itertools
import random
import socket
import time

from ..engine.batch import BatchJob, BatchResult
from .protocol import decode, encode, job_to_wire, result_from_wire

#: ceiling for one retry sleep, however many doublings have happened
_BACKOFF_CAP_S = 1.0

#: connect() failures worth retrying: the server is not there *yet*
#: (still binding its socket, or the router is respawning it)
_RETRYABLE = (ConnectionError, FileNotFoundError)


def _backoff_delays(retries: int, backoff_s: float, rng: random.Random):
    """Capped exponential backoff with jitter: one delay per retry.
    Jitter (0.5x-1.5x) keeps a burst of clients from reconnecting in
    lockstep against a server that just came up."""
    for attempt in range(retries):
        delay = min(backoff_s * (2 ** attempt), _BACKOFF_CAP_S)
        yield delay * (0.5 + rng.random())


class ServiceError(Exception):
    """Protocol or server-side error; ``code`` is the wire error code."""

    def __init__(self, code: str, detail: str = ""):
        super().__init__(f"{code}: {detail}" if detail else code)
        self.code = code
        self.detail = detail


class JobRejected(ServiceError):
    """The server refused or abandoned the job before producing a result
    (backpressure, deadline, cancellation, or drain)."""


def _rejection_result(job: BatchJob, index: int, code: str, detail: str
                      ) -> BatchResult:
    return BatchResult(
        name=job.name or f"job{index}",
        index=index,
        result=None,
        stats=None,
        compile_time=0.0,
        sim_time=0.0,
        cache_hit=False,
        error=code,
        traceback=detail or None,
    )


def _frame_to_result(frame: dict) -> BatchResult:
    if not frame.get("ok"):
        raise JobRejected(frame.get("error", "unknown"),
                          frame.get("detail", ""))
    return result_from_wire(frame["result"])


class ServiceClient:
    """Blocking client over a UNIX socket (``path=``) or TCP
    (``host=``/``port=``).  Connects lazily; usable as a context
    manager.  Not thread-safe — use one client per thread."""

    def __init__(
        self,
        path: str | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        timeout: float | None = None,
        retries: int = 0,
        backoff_s: float = 0.05,
    ):
        if path is None and port is None:
            raise ValueError("need path= (UNIX socket) or port= (TCP)")
        if retries < 0 or backoff_s < 0:
            raise ValueError("retries and backoff_s must be >= 0")
        self._path, self._host, self._port = path, host, port
        self._timeout = timeout
        self._retries = retries
        self._backoff_s = backoff_s
        self._sock: socket.socket | None = None
        self._rfile = None
        self._ids = itertools.count()
        self._responses: dict[str, dict] = {}  # submit frames read early

    # -- transport --------------------------------------------------------

    def _connect_once(self) -> socket.socket:
        if self._path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.connect(self._path)
            except BaseException:
                sock.close()
                raise
            return sock
        return socket.create_connection((self._host, self._port))

    def connect(self) -> ServiceClient:
        if self._sock is not None:
            return self
        delays = _backoff_delays(self._retries, self._backoff_s,
                                 random.Random())
        while True:
            try:
                sock = self._connect_once()
                break
            except _RETRYABLE:
                delay = next(delays, None)
                if delay is None:
                    raise
                time.sleep(delay)
        sock.settimeout(self._timeout)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._rfile is not None:
            self._rfile.close()
            self._rfile = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> ServiceClient:
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    def _send(self, frame: dict) -> None:
        self.connect()
        self._sock.sendall(encode(frame))

    def _read_frame(self) -> dict:
        line = self._rfile.readline()
        if not line:
            raise ServiceError("connection_closed",
                               "server closed the connection")
        return decode(line)

    def _wait_submit(self, req_id: str) -> dict:
        frame = self._responses.pop(req_id, None)
        while frame is None:
            got = self._read_frame()
            if got.get("op") == "submit" and "id" in got:
                if got["id"] == req_id:
                    frame = got
                else:
                    self._responses[got["id"]] = got
        return frame

    def _wait_control(self, op: str) -> dict:
        while True:
            got = self._read_frame()
            if got.get("op") == op:
                return got
            if got.get("op") == "submit" and "id" in got:
                self._responses[got["id"]] = got

    # -- job API ----------------------------------------------------------

    def start(self, job: BatchJob, deadline_ms: float | None = None) -> str:
        """Pipeline a submit; returns the request id for :meth:`result`."""
        req_id = f"r{next(self._ids)}"
        frame = {"op": "submit", "id": req_id, "job": job_to_wire(job)}
        if deadline_ms is not None:
            frame["deadline_ms"] = deadline_ms
        self._send(frame)
        return req_id

    def result(self, req_id: str) -> BatchResult:
        """Block for one pipelined submit's result.  Raises
        :class:`JobRejected` on transport-level rejection."""
        return _frame_to_result(self._wait_submit(req_id))

    def submit(
        self, job: BatchJob, deadline_ms: float | None = None
    ) -> BatchResult:
        return self.result(self.start(job, deadline_ms))

    def submit_many(
        self, jobs: list[BatchJob], deadline_ms: float | None = None
    ) -> list[BatchResult]:
        """Pipeline every job, collect in submission order.  Rejections
        come back as error-carrying results (``error`` set to the wire
        code), and indices are renumbered to the caller's job order."""
        ids = [self.start(job, deadline_ms) for job in jobs]
        out = []
        for i, (job, req_id) in enumerate(zip(jobs, ids)):
            try:
                br = self.result(req_id)
                br.index = i
            except JobRejected as exc:
                br = _rejection_result(job, i, exc.code, exc.detail)
            out.append(br)
        return out

    def cancel(self, req_id: str) -> bool:
        """Cancel a pipelined submit; True if it was still queued (its
        :meth:`result` will then raise ``cancelled``)."""
        self._send({"op": "cancel", "id": req_id})
        return bool(self._wait_control("cancel").get("found"))

    # -- control API -------------------------------------------------------

    def stats(self) -> dict:
        self._send({"op": "stats"})
        frame = self._wait_control("stats")
        if not frame.get("ok"):
            raise ServiceError(frame.get("error", "unknown"),
                               frame.get("detail", ""))
        return frame["stats"]

    def metrics(self) -> dict:
        """The server's full metrics-registry snapshot (counters,
        gauges, histograms)."""
        self._send({"op": "metrics"})
        frame = self._wait_control("metrics")
        if not frame.get("ok"):
            raise ServiceError(frame.get("error", "unknown"),
                               frame.get("detail", ""))
        return frame["metrics"]

    def tiers(self) -> dict:
        """The server's adaptive-tiering state: ladder config, per-tier
        graph counts, promotion/demotion totals, hottest graphs, and
        snapshot/restore status (``{"enabled": False, ...}`` when the
        server runs without tiering)."""
        self._send({"op": "tiers"})
        frame = self._wait_control("tiers")
        if not frame.get("ok"):
            raise ServiceError(frame.get("error", "unknown"),
                               frame.get("detail", ""))
        return frame["tiers"]

    def trace(self, trace_id: str) -> list[dict]:
        """Spans the server holds for one trace id, as wire dicts
        (render with :func:`repro.obs.trace.render_tree`)."""
        self._send({"op": "trace", "trace_id": trace_id})
        frame = self._wait_control("trace")
        if not frame.get("ok"):
            raise ServiceError(frame.get("error", "unknown"),
                               frame.get("detail", ""))
        return frame["spans"]

    def ping(self) -> dict:
        self._send({"op": "ping"})
        return self._wait_control("ping")

    def shutdown(self) -> int:
        """Ask the server to drain and exit; returns the number of jobs
        it still had in the system when the drain started."""
        self._send({"op": "shutdown"})
        return int(self._wait_control("shutdown").get("draining", 0))


class AsyncServiceClient:
    """Asyncio client with the same surface as :class:`ServiceClient`
    (methods are coroutines).  Concurrent submits multiplex over one
    connection; a background reader routes frames to their futures."""

    def __init__(
        self,
        path: str | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        retries: int = 0,
        backoff_s: float = 0.05,
    ):
        if path is None and port is None:
            raise ValueError("need path= (UNIX socket) or port= (TCP)")
        if retries < 0 or backoff_s < 0:
            raise ValueError("retries and backoff_s must be >= 0")
        self._path, self._host, self._port = path, host, port
        self._retries = retries
        self._backoff_s = backoff_s
        self._reader = None
        self._writer = None
        self._reader_task = None
        self._ids = itertools.count()
        self._submit_futs: dict[str, object] = {}
        self._control_futs: dict[str, list] = {}

    async def _connect_once(self) -> None:
        import asyncio

        from .protocol import MAX_LINE

        if self._path is not None:
            self._reader, self._writer = await asyncio.open_unix_connection(
                self._path, limit=MAX_LINE
            )
        else:
            self._reader, self._writer = await asyncio.open_connection(
                self._host, self._port, limit=MAX_LINE
            )

    async def connect(self) -> AsyncServiceClient:
        import asyncio

        if self._writer is not None:
            return self
        delays = _backoff_delays(self._retries, self._backoff_s,
                                 random.Random())
        while True:
            try:
                await self._connect_once()
                break
            except _RETRYABLE:
                delay = next(delays, None)
                if delay is None:
                    raise
                await asyncio.sleep(delay)
        self._reader_task = asyncio.create_task(self._read_loop())
        return self

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    async def __aenter__(self) -> AsyncServiceClient:
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _read_loop(self) -> None:
        import asyncio

        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                frame = decode(line)
                op = frame.get("op")
                if op == "submit" and "id" in frame:
                    fut = self._submit_futs.get(frame["id"])
                    if fut is not None and not fut.done():
                        fut.set_result(frame)
                elif op in self._control_futs and self._control_futs[op]:
                    fut = self._control_futs[op].pop(0)
                    if not fut.done():
                        fut.set_result(frame)
        except asyncio.CancelledError:
            raise
        except Exception:
            pass
        finally:
            err = ServiceError("connection_closed",
                               "server closed the connection")
            for fut in self._submit_futs.values():
                if not fut.done():
                    fut.set_exception(err)
            for futs in self._control_futs.values():
                for fut in futs:
                    if not fut.done():
                        fut.set_exception(err)

    async def _send(self, frame: dict) -> None:
        await self.connect()
        self._writer.write(encode(frame))
        await self._writer.drain()

    async def _control(self, op: str, **fields) -> dict:
        import asyncio

        await self.connect()
        fut = asyncio.get_running_loop().create_future()
        self._control_futs.setdefault(op, []).append(fut)
        await self._send({"op": op, **fields})
        return await fut

    # -- job API ----------------------------------------------------------

    async def start(
        self, job: BatchJob, deadline_ms: float | None = None
    ) -> str:
        import asyncio

        await self.connect()
        req_id = f"a{next(self._ids)}"
        self._submit_futs[req_id] = asyncio.get_running_loop().create_future()
        frame = {"op": "submit", "id": req_id, "job": job_to_wire(job)}
        if deadline_ms is not None:
            frame["deadline_ms"] = deadline_ms
        await self._send(frame)
        return req_id

    async def result(self, req_id: str) -> BatchResult:
        fut = self._submit_futs.get(req_id)
        if fut is None:
            raise ServiceError("unknown_id", req_id)
        try:
            frame = await fut
        finally:
            self._submit_futs.pop(req_id, None)
        return _frame_to_result(frame)

    async def submit(
        self, job: BatchJob, deadline_ms: float | None = None
    ) -> BatchResult:
        return await self.result(await self.start(job, deadline_ms))

    async def cancel(self, req_id: str) -> bool:
        return bool((await self._control("cancel", id=req_id)).get("found"))

    # -- control API -------------------------------------------------------

    async def stats(self) -> dict:
        frame = await self._control("stats")
        if not frame.get("ok"):
            raise ServiceError(frame.get("error", "unknown"),
                               frame.get("detail", ""))
        return frame["stats"]

    async def metrics(self) -> dict:
        frame = await self._control("metrics")
        if not frame.get("ok"):
            raise ServiceError(frame.get("error", "unknown"),
                               frame.get("detail", ""))
        return frame["metrics"]

    async def tiers(self) -> dict:
        frame = await self._control("tiers")
        if not frame.get("ok"):
            raise ServiceError(frame.get("error", "unknown"),
                               frame.get("detail", ""))
        return frame["tiers"]

    async def trace(self, trace_id: str) -> list[dict]:
        frame = await self._control("trace", trace_id=trace_id)
        if not frame.get("ok"):
            raise ServiceError(frame.get("error", "unknown"),
                               frame.get("detail", ""))
        return frame["spans"]

    async def ping(self) -> dict:
        return await self._control("ping")

    async def shutdown(self) -> int:
        return int((await self._control("shutdown")).get("draining", 0))
