"""JSON-lines wire protocol for the compile/simulate service.

One JSON object per ``\\n``-terminated line, both directions.  Requests
carry an ``op`` plus op-specific fields; every response carries ``ok``
and echoes the request's ``op`` (and ``id`` for job-scoped ops).

Requests::

    {"op": "submit", "id": "c1-0", "job": {...}, "deadline_ms": 250.0}
    {"op": "cancel", "id": "c1-0"}
    {"op": "stats"}
    {"op": "metrics"}
    {"op": "trace", "trace_id": "deadbeef01020304"}
    {"op": "tiers"}
    {"op": "ping"}
    {"op": "shutdown"}

Responses::

    {"ok": true,  "op": "submit", "id": ..., "result": {...BatchResult...}}
    {"ok": false, "op": "submit", "id": ..., "error": "queue_full", ...}
    {"ok": true,  "op": "stats", "stats": {...}}
    {"ok": true,  "op": "tiers", "tiers": {"enabled": ..., ...}}

Transport-level rejections use the ``error`` codes in :data:`REJECTIONS`;
a job that *ran* but raised comes back ``ok: true`` with the captured
``error``/``traceback`` inside the result object (mirroring
:class:`~repro.engine.batch.BatchResult`).

The codec round-trips every field the differential guarantee covers:
final memory, metric counters, the parallelism profile (integer cycle
keys — JSON stringifies them; decoding restores ints), clash and trace
tuples, and graph stats.  ``job_from_wire(job_to_wire(j)) == j`` and the
decoded result compares equal to the original, so "bit-identical through
the service" is checkable with plain ``==``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, fields

from ..dfg.stats import GraphStats
from ..engine.batch import BatchJob, BatchResult
from ..machine.config import MachineConfig
from ..machine.metrics import Metrics
from ..machine.simulator import SimResult
from ..translate.pipeline import CompileOptions

#: protocol version, echoed by ping; bump on incompatible frame changes
PROTOCOL_VERSION = 1

#: transport-level error codes for a submit that never produced a result
REJECTIONS = (
    "queue_full",
    "deadline_expired",
    "cancelled",
    "shutting_down",
    "bad_request",
    "shard_failed",  # fleet: the shard holding the job crashed mid-run
)

#: generous per-line ceiling (traces can be large); also the asyncio
#: stream reader limit servers and clients should pass through
MAX_LINE = 64 * 1024 * 1024


def encode(obj: dict) -> bytes:
    """One wire frame: compact JSON + newline."""
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


def decode(line: bytes) -> dict:
    obj = json.loads(line)
    if not isinstance(obj, dict):
        raise ValueError("frame must be a JSON object")
    return obj


# -- jobs -------------------------------------------------------------------


def job_to_wire(job: BatchJob) -> dict:
    return {
        "source": job.source,
        "options": asdict(job.options),
        "inputs": dict(job.inputs) if job.inputs is not None else None,
        "config": asdict(job.config) if job.config is not None else None,
        "name": job.name,
        "trace_id": job.trace_id,
    }


def job_from_wire(d: dict) -> BatchJob:
    options = CompileOptions(**(d.get("options") or {}))
    config = d.get("config")
    return BatchJob(
        source=d["source"],
        options=options,
        inputs=d.get("inputs"),
        config=MachineConfig(**config) if config is not None else None,
        name=d.get("name", ""),
        trace_id=d.get("trace_id", ""),
    )


# -- results ----------------------------------------------------------------


def _metrics_to_wire(m: Metrics) -> dict:
    d = {f.name: getattr(m, f.name) for f in fields(Metrics)}
    # JSON objects have string keys; profile is keyed by integer cycle
    d["profile"] = {str(k): v for k, v in m.profile.items()}
    return d


def _metrics_from_wire(d: dict) -> Metrics:
    d = dict(d)
    d["profile"] = {int(k): v for k, v in d.get("profile", {}).items()}
    return Metrics(**d)


def _sim_result_to_wire(r: SimResult) -> dict:
    return {
        "memory": r.memory,
        "metrics": _metrics_to_wire(r.metrics),
        "end_values": r.end_values,
        "clashes": [list(c) for c in r.clashes],
        "trace": [list(t) for t in r.trace],
        "wall_time": r.wall_time,
        "fast_path": r.fast_path,
        "cache_hit": r.cache_hit,
        "occupancy": [list(row) for row in r.occupancy],
        "backend": r.backend,
    }


def _sim_result_from_wire(d: dict) -> SimResult:
    return SimResult(
        memory=d["memory"],
        metrics=_metrics_from_wire(d["metrics"]),
        end_values=d.get("end_values", {}),
        clashes=[tuple(c) for c in d.get("clashes", [])],
        trace=[tuple(t) for t in d.get("trace", [])],
        wall_time=d.get("wall_time", 0.0),
        fast_path=d.get("fast_path", False),
        cache_hit=d.get("cache_hit", False),
        occupancy=[list(row) for row in d.get("occupancy", [])],
        backend=d.get("backend", ""),
    )


def result_to_wire(br: BatchResult) -> dict:
    return {
        "name": br.name,
        "index": br.index,
        "result": _sim_result_to_wire(br.result) if br.result else None,
        "stats": asdict(br.stats) if br.stats else None,
        "compile_time": br.compile_time,
        "sim_time": br.sim_time,
        "cache_hit": br.cache_hit,
        "error": br.error,
        "traceback": br.traceback,
        "trace_id": br.trace_id,
        "spans": br.spans,
    }


def result_from_wire(d: dict) -> BatchResult:
    stats = d.get("stats")
    res = d.get("result")
    return BatchResult(
        name=d["name"],
        index=d["index"],
        result=_sim_result_from_wire(res) if res else None,
        stats=GraphStats(**stats) if stats else None,
        compile_time=d.get("compile_time", 0.0),
        sim_time=d.get("sim_time", 0.0),
        cache_hit=d.get("cache_hit", False),
        error=d.get("error"),
        traceback=d.get("traceback"),
        trace_id=d.get("trace_id", ""),
        spans=list(d.get("spans", [])),
    )
