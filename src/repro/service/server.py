"""The always-on compile/simulate server.

Architecture (DESIGN.md §7): asyncio connection handlers parse JSON-lines
frames and feed a bounded :class:`~repro.service.batcher.MicroBatcher`;
its flush loop hands coalesced batches to the persistent engine — a
long-lived :class:`~repro.engine.cache.GraphCache` (serial mode) or a
:func:`~repro.engine.batch.make_pool` worker pool — via a single-thread
executor so the event loop never blocks on compilation or simulation.

Contracts:

* **Backpressure** — at most ``max_queue`` jobs wait; a submit beyond
  that is rejected *immediately* with ``queue_full`` (never buffered,
  never dropped silently) and counted in stats.  The server stays live.
* **Deadlines** — ``deadline_ms`` is submit→result: a job still queued
  when it expires is removed and rejected; one already running has its
  result discarded and the client gets ``deadline_expired`` on time.
* **Cancellation** — a queued job can be cancelled by request id; a
  running one cannot (the engine is mid-flight) and reports as such.
* **Graceful shutdown** — new submits are rejected (``shutting_down``),
  every accepted job is drained and its result delivered, then
  connections close.  Zero accepted results are lost.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace

from ..engine import (
    GraphCache,
    LatencySummary,
    TierController,
    TieringConfig,
    make_pool,
    run_batch,
)
from ..engine.batch import BatchJob
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Span, new_span_id, new_trace_id, tracer
from .batcher import MicroBatcher
from .protocol import (
    MAX_LINE,
    PROTOCOL_VERSION,
    decode,
    encode,
    job_from_wire,
    result_to_wire,
)

# entry lifecycle
PENDING = "pending"
RUNNING = "running"
DONE = "done"
EXPIRED = "expired"
CANCELLED = "cancelled"

#: per-stage latency histograms exposed by the ``metrics`` op (and
#: summarized by ``stats``); the job-outcome counters next to them
JOB_COUNTERS = (
    "submitted", "completed", "failed", "rejected", "expired",
    "cancelled", "cache_hit",
)
LATENCY_STAGES = ("queue", "compile", "sim", "total")


@dataclass
class ServiceConfig:
    """Listen address + queueing/engine knobs for one server."""

    path: str | None = None  # UNIX socket path (wins over host/port)
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral, see ServiceServer.endpoint
    max_queue: int = 64
    max_batch: int = 8
    max_wait_ms: float = 5.0
    pool_size: int = 1  # 1 = serial in-process engine
    cache_dir: str | None = None
    capacity: int = 256
    max_line: int = MAX_LINE  # per-frame byte ceiling on the wire
    #: warm-restart directory: restored on start, snapshotted on drain
    #: (and every ``snapshot_interval_s`` seconds when > 0)
    snapshot_dir: str | None = None
    snapshot_interval_s: float = 0.0
    #: adaptive tiering (the service-as-JIT): auto-promote cached graphs
    #: through the tier ladder by observed hit count
    tiering: bool = False
    tier_entry: str = "fast"
    tier_max: str = "vectorized"
    tier_thresholds: tuple[int, ...] = (8, 64)
    tier_demote_ratio: float = 0.25
    tier_decay_s: float = 10.0
    tier_prewarm: bool = True

    def __post_init__(self) -> None:
        if self.path is None and self.host is None:
            raise ValueError("need a UNIX socket path or a TCP host")
        if isinstance(self.tier_thresholds, list):
            self.tier_thresholds = tuple(self.tier_thresholds)


class _Conn:
    """Per-connection state: serialized writes + live submit entries."""

    __slots__ = ("writer", "lock", "entries", "alive")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.lock = asyncio.Lock()
        self.entries: dict[str, _Entry] = {}
        self.alive = True

    async def send(self, frame: dict) -> None:
        if not self.alive:
            return
        try:
            async with self.lock:
                self.writer.write(encode(frame))
                await self.writer.drain()
        except (ConnectionError, RuntimeError, OSError):
            self.alive = False


class _Entry:
    """One accepted submit: the job plus routing and lifecycle state."""

    __slots__ = (
        "conn", "req_id", "job", "state", "deadline_handle", "t_submit"
    )

    def __init__(self, conn: _Conn, req_id: str, job: BatchJob):
        self.conn = conn
        self.req_id = req_id
        self.job = job
        self.state = PENDING
        self.deadline_handle: asyncio.TimerHandle | None = None
        self.t_submit = time.monotonic()

    def settle(self) -> None:
        """Leave the lifecycle: drop the deadline timer and the conn's
        id->entry routing slot."""
        if self.deadline_handle is not None:
            self.deadline_handle.cancel()
            self.deadline_handle = None
        if self.conn.entries.get(self.req_id) is self:
            del self.conn.entries[self.req_id]


class ServiceServer:
    """One server instance; see the module docstring for the contracts."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.batcher = MicroBatcher(
            self._run_entries,
            max_batch=config.max_batch,
            max_wait_ms=config.max_wait_ms,
            max_queue=config.max_queue,
        )
        # persistent engine state — this is the point of the service.
        # The cache exists even with a worker pool: the pooled run_batch
        # compiles in the parent and ships packed payloads, so the
        # server's cache (and its stats) serves both execution modes.
        self.pool = None
        self.cache: GraphCache = GraphCache(
            capacity=config.capacity, cache_dir=config.cache_dir
        )
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-engine"
        )
        self._server: asyncio.AbstractServer | None = None
        self._batcher_task: asyncio.Task | None = None
        self._bg_tasks: list[asyncio.Task] = []
        self._conns: set[_Conn] = set()
        self._replies: set[asyncio.Task] = set()
        self._draining = False
        self._t0 = time.monotonic()
        # every counter and latency sample lives in one registry so the
        # metrics op, the stats op, and in-process readers agree by
        # construction (no parallel bookkeeping to drift)
        self.registry = MetricsRegistry()
        self._c = {
            name: self.registry.counter(f"service.jobs.{name}")
            for name in JOB_COUNTERS
        }
        self._h = {
            stage: self.registry.histogram(f"service.latency_ms.{stage}")
            for stage in LATENCY_STAGES
        }
        # the tiering JIT: hotness-driven per-graph tier promotion.
        # Shares the server registry so tiering.* counters show up in
        # the metrics op alongside everything else.
        self.tiering: TierController | None = None
        if config.tiering:
            self.tiering = TierController(
                TieringConfig(
                    entry_tier=config.tier_entry,
                    max_tier=config.tier_max,
                    thresholds=tuple(config.tier_thresholds),
                    demote_ratio=config.tier_demote_ratio,
                    prewarm=config.tier_prewarm,
                ),
                registry=self.registry,
                cache=self.cache,
            )

    # read-only views of the job-outcome counters (handy in tests/tools)
    @property
    def submitted(self) -> int:
        return self._c["submitted"].value

    @property
    def completed(self) -> int:
        return self._c["completed"].value

    @property
    def failed(self) -> int:
        return self._c["failed"].value

    @property
    def rejected(self) -> int:
        return self._c["rejected"].value

    @property
    def expired(self) -> int:
        return self._c["expired"].value

    @property
    def cancelled(self) -> int:
        return self._c["cancelled"].value

    @property
    def jobs_cache_hit(self) -> int:
        return self._c["cache_hit"].value

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        cfg = self.config
        if cfg.snapshot_dir is not None:
            # come up warm *before* accepting connections: the first
            # resubmission of any snapshotted graph is a cache hit
            loaded, state = self.cache.restore(cfg.snapshot_dir)
            self.registry.gauge("service.snapshot.restored").set(loaded)
            if self.tiering is not None:
                self.tiering.restore_state(state.get("tiers"))
        if cfg.pool_size > 1:
            self.pool = make_pool(
                cfg.pool_size, cache_dir=cfg.cache_dir, capacity=cfg.capacity
            )
        if cfg.path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_conn, path=cfg.path, limit=cfg.max_line
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_conn, host=cfg.host, port=cfg.port,
                limit=cfg.max_line,
            )
        self._t0 = time.monotonic()
        self._batcher_task = asyncio.create_task(self.batcher.run())
        if self.tiering is not None and cfg.tier_decay_s > 0:
            self._bg_tasks.append(
                asyncio.create_task(self._decay_loop(cfg.tier_decay_s))
            )
        if cfg.snapshot_dir is not None and cfg.snapshot_interval_s > 0:
            self._bg_tasks.append(
                asyncio.create_task(
                    self._snapshot_loop(cfg.snapshot_interval_s)
                )
            )

    async def _decay_loop(self, interval_s: float) -> None:
        while True:
            await asyncio.sleep(interval_s)
            self.tiering.decay()

    async def _snapshot_loop(self, interval_s: float) -> None:
        while True:
            await asyncio.sleep(interval_s)
            # snapshotting pickles entries — off the event loop
            await asyncio.get_running_loop().run_in_executor(
                None, self.write_snapshot
            )

    def write_snapshot(self) -> int:
        """Blocking: persist cache entries + tier state to the
        configured snapshot dir.  Returns entries committed."""
        if self.config.snapshot_dir is None:
            return 0
        state = {}
        if self.tiering is not None:
            state["tiers"] = self.tiering.state_blob()
        n = self.cache.snapshot(self.config.snapshot_dir, state=state)
        self.registry.counter("service.snapshot.writes").inc()
        self.registry.gauge("service.snapshot.entries").set(n)
        return n

    @property
    def endpoint(self) -> dict:
        """Where the server actually listens (resolves ephemeral ports)."""
        if self.config.path is not None:
            return {"path": self.config.path}
        assert self._server is not None and self._server.sockets
        host, port = self._server.sockets[0].getsockname()[:2]
        return {"host": host, "port": port}

    def begin_shutdown(self) -> None:
        """Start the graceful drain; idempotent, safe from signal handlers
        running on the event loop."""
        if self._draining:
            return
        self._draining = True
        self.batcher.close()

    async def serve_forever(self) -> None:
        """Serve until :meth:`begin_shutdown` (or a client ``shutdown``
        op), then drain all accepted jobs and tear down."""
        assert self._batcher_task is not None, "call start() first"
        await self._batcher_task  # returns once closed AND drained
        # every accepted job has a reply task by now; deliver them all
        # before tearing connections down (the zero-lost-results contract)
        while self._replies:
            await asyncio.gather(*list(self._replies),
                                 return_exceptions=True)
        for task in self._bg_tasks:
            task.cancel()
        if self._bg_tasks:
            await asyncio.gather(*self._bg_tasks, return_exceptions=True)
        if self.config.snapshot_dir is not None:
            # on-drain snapshot: the restart comes up exactly as warm
            # as this process was when it stopped accepting work
            await asyncio.get_running_loop().run_in_executor(
                None, self.write_snapshot
            )
        await self._teardown()

    async def _teardown(self) -> None:
        if self.tiering is not None:
            self.tiering.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._conns):
            conn.alive = False
            with contextlib.suppress(Exception):
                conn.writer.close()
        if self.config.path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.config.path)
        if self.pool is not None:
            self.pool.terminate()
            self.pool.join()
        self._executor.shutdown(wait=False)

    def _post(self, conn: _Conn, frame: dict) -> None:
        """Deliver ``frame`` without awaiting the socket: result frames
        can exceed the transport's high-water mark, and a client that is
        slow to read must stall only its own connection (``conn.lock``
        serializes its frames), never the flush loop.  Tasks are tracked
        so a graceful drain can flush them all before teardown."""
        task = asyncio.get_running_loop().create_task(conn.send(frame))
        self._replies.add(task)
        task.add_done_callback(self._replies.discard)

    # -- engine bridge ----------------------------------------------------

    def _run_jobs(self, jobs: list[BatchJob]):
        """Blocking engine call; runs on the executor thread."""
        if self.tiering is not None:
            # JIT tier assignment: each job that left its tier to the
            # service runs at its graph's current rung (one hit each)
            jobs = [self.tiering.assign(job) for job in jobs]
        if self.pool is not None:
            return run_batch(jobs, pool=self.pool, cache=self.cache)
        return run_batch(jobs, pool_size=1, cache=self.cache)

    async def _run_entries(self, entries: list[_Entry]) -> None:
        """MicroBatcher runner: execute one coalesced batch, reply per
        entry.  Entries that expired or were cancelled while queued never
        reach here (the batcher discards them)."""
        loop = asyncio.get_running_loop()
        now = time.monotonic()
        live = []
        for e in entries:
            if e.state != PENDING:
                continue  # expired in the popleft window
            e.state = RUNNING
            self._h["queue"].observe((now - e.t_submit) * 1e3)
            live.append(e)
        if not live:
            return
        try:
            results = await loop.run_in_executor(
                self._executor, self._run_jobs, [e.job for e in live]
            )
        except Exception as exc:  # engine-level failure (e.g. pool died)
            for e in live:
                if e.state is RUNNING:
                    e.settle()
                    e.state = DONE
                    self._c["failed"].inc()
                    self._post(e.conn, _submit_error(
                        e.req_id, "internal_error", f"{type(exc).__name__}: {exc}"
                    ))
            return
        t_done = time.monotonic()
        for e, br in zip(live, results):
            if e.state is not RUNNING:  # deadline fired mid-run
                continue
            e.settle()
            e.state = DONE
            self._h["compile"].observe(br.compile_time * 1e3)
            self._h["sim"].observe(br.sim_time * 1e3)
            self._h["total"].observe((t_done - e.t_submit) * 1e3)
            if br.ok:
                self._c["completed"].inc()
                if br.cache_hit:
                    self._c["cache_hit"].inc()
            else:
                self._c["failed"].inc()
            if br.trace_id:
                # service-side spans bracket the worker's: time queued
                # before the batch, then the batch the job rode in
                br.spans = br.spans + [
                    Span(br.trace_id, new_span_id(), "", "service.queue",
                         e.t_submit, now).to_wire(),
                    Span(br.trace_id, new_span_id(), "", "service.batch",
                         now, t_done,
                         attrs={"batch_size": len(live)}).to_wire(),
                ]
                tracer.ingest(br.spans)
            frame = {
                "ok": True,
                "op": "submit",
                "id": e.req_id,
                "result": result_to_wire(br),
            }
            if br.trace_id:
                frame["trace_id"] = br.trace_id
            self._post(e.conn, frame)

    # -- connection handling ----------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Conn(writer)
        self._conns.add(conn)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # over-long frame: the stream can't be resynced
                    # mid-line, so tell this client why and close only
                    # its connection — every other connection (and the
                    # batcher) keeps running
                    await conn.send(_error_frame(
                        None, None, "bad_request",
                        f"frame exceeds max_line="
                        f"{self.config.max_line} bytes",
                    ))
                    break
                except ConnectionError:
                    break  # torn connection
                except asyncio.CancelledError:
                    break  # server teardown with the connection open
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    msg = decode(line)
                except ValueError as exc:
                    await conn.send(_error_frame(
                        None, None, "bad_request", f"unparseable frame: {exc}"
                    ))
                    continue
                try:
                    await self._dispatch(conn, msg)
                except Exception as exc:
                    # one hostile/malformed frame must never take down
                    # the connection loop, let alone the server
                    await conn.send(_error_frame(
                        msg.get("op"), msg.get("id"), "internal_error",
                        f"{type(exc).__name__}: {exc}",
                    ))
        finally:
            conn.alive = False
            self._conns.discard(conn)
            # orphaned queued jobs: nobody is left to read the results
            for entry in list(conn.entries.values()):
                if entry.state == PENDING and self.batcher.discard(entry):
                    entry.settle()
                    entry.state = CANCELLED
                    self._c["cancelled"].inc()
            with contextlib.suppress(Exception):
                writer.close()

    async def _dispatch(self, conn: _Conn, msg: dict) -> None:
        op = msg.get("op")
        if op == "submit":
            await self._op_submit(conn, msg)
        elif op == "cancel":
            await self._op_cancel(conn, msg)
        elif op == "stats":
            await conn.send({
                "ok": True,
                "op": "stats",
                "stats": self.stats_snapshot(
                    samples=bool(msg.get("samples"))
                ),
            })
        elif op == "metrics":
            await conn.send({"ok": True, "op": "metrics",
                             "metrics": self.metrics_snapshot()})
        elif op == "tiers":
            await conn.send({"ok": True, "op": "tiers",
                             "tiers": self.tiers_snapshot()})
        elif op == "trace":
            tid = msg.get("trace_id")
            if not isinstance(tid, str) or not tid:
                await conn.send(_error_frame(
                    "trace", msg.get("id"), "bad_request",
                    "trace needs a trace_id string",
                ))
                return
            await conn.send({
                "ok": True,
                "op": "trace",
                "trace_id": tid,
                "spans": [s.to_wire() for s in tracer.spans(tid)],
            })
        elif op == "ping":
            await conn.send({"ok": True, "op": "ping",
                             "version": PROTOCOL_VERSION})
        elif op == "shutdown":
            await conn.send({
                "ok": True,
                "op": "shutdown",
                "draining": self.batcher.depth + self.batcher.in_flight,
            })
            self.begin_shutdown()
        else:
            await conn.send(_error_frame(
                op, msg.get("id"), "bad_request", f"unknown op {op!r}"
            ))

    async def _op_submit(self, conn: _Conn, msg: dict) -> None:
        req_id = msg.get("id")
        if not isinstance(req_id, str) or "job" not in msg:
            await conn.send(_error_frame(
                "submit", req_id, "bad_request",
                "submit needs a string id and a job object",
            ))
            return
        if req_id in conn.entries:
            await conn.send(_submit_error(
                req_id, "bad_request", "duplicate in-flight request id"
            ))
            return
        try:
            job = job_from_wire(msg["job"])
        except Exception as exc:
            await conn.send(_submit_error(
                req_id, "bad_request", f"malformed job: {exc}"
            ))
            return
        if self._draining:
            await conn.send(_submit_error(
                req_id, "shutting_down", "server is draining"
            ))
            return
        # every accepted job gets a trace id: frame-level wins (lets a
        # client correlate across services), then the job's own, else a
        # fresh one — the reply frame echoes whichever was used
        trace_id = msg.get("trace_id") or job.trace_id or new_trace_id()
        if job.trace_id != trace_id:
            job = replace(job, trace_id=trace_id)
        entry = _Entry(conn, req_id, job)
        if not self.batcher.offer(entry):
            self._c["rejected"].inc()
            await conn.send(_submit_error(
                req_id, "queue_full",
                f"queue at max_queue={self.config.max_queue}",
                queue_depth=self.batcher.depth,
            ))
            return
        self._c["submitted"].inc()
        conn.entries[req_id] = entry
        deadline_ms = msg.get("deadline_ms")
        if deadline_ms is not None:
            loop = asyncio.get_running_loop()
            entry.deadline_handle = loop.call_later(
                max(0.0, float(deadline_ms)) / 1000.0, self._expire, entry
            )

    def _expire(self, entry: _Entry) -> None:
        if entry.state == PENDING:
            self.batcher.discard(entry)
        elif entry.state != RUNNING:
            return
        entry.settle()
        entry.state = EXPIRED
        self._c["expired"].inc()
        self._post(entry.conn, _submit_error(
            entry.req_id, "deadline_expired",
            "deadline passed before a result was ready",
        ))

    async def _op_cancel(self, conn: _Conn, msg: dict) -> None:
        req_id = msg.get("id")
        entry = conn.entries.get(req_id) if isinstance(req_id, str) else None
        found = entry is not None and entry.state == PENDING \
            and self.batcher.discard(entry)
        if found:
            entry.settle()
            entry.state = CANCELLED
            self._c["cancelled"].inc()
            await conn.send(_submit_error(
                req_id, "cancelled", "cancelled by client"
            ))
        await conn.send({
            "ok": True, "op": "cancel", "id": req_id, "found": bool(found),
        })

    # -- stats / metrics ---------------------------------------------------

    def stats_snapshot(self, samples: bool = False) -> dict:
        """Service stats.  With ``samples=True`` each ``latency_ms``
        stage additionally carries its raw sample ring (the metrics
        registry's bounded window) so an aggregator — the fleet router —
        can compute *exact* percentiles over pooled samples instead of
        averaging per-shard percentiles."""
        uptime = time.monotonic() - self._t0
        done = self.completed + self.failed
        cache: dict = {
            "jobs_hit": self.jobs_cache_hit,
            "jobs_done": done,
            "hit_rate": self.jobs_cache_hit / done if done else 0.0,
        }
        if self.cache is not None:
            cs = self.cache.stats
            cache["engine"] = {
                "memory_hits": cs.hits,
                "disk_hits": cs.disk_hits,
                "compiles": cs.misses,
                "entries": len(self.cache),
            }
        return {
            "uptime_s": uptime,
            "draining": self._draining,
            "queue_depth": self.batcher.depth,
            "in_flight": self.batcher.in_flight,
            "max_queue": self.config.max_queue,
            "max_batch": self.config.max_batch,
            "max_wait_ms": self.config.max_wait_ms,
            "pool_size": self.config.pool_size,
            "batches": self.batcher.batches,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "expired": self.expired,
            "cancelled": self.cancelled,
            "jobs_per_s": done / uptime if uptime > 0 else 0.0,
            "cache": cache,
            "latency_ms": {
                stage: self._stage_summary(h, samples)
                for stage, h in self._h.items()
            },
        }

    @staticmethod
    def _stage_summary(h, with_samples: bool) -> dict:
        ring = h.samples()
        out = LatencySummary.from_samples(ring).to_json()
        if with_samples:
            out["samples"] = [float(x) for x in ring]
        return out

    def tiers_snapshot(self) -> dict:
        """The ``tiers`` op payload: controller state plus the snapshot
        configuration, or ``{"enabled": False}`` when tiering is off."""
        if self.tiering is None:
            out = {"enabled": False}
        else:
            out = self.tiering.snapshot()
        out["snapshot"] = {
            "dir": self.config.snapshot_dir,
            "interval_s": self.config.snapshot_interval_s,
            "writes": int(
                self.registry.counter("service.snapshot.writes").value
            ),
            "restored": int(
                self.registry.gauge("service.snapshot.restored").value
            ),
        }
        return out

    def metrics_snapshot(self) -> dict:
        """Full registry dump for the ``metrics`` op.  Point-in-time
        gauges (queue depth, engine cache state) are refreshed here so
        the snapshot is self-consistent."""
        self.registry.gauge("service.queue_depth").set(self.batcher.depth)
        self.registry.gauge("service.in_flight").set(self.batcher.in_flight)
        self.registry.gauge("service.batches").set(self.batcher.batches)
        self.registry.gauge("service.uptime_s").set(
            time.monotonic() - self._t0
        )
        if self.cache is not None:
            cs = self.cache.stats
            self.registry.gauge("engine.cache.memory_hits").set(cs.hits)
            self.registry.gauge("engine.cache.disk_hits").set(cs.disk_hits)
            self.registry.gauge("engine.cache.compiles").set(cs.misses)
            self.registry.gauge("engine.cache.disk_writes").set(
                cs.disk_writes
            )
            self.registry.gauge("engine.cache.entries").set(len(self.cache))
        return self.registry.snapshot()


# -- frame helpers ----------------------------------------------------------


def _error_frame(op, req_id, code: str, detail: str) -> dict:
    frame = {"ok": False, "op": op, "error": code, "detail": detail}
    if req_id is not None:
        frame["id"] = req_id
    return frame


def _submit_error(req_id, code: str, detail: str, **extra) -> dict:
    frame = _error_frame("submit", req_id, code, detail)
    frame.update(extra)
    return frame


async def serve(config: ServiceConfig) -> ServiceServer:
    """Start a server on the current event loop; caller awaits
    :meth:`ServiceServer.serve_forever`."""
    server = ServiceServer(config)
    await server.start()
    return server
