"""Host a ServiceServer on a background thread — the harness tests, the
throughput bench, and interactive experiments all use this instead of
spawning a subprocess: same-process servers are fast to start, share
coverage/tracebacks, and still exercise the real socket transport.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import shutil
import tempfile
import threading

from .server import ServiceConfig, ServiceServer

#: conservative bound for AF_UNIX sun_path (the kernel limit is ~108
#: bytes including the NUL; macOS is 104)
_SUN_PATH_MAX = 100


def ephemeral_socket_path(label: str = "svc") -> str:
    """Allocate a short, collision-free UNIX socket path.

    pytest's ``tmp_path`` nests the test id into the directory name, so
    socket paths built from it can silently cross the kernel's sun_path
    limit and fail to bind with ENAMETOOLONG — but only under long test
    names or deep CI workspaces, which is exactly the kind of
    machine-dependent flake this helper exists to kill.  The returned
    path is *always* inside a fresh ``mkdtemp`` directory dedicated to
    this socket (even on the long-TMPDIR fallback), so callers may
    safely remove ``dirname(path)`` on teardown; callers that want
    automatic cleanup should prefer :func:`running_server` with no
    endpoint, which does exactly that.
    """
    d = tempfile.mkdtemp(prefix="repro-sock-")
    path = os.path.join(d, f"{label}.sock")
    if len(path.encode()) > _SUN_PATH_MAX:  # pathological TMPDIR
        os.rmdir(d)
        d = tempfile.mkdtemp(prefix="r-", dir="/tmp")
        path = os.path.join(d, "s.sock")
    return path


class ServerThread:
    """Run one server on a dedicated event-loop thread.

    ``start()`` blocks until the socket is listening and returns the
    endpoint kwargs for a client (``{"path": ...}`` or ``{"host": ...,
    "port": ...}``); ``stop()`` triggers the graceful drain and joins.
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.server: ServiceServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(target=self._main, daemon=True)

    def _main(self) -> None:
        async def body():
            self.server = ServiceServer(self.config)
            try:
                await self.server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                raise
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self.server.serve_forever()

        try:
            asyncio.run(body())
        except BaseException as exc:
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()

    def start(self, timeout: float = 10.0) -> dict:
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("service did not start listening in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"service failed to start: {self._startup_error!r}"
            )
        return self.server.endpoint

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.begin_shutdown)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError("service did not drain and exit in time")


@contextlib.contextmanager
def running_server(config: ServiceConfig | None = None, **kwargs):
    """``with running_server(max_queue=4) as (endpoint, server): ...`` —
    endpoint kwargs feed straight into a ServiceClient.

    With no explicit endpoint (no ``path``/``port`` and no config), the
    server binds an ephemeral short-path UNIX socket and removes it —
    directory included — on exit.  This is the one true way to stand up
    a test server; hand-built ``tmp_path / "x.sock"`` paths risk the
    sun_path limit (see :func:`ephemeral_socket_path`).
    """
    ephemeral_dir = None
    if config is None:
        if "path" not in kwargs and "port" not in kwargs:
            kwargs["path"] = ephemeral_socket_path()
            ephemeral_dir = os.path.dirname(kwargs["path"])
        config = ServiceConfig(**kwargs)
    elif kwargs:
        raise TypeError("pass either a config or keyword fields, not both")
    host = ServerThread(config)
    endpoint = host.start()
    try:
        yield endpoint, host.server
    finally:
        host.stop()
        if ephemeral_dir is not None and ephemeral_dir not in (
            "/", "/tmp", tempfile.gettempdir()
        ):
            shutil.rmtree(ephemeral_dir, ignore_errors=True)
