"""The paper's core contribution: translating imperative programs into
dataflow graphs (Schemas 1-3 plus the Section 4 optimized construction and
the Section 6 parallelizing transformations).

Start at :func:`compile_program` / :func:`run_source`.
"""

from .streams import (
    Stream,
    cover_streams,
    per_variable_streams,
    single_stream,
    streams_for,
    value_streams,
)
from .allpaths import Translation, translate_allpaths
from .optimized import translate_optimized
from .switch_placement import count_physical_switches, switch_placement
from .source_vectors import SourceVectors, compute_source_vectors
from .transforms import forward_stores, parallelize_reads
from .redundant_elim import eliminate_redundant_switches, sweep_dead_value_nodes
from .array_parallel import (
    ArrayParallelReport,
    parallelize_array_stores,
    promote_write_once_arrays,
)
from .verify import OPTIMIZED_SCHEMAS, VERIFIERS, CertificateError
from .passes import (
    Certificate,
    Pass,
    PassContext,
    PassManager,
    build_passes,
    verify_pass_log,
)
from .pipeline import (
    SCHEMAS,
    CompileOptions,
    CompiledProgram,
    compile_program,
    run_source,
    simulate,
)

__all__ = [
    "ArrayParallelReport",
    "Certificate",
    "CertificateError",
    "CompileOptions",
    "CompiledProgram",
    "OPTIMIZED_SCHEMAS",
    "Pass",
    "PassContext",
    "PassManager",
    "SCHEMAS",
    "SourceVectors",
    "Stream",
    "Translation",
    "VERIFIERS",
    "build_passes",
    "compile_program",
    "compute_source_vectors",
    "count_physical_switches",
    "cover_streams",
    "eliminate_redundant_switches",
    "forward_stores",
    "parallelize_array_stores",
    "parallelize_reads",
    "per_variable_streams",
    "promote_write_once_arrays",
    "run_source",
    "simulate",
    "single_stream",
    "streams_for",
    "sweep_dead_value_nodes",
    "switch_placement",
    "translate_allpaths",
    "translate_optimized",
    "value_streams",
    "verify_pass_log",
]
