"""All-paths wiring: Schemas 1, 2 and base Schema 3.

Every stream's token follows every control-flow path: each fork switches
every stream, each join merges every stream, each loop control carries
every stream.  With the single Schema-1 stream this implements sequential
semantics (Figure 5); with per-variable streams it is exactly Figure 8's
Schema 2 graph; with cover streams it is base Schema 3.

The start->end convention edge carries no tokens (it exists only for the
control-dependence analysis), so wiring skips it: start's seeds all enter
the program along its True edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.graph import CFG, Edge, NodeKind
from ..cfg.intervals import Loop
from ..dfg.graph import DFGraph, Port
from ..dfg.nodes import OpKind, Seed
from .blocks import StatementTranslator
from .streams import Stream


@dataclass
class Translation:
    """A translated program graph plus provenance."""

    graph: DFGraph
    streams: list[Stream]
    node_map: dict[int, list[int]] = field(default_factory=dict)
    # per CFG fork id: stream name -> switch DF node id
    switches: dict[int, dict[str, int]] = field(default_factory=dict)


def _edge_key(e: Edge) -> tuple:
    return (e.src, e.dst, e.direction is not None, bool(e.direction))


def _real_in_edges(cfg: CFG, nid: int) -> list[Edge]:
    """In-edges excluding the start->end convention edge."""
    return sorted(
        (
            e
            for e in cfg.in_edges(nid)
            if not (
                e.src == cfg.entry
                and e.dst == cfg.exit
                and e.direction is False
            )
        ),
        key=_edge_key,
    )


def translate_allpaths(
    cfg: CFG,
    streams: list[Stream],
    loops: list[Loop] | None = None,
) -> Translation:
    """Translate a CFG where every stream follows every control path."""
    loops = loops or []
    loop_by_entry = {lp.entry_node: lp for lp in loops}
    loop_bodies = {lp.id: lp.body for lp in loops}

    g = DFGraph()
    t = Translation(graph=g, streams=streams)
    snames = [s.name for s in streams]

    if not streams:
        # degenerate: a program with no variables computes nothing observable
        g.add(OpKind.START, seeds=())
        g.add(OpKind.END, returns=())
        return t

    def seed_for(s: Stream) -> Seed:
        if s.carries_value:
            return Seed("value", next(iter(s.members)))
        return Seed("access", s.name)

    start = g.add(OpKind.START, seeds=tuple(seed_for(s) for s in streams))
    end = g.add(
        OpKind.END,
        returns=tuple(
            next(iter(s.members)) if s.carries_value else None
            for s in streams
        ),
    )

    # ---- phase A: interface nodes (merges, loop controls, end) ----------
    # edge_target[(edge, stream)] -> (df node, input port) the producer
    # should connect into;  block_input[(cfg node, stream)] -> Port
    edge_target: dict[tuple[Edge, str], tuple[int, int]] = {}
    block_input: dict[tuple[int, str], Port] = {}

    for nid in sorted(cfg.nodes):
        node = cfg.node(nid)
        ins = _real_in_edges(cfg, nid)
        if node.kind is NodeKind.JOIN:
            for s in snames:
                merge = g.add(OpKind.MERGE, nports=len(ins), tag=f"join{nid}:{s}")
                t.node_map.setdefault(nid, []).append(merge.id)
                for i, e in enumerate(ins):
                    edge_target[(e, s)] = (merge.id, i)
                block_input[(nid, s)] = Port(merge.id, 0)
        elif node.kind is NodeKind.LOOP_ENTRY:
            lp = loop_by_entry[nid]
            body = loop_bodies[lp.id]
            ext = [e for e in ins if e.src not in body]
            back = [e for e in ins if e.src in body]
            le = g.add(
                OpKind.LOOP_ENTRY,
                loop_id=lp.id,
                nchannels=len(streams),
                channel_labels=tuple(snames),
                tag=f"cfg{nid}",
            )
            t.node_map.setdefault(nid, []).append(le.id)
            n = len(streams)
            for ci, s in enumerate(streams):
                for group, base in ((ext, ci), (back, n + ci)):
                    if len(group) == 1:
                        edge_target[(group[0], s.name)] = (le.id, base)
                    elif len(group) > 1:
                        m = g.add(
                            OpKind.MERGE,
                            nports=len(group),
                            tag=f"le{nid}:{s.name}",
                        )
                        t.node_map.setdefault(nid, []).append(m.id)
                        for i, e in enumerate(group):
                            edge_target[(e, s.name)] = (m.id, i)
                        g.connect(
                            Port(m.id, 0), le.id, base,
                            is_access=not s.carries_value,
                        )
                block_input[(nid, s.name)] = Port(le.id, ci)
        elif node.kind is NodeKind.END:
            for port, s in enumerate(streams):
                if len(ins) == 1:
                    edge_target[(ins[0], s.name)] = (end.id, port)
                else:
                    m = g.add(OpKind.MERGE, nports=len(ins), tag=f"end:{s.name}")
                    for i, e in enumerate(ins):
                        edge_target[(e, s.name)] = (m.id, i)
                    g.connect(
                        Port(m.id, 0), end.id, port,
                        is_access=not s.carries_value,
                    )

    # ---- phase B: translate nodes in reverse postorder -------------------
    # edge_out[(edge, stream)] -> producer Port, for edges into single-pred
    # consumers processed later.
    edge_out: dict[tuple[Edge, str], Port] = {}

    def deliver(e: Edge, s: Stream, port: Port) -> None:
        key = (e, s.name)
        if key in edge_target:
            dn, dp = edge_target[key]
            g.connect(port, dn, dp, is_access=not s.carries_value)
        else:
            edge_out[key] = port

    def inputs_for(nid: int) -> dict[str, Port]:
        node = cfg.node(nid)
        if node.kind in (NodeKind.JOIN, NodeKind.LOOP_ENTRY):
            return {s: block_input[(nid, s)] for s in snames}
        ins = _real_in_edges(cfg, nid)
        if len(ins) != 1:
            raise AssertionError(
                f"node {nid} ({node.kind}) expected single pred, has {len(ins)}"
            )
        (e,) = ins
        return {s: edge_out[(e, s)] for s in snames}

    order = cfg.reverse_postorder()
    for nid in order:
        node = cfg.node(nid)
        kind = node.kind
        out_edges = sorted(
            (
                e
                for e in cfg.out_edges(nid)
                if not (
                    e.src == cfg.entry
                    and e.dst == cfg.exit
                    and e.direction is False
                )
            ),
            key=_edge_key,
        )
        if kind is NodeKind.START:
            (true_edge,) = out_edges
            for i, s in enumerate(streams):
                deliver(true_edge, s, Port(start.id, i))
        elif kind is NodeKind.END:
            continue
        elif kind is NodeKind.ASSIGN:
            inc = inputs_for(nid)
            st = StatementTranslator(g, streams, inc, tag=f"cfg{nid}")
            res = st.translate_assign(node)
            t.node_map.setdefault(nid, []).extend(res.created)
            (e,) = out_edges
            for s in streams:
                deliver(e, s, res.outgoing[s.name])
        elif kind is NodeKind.FORK:
            inc = inputs_for(nid)
            st = StatementTranslator(g, streams, inc, tag=f"cfg{nid}")
            res = st.translate_fork(node)
            t.node_map.setdefault(nid, []).extend(res.created)
            true_edges = [e for e in out_edges if e.direction is True]
            false_edges = [e for e in out_edges if e.direction is False]
            t.switches[nid] = {}
            for s in streams:
                sw = g.add(OpKind.SWITCH, tag=f"cfg{nid}:{s.name}")
                t.node_map.setdefault(nid, []).append(sw.id)
                t.switches[nid][s.name] = sw.id
                g.connect(
                    res.outgoing[s.name], sw.id, 0,
                    is_access=not s.carries_value,
                )
                g.connect(res.pred_port, sw.id, 1)
                for e in true_edges:
                    deliver(e, s, Port(sw.id, 0))
                for e in false_edges:
                    deliver(e, s, Port(sw.id, 1))
        elif kind is NodeKind.JOIN:
            (e,) = out_edges
            for s in streams:
                deliver(e, s, block_input[(nid, s.name)])
        elif kind is NodeKind.LOOP_ENTRY:
            (e,) = out_edges
            for s in streams:
                deliver(e, s, block_input[(nid, s.name)])
        elif kind is NodeKind.LOOP_EXIT:
            inc = inputs_for(nid)
            lx = g.add(
                OpKind.LOOP_EXIT,
                loop_id=node.loop_id,
                nchannels=len(streams),
                channel_labels=tuple(snames),
                tag=f"cfg{nid}",
            )
            t.node_map.setdefault(nid, []).append(lx.id)
            for ci, s in enumerate(streams):
                g.connect(
                    inc[s.name], lx.id, ci, is_access=not s.carries_value
                )
            (e,) = out_edges
            for ci, s in enumerate(streams):
                deliver(e, s, Port(lx.id, ci))
        else:
            raise TypeError(f"cannot translate node kind {kind}")

    g.validate(allow_dangling_outputs=True)
    return t
