"""Section 6.3, Figure 14: parallelizing array stores across iterations.

For a loop whose only reference to array ``a`` is a single store with a
subscript affine in a basic induction variable (so distinct iterations hit
distinct elements — checked by
:func:`~repro.analysis.array_dep.store_is_iteration_independent`), the
access token for ``a`` need not wait for each store to complete:

* the incoming token is *duplicated*: one copy proceeds immediately to the
  next iteration, the other fires the store (Figure 14(b));
* a second *completion* channel circulates through the loop, synchronizing
  with each store's completion, so the token that finally leaves the loop
  is not generated "until all stores have completed" (Figure 14(c)).

Also here: the write-once/I-structure variant — if the array is write-once,
its element ops become ISTORE/ILOAD on I-structure memory and reads may
proceed concurrently with writes (deferred reads).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.array_dep import array_is_write_once, store_is_iteration_independent
from ..cfg.graph import CFG, NodeKind
from ..cfg.intervals import Loop
from ..dfg.graph import Port
from ..dfg.nodes import OpKind
from .allpaths import Translation


@dataclass(frozen=True)
class ArrayParallelReport:
    """What the transform did (for benches and tests)."""

    pipelined: tuple[tuple[int, str], ...]  # (loop id, array)
    skipped: tuple[tuple[int, str, str], ...]  # (loop id, array, reason)


def _find_created(t: Translation, cfg_nid: int, kind: OpKind, var: str) -> int | None:
    for did in t.node_map.get(cfg_nid, []):
        node = t.graph.nodes.get(did)
        if node is not None and node.kind is kind and node.var == var:
            return did
    return None


def parallelize_array_stores(
    t: Translation, cfg: CFG, loops: list[Loop]
) -> ArrayParallelReport:
    """Apply the Figure 14 rewrite to every qualifying (loop, array store).

    Requirements beyond iteration independence (all checked; failures are
    reported, not fatal):

    * the array's access stream governs only the array (unaliased), and
    * the loop wiring is simple: the stream's backedge into the loop entry
      comes straight from one switch (single backedge), and the loop has
      its channel on a single loop exit.
    """
    g = t.graph
    pipelined: list[tuple[int, str]] = []
    skipped: list[tuple[int, str, str]] = []

    for lp in loops:
        stores = [
            nid
            for nid in sorted(lp.body)
            if cfg.node(nid).kind is NodeKind.ASSIGN
            and cfg.node(nid).stores()
        ]
        arrays_here = {
            next(iter(cfg.node(nid).stores()))
            for nid in stores
            if _find_created(t, nid, OpKind.ASTORE, next(iter(cfg.node(nid).stores())))
        }
        for arr in sorted(arrays_here):
            store_nodes = [
                nid
                for nid in stores
                if cfg.node(nid).stores() == {arr}
            ]
            if len(store_nodes) != 1:
                skipped.append((lp.id, arr, "multiple stores"))
                continue
            (snid,) = store_nodes
            if not store_is_iteration_independent(cfg, lp, snid):
                skipped.append((lp.id, arr, "not iteration independent"))
                continue
            stream = next(
                (s for s in t.streams if s.governs == frozenset({arr})), None
            )
            if stream is None or stream.carries_value:
                skipped.append((lp.id, arr, "array stream aliased"))
                continue
            ok, reason = _rewrite_one(t, cfg, lp, snid, arr, stream.name)
            if ok:
                pipelined.append((lp.id, arr))
            else:
                skipped.append((lp.id, arr, reason))
    return ArrayParallelReport(tuple(pipelined), tuple(skipped))


def _rewrite_one(
    t: Translation, cfg: CFG, lp: Loop, store_cfg: int, arr: str, sname: str
) -> tuple[bool, str]:
    g = t.graph
    le_id = _find_created(t, lp.entry_node, OpKind.LOOP_ENTRY, None) or next(
        (
            did
            for did in t.node_map.get(lp.entry_node, [])
            if g.nodes.get(did) is not None
            and g.node(did).kind is OpKind.LOOP_ENTRY
        ),
        None,
    )
    if le_id is None:
        return False, "no loop entry node in graph"
    le = g.node(le_id)
    if sname not in le.channel_labels:
        return False, "loop entry does not carry the array stream"
    ci = le.channel_labels.index(sname)
    n = le.nchannels

    if len(lp.exit_nodes) != 1:
        return False, "loop has multiple exits"
    lx_id = next(
        (
            did
            for did in t.node_map.get(lp.exit_nodes[0], [])
            if g.nodes.get(did) is not None
            and g.node(did).kind is OpKind.LOOP_EXIT
        ),
        None,
    )
    if lx_id is None:
        return False, "no loop exit node in graph"
    lx = g.node(lx_id)
    if sname not in lx.channel_labels:
        return False, "loop exit does not carry the array stream"
    lx_ci = lx.channel_labels.index(sname)

    astore_id = _find_created(t, store_cfg, OpKind.ASTORE, arr)
    if astore_id is None:
        return False, "no ASTORE in graph"

    # the stream's backedge must come straight from one switch
    back_arc = g.producer(le_id, n + ci)
    if back_arc is None:
        return False, "backedge channel unconnected"
    back_switch = g.node(back_arc.src)
    if back_switch.kind is not OpKind.SWITCH or back_arc.src_port != 0:
        return False, "backedge is not a single switch True-output"
    pred_arc = g.producer(back_switch.id, 1)
    assert pred_arc is not None
    pred_src = Port(pred_arc.src, pred_arc.src_port)

    entry_arc = g.producer(le_id, ci)
    if entry_arc is None:
        return False, "entry channel unconnected"
    entry_src = Port(entry_arc.src, entry_arc.src_port)

    store_acc_in = g.producer(astore_id, 2)
    assert store_acc_in is not None
    store_acc_src = Port(store_acc_in.src, store_acc_in.src_port)
    # The completion may fan out (stream continuation plus constant
    # triggers); for an unaliased array every consumer is a continuation of
    # this stream, so all of them take the fast-forwarded token instead.
    store_out_arcs = g.consumers(astore_id, 0)

    # ---- expand LE with a completion channel (shift back ports by one) ---
    old_back_arcs = [
        (p, g.producer(le_id, p)) for p in range(n, 2 * n)
    ]
    for _, a in old_back_arcs:
        if a is not None:
            g.disconnect(a)
    le.nchannels = n + 1
    le.channel_labels = le.channel_labels + (f"~done:{arr}",)
    for p, a in old_back_arcs:
        if a is not None:
            g.connect(Port(a.src, a.src_port), le_id, p + 1, is_access=True)
    done_entry_port = n  # new entry-side port
    done_back_port = 2 * n + 1  # new back-side port
    done_channel_out = n  # new output channel

    # LX gains a channel (no shifting needed: back ports don't exist there)
    lx.nchannels = lx.nchannels + 1
    lx.channel_labels = lx.channel_labels + (f"~done:{arr}",)
    lx_done_in = lx.nchannels - 1

    # ---- seed the completion token alongside the array token -------------
    g.connect(entry_src, le_id, done_entry_port, is_access=True)

    # ---- duplicate the access token at the store (Figure 14(b)) ----------
    g.disconnect(store_acc_in)
    for a in store_out_arcs:
        g.disconnect(a)
        # fast path: the token proceeds without waiting for the store
        g.connect(store_acc_src, a.dst, a.dst_port, is_access=True)
    # the store consumes a duplicate
    g.connect(store_acc_src, astore_id, 2, is_access=True)

    # ---- completion channel: synch with this iteration's store -----------
    sd = g.add(OpKind.SYNCH, nports=2, tag=f"fig14-done:{arr}")
    g.connect(Port(le_id, done_channel_out), sd.id, 0, is_access=True)
    g.connect(Port(astore_id, 0), sd.id, 1, is_access=True)
    swd = g.add(OpKind.SWITCH, tag=f"fig14-switch:{arr}")
    g.connect(Port(sd.id, 0), swd.id, 0, is_access=True)
    g.connect(pred_src, swd.id, 1)
    g.connect(Port(swd.id, 0), le_id, done_back_port, is_access=True)
    g.connect(Port(swd.id, 1), lx_id, lx_done_in, is_access=True)

    # ---- after the loop: both channels must have arrived ------------------
    exit_arcs = g.consumers(lx_id, lx_ci)
    for a in exit_arcs:
        g.disconnect(a)
    se = g.add(OpKind.SYNCH, nports=2, tag=f"fig14-exit:{arr}")
    g.connect(Port(lx_id, lx_ci), se.id, 0, is_access=True)
    g.connect(Port(lx_id, lx_done_in), se.id, 1, is_access=True)
    for a in exit_arcs:
        g.connect(Port(se.id, 0), a.dst, a.dst_port, is_access=True)

    g.validate(allow_dangling_outputs=True)
    return True, ""


def _reads_strictly_after_writing_loops(
    cfg: CFG, loops: list[Loop], arr: str
) -> bool:
    """Promotion soundness gate: I-structure reads see *the* write to an
    element regardless of program order, so a read that sequentially
    precedes a write to the same array would change meaning (it must read
    the initial 0).  Require every read of the array to execute after
    every writing loop: the read is outside the loop body and dominated by
    the loop's entry (once control leaves a loop, all its iterations —
    hence all its writes — are done)."""
    from ..analysis.dominance import dominator_tree
    from ..lang.ast_nodes import ArrayRef as AR

    writing = [
        lp
        for lp in loops
        if any(
            cfg.node(n).kind is NodeKind.ASSIGN
            and isinstance(cfg.node(n).target, AR)
            and cfg.node(n).target.name == arr
            for n in lp.body
        )
    ]
    if not writing:
        return True
    dom = dominator_tree(cfg)
    read_nodes = [
        n
        for n in cfg.nodes
        if cfg.node(n).kind in (NodeKind.ASSIGN, NodeKind.FORK)
        and arr in cfg.node(n).loads()
    ]
    for r in read_nodes:
        for lp in writing:
            if r in lp.body or r == lp.entry_node or r in lp.exit_nodes:
                return False
            if not dom.dominates(lp.entry_node, r):
                return False
    return True


def promote_write_once_arrays(
    t: Translation, cfg: CFG, loops: list[Loop], arrays: list[str]
) -> list[str]:
    """Section 6.3's further enhancement: write-once arrays move to
    I-structure memory.  Element stores become ISTOREs (unordered — the
    single-assignment property makes ordering irrelevant), element loads
    become ILOADs whose read is deferred by the memory until the write
    arrives; the access token no longer gates reads at all.

    Returns the promoted array names; the caller must allocate them in
    :class:`~repro.machine.IStructureMemory` instead of data memory.
    """
    g = t.graph
    promoted: list[str] = []
    for arr in arrays:
        if not array_is_write_once(cfg, loops, arr):
            continue
        if not _reads_strictly_after_writing_loops(cfg, loops, arr):
            continue
        aloads = [
            n.id for n in g.nodes.values() if n.kind is OpKind.ALOAD and n.var == arr
        ]
        astores = [
            n.id for n in g.nodes.values() if n.kind is OpKind.ASTORE and n.var == arr
        ]
        for nid in astores:
            node = g.node(nid)
            acc_in = g.producer(nid, 2)
            assert acc_in is not None
            g.disconnect(acc_in)
            # ISTORE: in (index, value) = old ports 0,1; out done = old out 0.
            node.kind = OpKind.ISTORE
            # the incoming access token simply is not consumed here anymore;
            # the done signal feeds the old continuation unchanged
        for nid in aloads:
            node = g.node(nid)
            acc_in = g.producer(nid, 1)
            assert acc_in is not None
            src = Port(acc_in.src, acc_in.src_port)
            g.disconnect(acc_in)
            cont = g.consumers(nid, 1)
            for a in cont:
                g.disconnect(a)
                g.connect(src, a.dst, a.dst_port, is_access=True)
            node.kind = OpKind.ILOAD
        promoted.append(arr)
    g.validate(allow_dangling_outputs=True)
    return promoted
