"""Per-statement dataflow blocks — the read/compute/write schemas of
Figures 3-4 (Schema 1), 6-7 (Schema 2) and 12-13 (Schema 3).

Shared by every wiring layer.  A statement block receives the current port
of each token stream passing through the statement and returns the updated
ports:

* a memory operation on variable ``v`` *collects* the access tokens of all
  streams governing ``v`` (a synch tree when there is more than one — the
  Schema 3 read block), fires, and its completion token becomes the new
  current port of each collected stream (replication);
* scalar reads become LOADs (one per distinct name), array element reads
  become ALOADs (one per occurrence, nested subscripts handled innermost
  first); the write becomes a STORE/ASTORE;
* for value-carrying streams (memory elimination) the token itself is the
  value: reads use it directly and the write simply replaces the stream's
  outgoing port with the computed value — no memory operators at all;
* constants are triggered by the statement's first incoming token so each
  execution of the statement produces each constant exactly once.

Because every operation threads the collected streams' ports, operations on
overlapping access sets are automatically sequenced while disjoint ones
proceed in parallel — which is the whole point of the paper's Schema 2/3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.graph import CFGNode
from ..dfg.graph import DFGraph, Port
from ..dfg.nodes import OpKind
from ..lang.ast_nodes import ArrayRef, BinOp, Expr, IntLit, UnOp, Var, expr_vars
from .streams import Stream


@dataclass
class BlockResult:
    """Outcome of translating one statement/fork body."""

    outgoing: dict[str, Port]  # stream name -> its new current port
    created: list[int] = field(default_factory=list)
    pred_port: Port | None = None  # forks: the predicate value


class StatementTranslator:
    """Translates one CFG statement node into dataflow operators.

    ``incoming`` maps stream names to the ports currently carrying their
    tokens into this statement.  Streams absent from ``incoming`` do not
    pass through this node (the optimized wiring bypasses them).
    """

    def __init__(
        self,
        g: DFGraph,
        streams: list[Stream],
        incoming: dict[str, Port],
        tag: str = "",
    ):
        self.g = g
        self.streams = streams
        self.by_name = {s.name: s for s in streams}
        self.state = dict(incoming)
        self.created: list[int] = []
        self.tag = tag
        self._trigger: Port | None = None
        # access set per variable, restricted to access streams
        self._access: dict[str, list[Stream]] = {}
        for s in streams:
            if s.carries_value:
                continue
            for v in s.governs:
                self._access.setdefault(v, []).append(s)
        self._value_stream: dict[str, Stream] = {
            v: s for s in streams if s.carries_value for v in s.members
        }

    # -- helpers ------------------------------------------------------------

    def _new(self, kind: OpKind, **payload):
        node = self.g.add(kind, tag=self.tag, **payload)
        self.created.append(node.id)
        return node

    def trigger(self) -> Port:
        """A port delivering exactly one token per execution of this
        statement, used to fire constants."""
        if self._trigger is None:
            for s in self.streams:
                if s.name in self.state:
                    self._trigger = self.state[s.name]
                    break
            else:
                raise ValueError(
                    f"statement {self.tag!r} has no incoming stream to "
                    "trigger constants"
                )
        return self._trigger

    def collect(self, var: str) -> tuple[Port, list[Stream]]:
        """Collect the access tokens of every stream governing ``var``
        (Schema 3's synch tree; a single stream needs no synch).  Returns
        the trigger port for the memory operation and the collected
        streams."""
        needed = [
            s for s in self._access.get(var, []) if s.name in self.state
        ]
        if not needed:
            raise ValueError(
                f"no access stream for variable {var!r} reaches statement "
                f"{self.tag!r} (missing from incoming: bug in wiring layer)"
            )
        if len(needed) == 1:
            return self.state[needed[0].name], needed
        synch = self._new(OpKind.SYNCH, nports=len(needed))
        for i, s in enumerate(needed):
            self.g.connect(self.state[s.name], synch.id, i, is_access=True)
        return Port(synch.id, 0), needed

    def complete(self, done: Port, needed: list[Stream]) -> None:
        """The memory operation's completion token becomes the new current
        port of every collected stream (fan-out replication)."""
        for s in needed:
            self.state[s.name] = done

    # -- reads ---------------------------------------------------------------

    def load_scalar(self, var: str) -> Port:
        """Current value of a scalar: the token itself for value streams, a
        LOAD for access streams."""
        vs = self._value_stream.get(var)
        if vs is not None:
            if vs.name not in self.state:
                raise ValueError(
                    f"value stream {vs.name!r} missing at {self.tag!r}"
                )
            return self.state[vs.name]
        trig, needed = self.collect(var)
        load = self._new(OpKind.LOAD, var=var)
        self.g.connect(trig, load.id, 0, is_access=True)
        self.complete(Port(load.id, 1), needed)
        return Port(load.id, 0)

    def load_array(self, arr: str, index: Port) -> Port:
        trig, needed = self.collect(arr)
        load = self._new(OpKind.ALOAD, var=arr)
        self.g.connect(index, load.id, 0)
        self.g.connect(trig, load.id, 1, is_access=True)
        self.complete(Port(load.id, 1), needed)
        return Port(load.id, 0)

    # -- expression compilation ------------------------------------------------

    def compile_expr(self, e: Expr, env: dict[str, Port]) -> Port:
        if isinstance(e, IntLit):
            c = self._new(OpKind.CONST, value=e.value)
            self.g.connect(self.trigger(), c.id, 0, is_access=True)
            return Port(c.id, 0)
        if isinstance(e, Var):
            return env[e.name]
        if isinstance(e, ArrayRef):
            idx = self.compile_expr(e.index, env)
            return self.load_array(e.name, idx)
        if isinstance(e, BinOp):
            left = self.compile_expr(e.left, env)
            right = self.compile_expr(e.right, env)
            b = self._new(OpKind.BINOP, op=e.op)
            self.g.connect(left, b.id, 0)
            self.g.connect(right, b.id, 1)
            return Port(b.id, 0)
        if isinstance(e, UnOp):
            operand = self.compile_expr(e.operand, env)
            u = self._new(OpKind.UNOP, op=e.op)
            self.g.connect(operand, u.id, 0)
            return Port(u.id, 0)
        raise TypeError(f"unknown expression {type(e).__name__}")

    def _scalar_env(self, exprs: list[Expr]) -> dict[str, Port]:
        """Pre-load every distinct scalar read by the given expressions, in
        first-appearance order.  Array reads happen inline during expression
        compilation (per occurrence)."""
        env: dict[str, Port] = {}
        names: list[str] = []
        for e in exprs:
            for v in expr_vars(e):
                if v not in names:
                    names.append(v)
        scalar_reads = _scalar_read_names(exprs)
        for v in names:
            if v in scalar_reads:
                env[v] = self.load_scalar(v)
        return env

    # -- statement bodies -------------------------------------------------------

    def translate_assign(self, node: CFGNode) -> BlockResult:
        target = node.target
        exprs: list[Expr] = [node.expr]
        if isinstance(target, ArrayRef):
            exprs.append(target.index)
        env = self._scalar_env(exprs)
        value = self.compile_expr(node.expr, env)
        if isinstance(target, ArrayRef):
            idx = self.compile_expr(target.index, env)
            trig, needed = self.collect(target.name)
            store = self._new(OpKind.ASTORE, var=target.name)
            self.g.connect(idx, store.id, 0)
            self.g.connect(value, store.id, 1)
            self.g.connect(trig, store.id, 2, is_access=True)
            self.complete(Port(store.id, 0), needed)
        else:
            var = target.name
            vs = self._value_stream.get(var)
            if vs is not None:
                # memory elimination: the outgoing token IS the new value
                self.state[vs.name] = value
            else:
                trig, needed = self.collect(var)
                store = self._new(OpKind.STORE, var=var)
                self.g.connect(value, store.id, 0)
                self.g.connect(trig, store.id, 1, is_access=True)
                self.complete(Port(store.id, 0), needed)
        return BlockResult(outgoing=dict(self.state), created=self.created)

    def translate_fork(self, node: CFGNode) -> BlockResult:
        env = self._scalar_env([node.pred])
        pred = self.compile_expr(node.pred, env)
        return BlockResult(
            outgoing=dict(self.state),
            created=self.created,
            pred_port=pred,
        )


def _scalar_read_names(exprs: list[Expr]) -> set[str]:
    """Names read as scalars (array names are read per ArrayRef occurrence
    instead)."""
    out: set[str] = set()

    def walk(e: Expr) -> None:
        if isinstance(e, Var):
            out.add(e.name)
        elif isinstance(e, ArrayRef):
            walk(e.index)
        elif isinstance(e, BinOp):
            walk(e.left)
            walk(e.right)
        elif isinstance(e, UnOp):
            walk(e.operand)

    for e in exprs:
        walk(e)
    return out
