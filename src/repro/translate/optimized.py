"""Optimized construction — Section 4.2: build the dataflow graph directly
from switch-placement and source-vector information, with no redundant
switches.

Key consequences of the construction, versus the all-paths Schema 2 wiring:

* a fork generates switches only for streams with a reference site between
  it and its immediate postdominator (CD+, Theorem 1) — a fork needing no
  switches generates *no code at all* (its predicate is dead);
* a fork whose predicate reads a variable but that needs no switch for it
  (Figure 9's ``w``) consumes the token for the read and forwards it,
  unswitched, toward its immediate postdominator;
* merges appear only at joins where a stream has more than one source; a
  single-source join is a wire;
* loop entries/exits carry only the streams the loop references — all
  other tokens bypass the loop entirely on a direct arc (no iteration
  tagging, no switches at the loop's exit fork).
"""

from __future__ import annotations

from ..analysis.dominance import postdominator_tree
from ..cfg.graph import CFG, NodeKind
from ..cfg.intervals import Loop
from ..dfg.graph import DFGraph, Port
from ..dfg.nodes import OpKind, Seed
from .allpaths import Translation, _real_in_edges
from .blocks import StatementTranslator
from .source_vectors import (
    Source,
    SourceVectors,
    compute_source_vectors,
    _src_key,
)
from .streams import Stream
from .switch_placement import switch_placement


def close_carried_streams(
    cfg: CFG, streams: list[Stream], loops: list[Loop]
) -> tuple[CFG, dict[str, frozenset[int]]]:
    """Fixpoint closure of each loop's carried-stream set against switch
    placement.

    A loop must carry a stream not only when its body *references* it but
    also when some fork in its body needs a switch for it — e.g. a variable
    used only in an outer loop whose backedge is decided by a fork inside
    an inner loop: the token's route passes through the inner region and
    must be tagged per inner iteration.  Enlarging a loop's carried set
    makes its entry/exit reference sites, which can create further switch
    needs, hence the iteration (monotone, so it terminates).
    """
    g = cfg.copy()
    carried: dict[int, set[str]] = {
        lp.id: {s.name for s in streams if s.governs & lp.refs}
        for lp in loops
    }
    controls: dict[int, list[int]] = {
        lp.id: [lp.entry_node, *lp.exit_nodes] for lp in loops
    }
    body_forks: dict[int, list[int]] = {
        lp.id: [
            n for n in lp.body if g.node(n).kind is NodeKind.FORK
        ]
        for lp in loops
    }
    while True:
        for lp in loops:
            names = frozenset(carried[lp.id])
            for nid in controls[lp.id]:
                g.node(nid).carried_streams = names
        placement = switch_placement(g, streams)
        changed = False
        for lp in loops:
            for s in streams:
                if s.name in carried[lp.id]:
                    continue
                if any(f in placement[s.name] for f in body_forks[lp.id]):
                    carried[lp.id].add(s.name)
                    changed = True
        if not changed:
            return g, placement


def translate_optimized(
    cfg: CFG,
    streams: list[Stream],
    loops: list[Loop],
    placement: dict[str, frozenset[int]] | None = None,
    svs: SourceVectors | None = None,
) -> Translation:
    """Build the no-redundant-switch dataflow graph (Section 4.2's four-step
    recipe; step 1 is assumed done — pass a loop-augmented CFG).

    ``placement``/``svs`` are normally precomputed by the pass pipeline;
    when omitted (direct callers, tests) they are computed here.
    """
    from ..obs.trace import tracer

    if placement is None:
        with tracer.span("compile.switch_placement"):
            cfg, placement = close_carried_streams(cfg, streams, loops)
    if svs is None:
        pdom = postdominator_tree(cfg)
        with tracer.span("compile.source_vectors"):
            svs = compute_source_vectors(cfg, streams, placement, loops, pdom)

    g = DFGraph()
    t = Translation(graph=g, streams=streams)

    if not streams:
        g.add(OpKind.START, seeds=())
        g.add(OpKind.END, returns=())
        return t

    def seed_for(s: Stream) -> Seed:
        if s.carries_value:
            return Seed("value", next(iter(s.members)))
        return Seed("access", s.name)

    start = g.add(OpKind.START, seeds=tuple(seed_for(s) for s in streams))
    end = g.add(
        OpKind.END,
        returns=tuple(
            next(iter(s.members)) if s.carries_value else None
            for s in streams
        ),
    )

    by_name = {s.name: s for s in streams}
    loops_by_entry = {lp.entry_node: lp for lp in loops}

    # (cfg node, out-direction, stream) -> concrete producer Port
    source_port: dict[tuple[int, bool, str], Port] = {}
    # wiring jobs whose producers appear later (loop backedges):
    # (Source, stream name, consumer df node, consumer port)
    deferred: list[tuple[Source, str, int, int]] = []

    def resolve(src: Source, sname: str) -> Port:
        return source_port[(src[0], src[1], sname)]

    def wire_sources(
        srcs: frozenset[Source], sname: str, dst: int, base_port: int = 0
    ) -> None:
        """Connect each source (sorted, deterministic) into consecutive
        ports of ``dst`` starting at ``base_port``."""
        s = by_name[sname]
        for i, src in enumerate(sorted(srcs, key=_src_key)):
            g.connect(
                resolve(src, sname),
                dst,
                base_port + i,
                is_access=not s.carries_value,
            )

    def consume_single(nid: int, sname: str) -> Port:
        return resolve(svs.single(nid, sname), sname)

    for nid in cfg.reverse_postorder():
        node = cfg.node(nid)
        kind = node.kind

        if kind is NodeKind.START:
            for i, s in enumerate(streams):
                source_port[(nid, True, s.name)] = Port(start.id, i)

        elif kind is NodeKind.END:
            continue  # handled after the loop (all sources then known)

        elif kind is NodeKind.ASSIGN:
            refs = [s for s in streams if s.referenced_by(node)]
            incoming = {s.name: consume_single(nid, s.name) for s in refs}
            st = StatementTranslator(g, streams, incoming, tag=f"cfg{nid}")
            res = st.translate_assign(node)
            t.node_map.setdefault(nid, []).extend(res.created)
            for s in refs:
                source_port[(nid, True, s.name)] = res.outgoing[s.name]

        elif kind is NodeKind.FORK:
            switched = [
                s for s in streams if svs.needs_switch(nid, s.name)
            ]
            referenced = [s for s in streams if s.referenced_by(node)]
            if not switched:
                # no decision anyone downstream depends on: the fork
                # disappears; referenced tokens pass through untouched
                for s in referenced:
                    source_port[(nid, True, s.name)] = consume_single(
                        nid, s.name
                    )
                continue
            arriving = list(
                dict.fromkeys(
                    [s.name for s in referenced] + [s.name for s in switched]
                )
            )
            incoming = {
                name: consume_single(nid, name) for name in arriving
            }
            st = StatementTranslator(g, streams, incoming, tag=f"cfg{nid}")
            res = st.translate_fork(node)
            t.node_map.setdefault(nid, []).extend(res.created)
            t.switches[nid] = {}
            switched_names = {s.name for s in switched}
            for s in switched:
                sw = g.add(OpKind.SWITCH, tag=f"cfg{nid}:{s.name}")
                t.node_map.setdefault(nid, []).append(sw.id)
                t.switches[nid][s.name] = sw.id
                g.connect(
                    res.outgoing[s.name], sw.id, 0,
                    is_access=not s.carries_value,
                )
                g.connect(res.pred_port, sw.id, 1)
                source_port[(nid, True, s.name)] = Port(sw.id, 0)
                source_port[(nid, False, s.name)] = Port(sw.id, 1)
            for s in referenced:
                if s.name not in switched_names:
                    # Figure 9: read for the predicate, forward unswitched
                    source_port[(nid, True, s.name)] = res.outgoing[s.name]

        elif kind is NodeKind.JOIN:
            for s in streams:
                srcs = svs.at(nid, s.name)
                if len(srcs) <= 1:
                    continue  # wire-through or not present: no operator
                m = g.add(
                    OpKind.MERGE, nports=len(srcs), tag=f"cfg{nid}:{s.name}"
                )
                t.node_map.setdefault(nid, []).append(m.id)
                wire_sources(srcs, s.name, m.id)
                source_port[(nid, True, s.name)] = Port(m.id, 0)

        elif kind is NodeKind.LOOP_ENTRY:
            lp = loops_by_entry[nid]
            carried = [s for s in streams if s.referenced_by(node)]
            # bypassing streams with several entry-side sources still merge
            # here (the loop entry is a control merge point)
            for s in streams:
                if s in carried:
                    continue
                srcs = svs.at(nid, s.name)
                if len(srcs) > 1:
                    m = g.add(
                        OpKind.MERGE,
                        nports=len(srcs),
                        tag=f"cfg{nid}:bypass:{s.name}",
                    )
                    t.node_map.setdefault(nid, []).append(m.id)
                    wire_sources(srcs, s.name, m.id)
                    source_port[(nid, True, s.name)] = Port(m.id, 0)
            if not carried:
                continue  # the whole loop is bypassed by every stream
            le = g.add(
                OpKind.LOOP_ENTRY,
                loop_id=lp.id,
                nchannels=len(carried),
                channel_labels=tuple(s.name for s in carried),
                tag=f"cfg{nid}",
            )
            t.node_map.setdefault(nid, []).append(le.id)
            n = len(carried)
            backedges = [
                e for e in _real_in_edges(cfg, nid) if e.src in lp.body
            ]
            for ci, s in enumerate(carried):
                # entry side
                ext_srcs = svs.at(nid, s.name)
                if not ext_srcs:
                    raise AssertionError(
                        f"loop {lp.id} carries {s.name!r} but no source "
                        f"reaches its entry"
                    )
                if len(ext_srcs) == 1:
                    wire_sources(ext_srcs, s.name, le.id, ci)
                else:
                    m = g.add(
                        OpKind.MERGE,
                        nports=len(ext_srcs),
                        tag=f"cfg{nid}:entry:{s.name}",
                    )
                    t.node_map.setdefault(nid, []).append(m.id)
                    wire_sources(ext_srcs, s.name, m.id)
                    g.connect(
                        Port(m.id, 0), le.id, ci,
                        is_access=not s.carries_value,
                    )
                # back side (producers appear later: defer); includes fork
                # bypasses from inside the body that land here
                back_srcs: set[Source] = set()
                for e in backedges:
                    back_srcs |= svs.edge_sources(e, s.name)
                back_srcs |= svs.back_extra(nid, s.name)
                if not back_srcs:
                    raise AssertionError(
                        f"loop {lp.id} carries {s.name!r} but no backedge "
                        f"returns its token"
                    )
                if len(back_srcs) == 1:
                    (src,) = back_srcs
                    deferred.append((src, s.name, le.id, n + ci))
                else:
                    m = g.add(
                        OpKind.MERGE,
                        nports=len(back_srcs),
                        tag=f"cfg{nid}:back:{s.name}",
                    )
                    t.node_map.setdefault(nid, []).append(m.id)
                    for i, src in enumerate(sorted(back_srcs, key=_src_key)):
                        deferred.append((src, s.name, m.id, i))
                    g.connect(
                        Port(m.id, 0), le.id, n + ci,
                        is_access=not s.carries_value,
                    )
                source_port[(nid, True, s.name)] = Port(le.id, ci)

        elif kind is NodeKind.LOOP_EXIT:
            carried = [s for s in streams if s.referenced_by(node)]
            if not carried:
                continue
            lx = g.add(
                OpKind.LOOP_EXIT,
                loop_id=node.loop_id,
                nchannels=len(carried),
                channel_labels=tuple(s.name for s in carried),
                tag=f"cfg{nid}",
            )
            t.node_map.setdefault(nid, []).append(lx.id)
            for ci, s in enumerate(carried):
                g.connect(
                    consume_single(nid, s.name), lx.id, ci,
                    is_access=not s.carries_value,
                )
                source_port[(nid, True, s.name)] = Port(lx.id, ci)

        else:
            raise TypeError(f"cannot translate node kind {kind}")

    # END: all producers now registered
    for port, s in enumerate(streams):
        srcs = svs.at(cfg.exit, s.name)
        if not srcs:
            raise AssertionError(f"stream {s.name!r} never reaches end")
        if len(srcs) == 1:
            wire_sources(srcs, s.name, end.id, port)
        else:
            m = g.add(OpKind.MERGE, nports=len(srcs), tag=f"end:{s.name}")
            wire_sources(srcs, s.name, m.id)
            g.connect(
                Port(m.id, 0), end.id, port, is_access=not s.carries_value
            )

    # loop backedges
    for src, sname, dst, dport in deferred:
        g.connect(
            resolve(src, sname), dst, dport,
            is_access=not by_name[sname].carries_value,
        )

    g.validate(allow_dangling_outputs=True)
    return t
