"""The explicit pass-manager pipeline behind :func:`compile_program`.

Each transformation of the paper — interval construction, switch
placement, source vectors, graph construction, and the Section 4/6
rewrites — is a :class:`Pass` object that consumes the shared
:class:`PassContext` IR snapshot, mutates it, and returns a compact,
JSON-serializable *witness* of what it computed.  The
:class:`PassManager` wraps every pass in its ``obs`` span, times it, and
(when ``CompileOptions.verify_passes`` is ``cheap`` or ``full``) hands
the witness to the pass's independent verifier from
:mod:`repro.translate.verify` **immediately**, so a
:class:`~repro.translate.verify.CertificateError` always names the first
pass whose output is wrong — blame cannot leak downstream.

Two rules make blame exhaustive when verification is on:

* a pass that *raises* is wrapped as a ``CertificateError`` naming that
  pass (a crash localizes like a bad certificate);
* verification order equals execution order, so a pass that consumes a
  verified snapshot and produces a bad one is always the guilty party.

Certificate checking assumes the default loop-augmented pipeline
(``insert_loops=True``) for cyclic programs: the source-vector equation
check treats backedges by the loop-entry discipline and is not defined
for raw cyclic graphs.

Test-only hooks (never set outside the test suite): module flag
``_TEST_MISPLACE_SWITCH`` here drops one needed switch from the
placement, and ``repro.cfg.intervals._TEST_SCC_EXIT_BUG`` reintroduces
the PR-1 code-copying bug — both exist so the mutation-detection tests
can prove the verifiers blame the *correct* pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis.dominance import postdominator_tree
from ..cfg.intervals import (
    IrreducibleCFGError,
    insert_loop_controls,
    split_irreducible,
)
from ..obs.trace import tracer
from .allpaths import translate_allpaths
from .array_parallel import parallelize_array_stores, promote_write_once_arrays
from .optimized import close_carried_streams, translate_optimized
from .redundant_elim import eliminate_redundant_switches, sweep_dead_value_nodes
from .source_vectors import compute_source_vectors
from .switch_placement import count_physical_switches
from .transforms import forward_stores, parallelize_reads
from .verify import OPTIMIZED_SCHEMAS, VERIFIERS, CertificateError

#: test-only: drop one needed physical switch from the computed placement
#: (a deliberately misplaced switch the placement verifier must catch)
_TEST_MISPLACE_SWITCH = False


def _drop_one_switch(cfg, placement):
    """The misplaced-switch mutation: remove the highest-numbered
    physical fork from the first stream that has one."""
    for sname in sorted(placement):
        physical = sorted(placement[sname] - {cfg.entry})
        if physical:
            doctored = dict(placement)
            doctored[sname] = placement[sname] - {physical[-1]}
            return doctored
    return placement


@dataclass
class Certificate:
    """One pass's entry in the certificate log."""

    pass_name: str
    kind: str  # analysis | construct | rewrite
    witness: dict
    metrics: dict = field(default_factory=dict)
    elapsed_ms: float = 0.0
    verified: str = "off"  # off | cheap | full
    verify_ms: float = 0.0


@dataclass
class PassContext:
    """The typed IR snapshot threaded through the pipeline."""

    options: object
    prog: object
    alias: object
    raw_cfg: object | None = None  # pre-decomposition CFG (for verifiers)
    cfg: object | None = None
    loops: list = field(default_factory=list)
    streams: list = field(default_factory=list)
    placement: dict | None = None
    svs: object | None = None
    translation: object | None = None
    array_report: object | None = None
    istructure_arrays: list = field(default_factory=list)
    reads_parallelized: int = 0
    stores_forwarded: int = 0
    redundant_eliminated: int = 0


class Pass:
    """One pipeline stage: ``run`` mutates the context and returns
    ``(witness, metrics)``; the matching verifier lives in
    :data:`repro.translate.verify.VERIFIERS` under ``name``."""

    name: str = ""
    span: str = ""
    kind: str = "analysis"

    def span_attrs(self, ctx: PassContext) -> dict:
        return {}

    def run(self, ctx: PassContext) -> tuple[dict, dict]:
        raise NotImplementedError

    @property
    def verifier(self):
        return VERIFIERS[self.name]


class PassManager:
    """Run passes in order; verify each certificate immediately when
    ``verify`` is ``cheap`` or ``full``."""

    def __init__(self, passes: list[Pass], verify: str = "off"):
        self.passes = passes
        self.verify = verify

    def run(self, ctx: PassContext) -> list[Certificate]:
        log: list[Certificate] = []
        for p in self.passes:
            t0 = time.perf_counter()
            try:
                with tracer.span(p.span, **p.span_attrs(ctx)):
                    witness, metrics = p.run(ctx)
            except CertificateError:
                raise
            except Exception as exc:
                if self.verify != "off":
                    # a crashing pass is its own blame label
                    raise CertificateError(
                        p.name,
                        f"pass raised {type(exc).__name__}: {exc}",
                    ) from exc
                raise
            cert = Certificate(
                pass_name=p.name,
                kind=p.kind,
                witness=witness,
                metrics=metrics,
                elapsed_ms=(time.perf_counter() - t0) * 1e3,
            )
            if self.verify != "off":
                tv = time.perf_counter()
                with tracer.span(f"compile.verify.{p.name}"):
                    p.verifier(ctx, witness, self.verify)
                cert.verified = self.verify
                cert.verify_ms = (time.perf_counter() - tv) * 1e3
            log.append(cert)
        return log


# -- concrete passes --------------------------------------------------------


class IntervalPass(Pass):
    name = "intervals"
    span = "compile.intervals"
    kind = "analysis"

    def run(self, ctx: PassContext) -> tuple[dict, dict]:
        raw = ctx.cfg
        split = False
        try:
            cfg, loops = insert_loop_controls(raw)
        except IrreducibleCFGError:
            cfg, loops = insert_loop_controls(split_irreducible(raw))
            split = True
        ctx.raw_cfg = raw
        ctx.cfg = cfg
        ctx.loops = loops
        witness = {
            "split_applied": split,
            "loops": [
                {
                    "id": lp.id,
                    "header": lp.header,
                    "body": sorted(lp.body),
                    "entry": lp.entry_node,
                    "exits": sorted(lp.exit_nodes),
                    "parent": lp.parent,
                    "depth": lp.depth,
                    "refs": sorted(lp.refs),
                }
                for lp in loops
            ],
        }
        return witness, {"loops": len(loops), "split_applied": split}


class SwitchPlacementPass(Pass):
    name = "switch_placement"
    span = "compile.switch_placement"
    kind = "analysis"

    def run(self, ctx: PassContext) -> tuple[dict, dict]:
        cfg, placement = close_carried_streams(
            ctx.cfg, ctx.streams, ctx.loops
        )
        if _TEST_MISPLACE_SWITCH:
            placement = _drop_one_switch(cfg, placement)
        ctx.cfg = cfg
        ctx.placement = placement
        witness = {
            "placement": {
                sname: sorted(forks) for sname, forks in placement.items()
            },
            "carried": {
                lp.id: sorted(cfg.node(lp.entry_node).carried_streams or ())
                for lp in ctx.loops
            },
        }
        sites = count_physical_switches(cfg, placement)
        return witness, {"physical_switch_sites": sites}


class SourceVectorPass(Pass):
    name = "source_vectors"
    span = "compile.source_vectors"
    kind = "analysis"

    def run(self, ctx: PassContext) -> tuple[dict, dict]:
        pdom = postdominator_tree(ctx.cfg)
        svs = compute_source_vectors(
            ctx.cfg, ctx.streams, ctx.placement, ctx.loops, pdom
        )
        ctx.svs = svs

        def table(per_stream):
            return {
                sname: {
                    nid: sorted([m, d] for m, d in srcs)
                    for nid, srcs in per_node.items()
                    if srcs
                }
                for sname, per_node in per_stream.items()
            }

        witness = {
            "sv": table(svs.sv),
            "back_bypass": table(svs.back_bypass),
        }
        entries = sum(len(t) for t in witness["sv"].values())
        return witness, {"sites": entries}


class ConstructPass(Pass):
    name = "construct"
    span = "compile.translate"
    kind = "construct"

    def span_attrs(self, ctx: PassContext) -> dict:
        return {"schema": ctx.options.schema}

    def run(self, ctx: PassContext) -> tuple[dict, dict]:
        if ctx.options.schema in OPTIMIZED_SCHEMAS:
            t = translate_optimized(
                ctx.cfg, ctx.streams, ctx.loops,
                placement=ctx.placement, svs=ctx.svs,
            )
        else:
            t = translate_allpaths(ctx.cfg, ctx.streams, ctx.loops)
        ctx.translation = t
        g = t.graph
        by_kind: dict[str, int] = {}
        for n in g.nodes.values():
            by_kind[n.kind.name] = by_kind.get(n.kind.name, 0) + 1
        witness = {
            "nodes": len(g.nodes),
            "arcs": g.num_arcs(),
            "by_kind": by_kind,
            "switches": {f: dict(tab) for f, tab in t.switches.items()},
        }
        metrics = {
            "nodes": len(g.nodes),
            "arcs": g.num_arcs(),
            "switches": by_kind.get("SWITCH", 0),
        }
        return witness, metrics


class RedundantElimPass(Pass):
    name = "redundant_elim"
    span = "compile.redundant_elim"
    kind = "rewrite"

    def run(self, ctx: PassContext) -> tuple[dict, dict]:
        g = ctx.translation.graph
        removed: list[int] = []
        swept: list[int] = []
        eliminate_redundant_switches(g, removed_log=removed)
        sweep_dead_value_nodes(g, removed_log=swept)
        ctx.redundant_eliminated = len(removed)
        witness = {"switches_removed": removed, "dead_swept": swept}
        return witness, {
            "switches_removed": len(removed), "dead_swept": len(swept)
        }


class ArrayParallelPass(Pass):
    name = "array_parallel"
    span = "compile.array_parallel"
    kind = "rewrite"

    def run(self, ctx: PassContext) -> tuple[dict, dict]:
        report = parallelize_array_stores(
            ctx.translation, ctx.cfg, ctx.loops
        )
        ctx.array_report = report
        witness = {
            "pipelined": [list(p) for p in report.pipelined],
            "skipped": [list(s) for s in report.skipped],
        }
        return witness, {
            "pipelined": len(report.pipelined),
            "skipped": len(report.skipped),
        }


class IStructurePass(Pass):
    name = "istructures"
    span = "compile.istructures"
    kind = "rewrite"

    def run(self, ctx: PassContext) -> tuple[dict, dict]:
        promoted = promote_write_once_arrays(
            ctx.translation, ctx.cfg, ctx.loops, sorted(ctx.prog.arrays)
        )
        ctx.istructure_arrays = promoted
        return {"promoted": list(promoted)}, {"promoted": len(promoted)}


class ForwardStoresPass(Pass):
    name = "forward_stores"
    span = "compile.forward_stores"
    kind = "rewrite"

    def run(self, ctx: PassContext) -> tuple[dict, dict]:
        removed: list[int] = []
        forward_stores(ctx.translation.graph, eliminated_log=removed)
        ctx.stores_forwarded = len(removed)
        return (
            {"loads_removed": removed},
            {"loads_forwarded": len(removed)},
        )


class ParallelReadsPass(Pass):
    name = "parallel_reads"
    span = "compile.parallel_reads"
    kind = "rewrite"

    def run(self, ctx: PassContext) -> tuple[dict, dict]:
        chains: list[dict] = []
        parallelize_reads(ctx.translation.graph, chain_log=chains)
        ctx.reads_parallelized = len(chains)
        return {"chains": chains}, {"chains": len(chains)}


def build_passes(opts) -> list[Pass]:
    """The pass pipeline for one :class:`CompileOptions` value."""
    passes: list[Pass] = []
    if opts.insert_loops and opts.schema != "schema1":
        passes.append(IntervalPass())
    if opts.schema in OPTIMIZED_SCHEMAS:
        passes.append(SwitchPlacementPass())
        passes.append(SourceVectorPass())
    passes.append(ConstructPass())
    if opts.redundant_elim:
        passes.append(RedundantElimPass())
    if opts.parallelize_arrays:
        passes.append(ArrayParallelPass())
    if opts.use_istructures:
        passes.append(IStructurePass())
    if opts.forward_stores:
        passes.append(ForwardStoresPass())
    if opts.parallel_reads:
        passes.append(ParallelReadsPass())
    return passes


def verify_pass_log(cp, level: str = "full") -> None:
    """Re-verify every certificate in a compiled program's log.

    Checks each witness against the program's *current* IR snapshot:
    certificates whose witness describes graph state (``construct``,
    the rewrites) only re-verify cleanly if no later pass mutated what
    they attest to — re-check a pipeline configuration accordingly, or
    compile with ``verify_passes`` set to verify in-flight instead.
    """
    if cp.pass_ctx is None:
        raise ValueError("compiled program carries no pass context")
    for cert in cp.pass_log:
        VERIFIERS[cert.pass_name](cp.pass_ctx, cert.witness, level)
