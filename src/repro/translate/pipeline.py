"""One-call compilation pipeline: source text -> executable dataflow graph.

Schemas (paper section in parentheses):

* ``schema1`` (§2.3) — single access token, sequential inter-statement
  semantics; raw CFG, no loop control needed.
* ``schema2`` (§3) — one access token per variable, loop controls inserted,
  tokens follow every control path (Figure 8).  Rejects aliased programs.
* ``schema2_opt`` (§4) — Schema 2 tokens wired by switch placement (Fig 10)
  and source vectors (Fig 11): no redundant switches, loop bypass.
* ``schema3`` (§5) — cover-parameterized access tokens over an alias
  structure, all-paths wiring (the paper's base Schema 3).
* ``schema3_opt`` — Schema 3 collection with the Section 4 optimized wiring.
* ``memory_elim`` (§6.1) — optimized wiring where unaliased scalars carry
  their values on tokens (no loads/stores; merges are the implicit phis);
  aliased scalars and arrays keep Schema 3 access collection.

Post-transforms (any schema): ``parallel_reads`` and ``forward_stores``
(§6.2); ``parallelize_arrays`` (Figure 14) and ``use_istructures`` (§6.3)
require loop-augmented optimized-style graphs and simple loops — they apply
where legal and report what they skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from ..analysis.alias import AliasStructure, Cover
from ..cfg.builder import build_cfg
from ..cfg.graph import CFG
from ..cfg.intervals import Loop
from ..dfg.graph import DFGraph
from ..lang.ast_nodes import Program
from ..lang.parser import parse
from ..machine.config import MachineConfig
from ..machine.istructure import IStructureMemory
from ..machine.memory import DataMemory
from ..machine.simulator import SimResult, Simulator
from ..obs.trace import tracer
from .allpaths import Translation
from .array_parallel import ArrayParallelReport
from .passes import Certificate, PassContext, PassManager, build_passes
from .streams import Stream, cover_streams, streams_for

SCHEMAS = (
    "schema1",
    "schema2",
    "schema2_opt",
    "schema3",
    "schema3_opt",
    "memory_elim",
)


@dataclass(frozen=True)
class CompileOptions:
    """Knobs for :func:`compile_program`; see the module docstring."""

    schema: str = "schema2_opt"
    cover: str = "singletons"  # schema3: singletons | whole | alias_classes
    insert_loops: bool = True  # False reproduces the broken Figure 8 graph
    optimize: bool = False  # classic CFG optimizations before translation
    parallel_reads: bool = False
    forward_stores: bool = False
    parallelize_arrays: bool = False
    use_istructures: bool = False
    redundant_elim: bool = False  # §4 switch/dead-value cleanup pass
    #: per-pass translation validation: each pass emits a certificate
    #: that an independent verifier checks right after the pass runs.
    #: ``cheap`` = structural + same-algorithm recomputation checks;
    #: ``full`` adds independent-algorithm oracles (brute-force between
    #: sets, recursive SCC recomputation, per-array gate recomputation).
    verify_passes: str = "off"  # off | cheap | full
    #: multiresolution region compilation (see repro.translate.regions):
    #: ``on`` partitions whenever a legal multi-region cut exists,
    #: ``auto`` engages only for programs of at least
    #: ``region_min_stmts`` statements, ``off`` keeps the monolithic
    #: pipeline.  Option sets that enable whole-graph post passes fall
    #: back to monolithic regardless.
    region_compile: str = "off"  # off | auto | on
    #: ``auto`` engagement threshold (total statements incl. nesting)
    region_min_stmts: int = 256
    #: greedy partition budget: statements per region before the next
    #: legal cut closes the region
    region_target_stmts: int = 64

    def __post_init__(self) -> None:
        if self.schema not in SCHEMAS:
            raise ValueError(f"unknown schema {self.schema!r}; pick from {SCHEMAS}")
        if self.cover not in ("singletons", "whole", "alias_classes"):
            raise ValueError(f"unknown cover {self.cover!r}")
        if self.verify_passes not in ("off", "cheap", "full"):
            raise ValueError(
                f"unknown verify_passes {self.verify_passes!r}; "
                "pick off, cheap, or full"
            )
        if self.region_compile not in ("off", "auto", "on"):
            raise ValueError(
                f"unknown region_compile {self.region_compile!r}; "
                "pick off, auto, or on"
            )
        if self.region_min_stmts < 0:
            raise ValueError("region_min_stmts must be >= 0")
        if self.region_target_stmts < 1:
            raise ValueError("region_target_stmts must be >= 1")

    def fingerprint(self) -> str:
        """Stable text rendering of every option, in declaration order.

        Part of the engine's compiled-graph cache key: two option sets with
        equal fingerprints must compile any source to equivalent graphs.
        New fields extend the fingerprint automatically, so adding a knob
        invalidates nothing but never aliases two distinct configurations.
        """
        return ";".join(
            f"{f.name}={getattr(self, f.name)!r}" for f in fields(self)
        )


@dataclass
class CompiledProgram:
    """A compiled program: the dataflow graph plus everything needed to run
    and inspect it."""

    source: str
    prog: Program
    options: CompileOptions
    cfg: CFG  # loop-augmented unless insert_loops=False or schema1
    loops: list[Loop]
    streams: list[Stream]
    translation: Translation
    alias: AliasStructure
    istructure_arrays: list[str] = field(default_factory=list)
    array_report: ArrayParallelReport | None = None
    reads_parallelized: int = 0
    stores_forwarded: int = 0
    redundant_eliminated: int = 0
    #: per-pass certificate log (one Certificate per pipeline stage)
    pass_log: list[Certificate] = field(default_factory=list)
    #: the PassContext the pipeline ran on; verifiers re-check
    #: certificates against it (see passes.verify_pass_log)
    pass_ctx: PassContext | None = None
    expansion: object | None = None  # subroutine ExpansionReport, if any
    opt_report: object | None = None  # cfg OptReport when optimize=True
    #: the graph lowered to flat arrays (see repro.machine.packed), built
    #: lazily on first packed-backend run and persisted by the graph cache
    packed: object | None = None
    #: memoized shipping payload (packed graph + memory spec); rebuilt
    #: payloads would re-derive the same tuples on every pooled batch
    _payload: object | None = None
    #: the payload pre-pickled: what actually crosses the process
    #: boundary, so repeated pooled sweeps ship a memcpy, not a traversal
    _payload_blob: bytes | None = None

    @property
    def graph(self) -> DFGraph:
        return self.translation.graph

    def ensure_packed(self):
        """Lower the graph to its :class:`PackedGraph` form (idempotent).

        Deliberately lazy: graphs are mutable until first run (benches
        tweak node latencies post-compile), so packing is deferred to the
        first simulate/cache-store rather than done inside
        :func:`compile_program`.
        """
        if self.packed is None:
            from ..machine.packed import pack_graph

            self.packed = pack_graph(self.graph)
        return self.packed

    def packed_program(self):
        """The compact cross-process shipping payload: packed graph plus
        the memory-image spec, with none of the compile-time object graph
        (AST, CFG, streams) a worker doesn't need.  Memoized."""
        if self._payload is not None:
            return self._payload
        from ..machine.packed import PackedProgram

        plain = tuple(
            (name, size)
            for name, size in self.prog.arrays.items()
            if name not in self.istructure_arrays
        )
        self._payload = PackedProgram(
            packed=self.ensure_packed(),
            scalar_vars=tuple(
                v
                for v in self.prog.variables()
                if v not in self.prog.arrays
            ),
            arrays=plain,
            istruct_arrays=tuple(
                (name, self.prog.arrays[name])
                for name in self.istructure_arrays
            ),
        )
        return self._payload

    def packed_blob(self) -> bytes:
        """:meth:`packed_program` serialized once.  The pooled engine
        ships these bytes verbatim; workers key their payload cache on
        the blob content, so identical graphs decode once per worker no
        matter how many sweeps reuse the pool."""
        if self._payload_blob is None:
            import pickle

            self._payload_blob = pickle.dumps(
                self.packed_program(), pickle.HIGHEST_PROTOCOL
            )
        return self._payload_blob

    def memories(
        self, inputs: dict[str, int] | None = None
    ) -> tuple[DataMemory, IStructureMemory]:
        inputs = inputs or {}
        plain = {
            name: size
            for name, size in self.prog.arrays.items()
            if name not in self.istructure_arrays
        }
        scalars = {
            v: inputs.get(v, 0)
            for v in self.prog.variables()
            if v not in self.prog.arrays
        }
        scalars.update(
            {k: v for k, v in inputs.items() if k not in self.prog.arrays}
        )
        mem = DataMemory(scalars=scalars, arrays=plain)
        ist = IStructureMemory(
            {
                name: self.prog.arrays[name]
                for name in self.istructure_arrays
            }
        )
        return mem, ist


def _pick_cover(alias: AliasStructure, name: str) -> Cover:
    if name == "singletons":
        return Cover.singletons(alias)
    if name == "whole":
        return Cover.whole(alias)
    return Cover.alias_classes(alias)


def compile_program(
    source: str | Program,
    schema: str = "schema2_opt",
    *,
    options: CompileOptions | None = None,
    **kwargs,
) -> CompiledProgram:
    """Compile source text (or a parsed Program) under the given schema.

    Keyword arguments are :class:`CompileOptions` fields; alternatively
    pass a prebuilt ``options`` object (then ``schema``/kwargs must be
    left at their defaults).
    """
    if options is not None:
        if kwargs or schema != "schema2_opt":
            raise TypeError(
                "pass either options= or schema/keyword fields, not both"
            )
        opts = options
    else:
        opts = CompileOptions(schema=schema, **kwargs)
    schema = opts.schema
    if opts.region_compile != "off":
        # multiresolution path; falls back to this function (with
        # region_compile forced off) when no multi-region plan exists
        from .regions import compile_with_regions

        return compile_with_regions(source, opts)
    if isinstance(source, Program):
        prog, text = source, ""
    else:
        text = source
        prog = parse(source)  # emits compile.lex / compile.parse spans

    expansion = None
    if prog.subs:
        from ..lang.subroutines import expand_subroutines

        with tracer.span("compile.expand_subs"):
            prog, expansion = expand_subroutines(prog)

    arrays = set(prog.arrays)
    for group in prog.alias_groups:
        bad = [n for n in group if n in arrays]
        if bad:
            raise ValueError(
                f"alias declarations must name scalars only, got arrays {bad}"
            )
    alias = AliasStructure.from_program(prog)

    with tracer.span("compile.cfg"):
        cfg = build_cfg(prog)
    opt_report = None
    if opts.optimize:
        from ..cfg.optimize import optimize_cfg

        with tracer.span("compile.cfg_opt"):
            cfg, opt_report = optimize_cfg(cfg)
    with tracer.span("compile.streams"):
        if schema in ("schema3", "schema3_opt"):
            streams = cover_streams(_pick_cover(alias, opts.cover))
        else:
            streams = streams_for(prog, "schema2" if schema == "schema2_opt" else schema, alias=alias)

    # the back end is an explicit pass pipeline: interval construction,
    # switch placement, source vectors, graph construction, then the
    # optional §4/§6 rewrites — each emitting (and, under verify_passes,
    # immediately checking) a certificate
    ctx = PassContext(options=opts, prog=prog, alias=alias, cfg=cfg, streams=streams)
    pass_log = PassManager(build_passes(opts), verify=opts.verify_passes).run(ctx)

    return CompiledProgram(
        source=text,
        prog=prog,
        options=opts,
        cfg=ctx.cfg,
        loops=ctx.loops,
        streams=ctx.streams,
        translation=ctx.translation,
        alias=alias,
        istructure_arrays=ctx.istructure_arrays,
        array_report=ctx.array_report,
        reads_parallelized=ctx.reads_parallelized,
        stores_forwarded=ctx.stores_forwarded,
        redundant_eliminated=ctx.redundant_eliminated,
        pass_log=pass_log,
        pass_ctx=ctx,
        expansion=expansion,
        opt_report=opt_report,
    )


def simulate(
    cp: CompiledProgram,
    inputs: dict[str, int] | None = None,
    config: MachineConfig | None = None,
) -> SimResult:
    """Run a compiled program on the ETS machine."""
    mem, ist = cp.memories(inputs)
    cfg = config or MachineConfig()
    packed = (
        cp.ensure_packed()
        if cfg.backend() in ("packed", "vectorized")
        else None
    )
    return Simulator(cp.graph, mem, ist, config, packed=packed).run()


def run_source(
    source: str,
    inputs: dict[str, int] | None = None,
    schema: str = "schema2_opt",
    config: MachineConfig | None = None,
    **kwargs,
) -> SimResult:
    """Parse, compile, and simulate in one call."""
    return simulate(compile_program(source, schema=schema, **kwargs), inputs, config)
