"""Iterative redundant switch elimination — the alternative the paper
mentions in Section 4: "one way to optimize the dataflow graph produced by
Schema 2 is to eliminate switches whose outputs are immediately merged
together ... The elimination of such redundant switches may make other
switches redundant [which] may be eliminated in turn.  A generalization of
this idea ... was discussed at length in an earlier version of this paper."

The paper then *abandons* this in favor of the direct construction.  We
implement the iterative pass anyway, as an ablation: it removes
conditional-structure redundancy (including the cascade through nested
conditionals) but — unlike the direct construction — it does not let
tokens bypass loops (that generalization needs the loop-control channel
surgery the direct construction gets for free), and it leaves the dead
predicate fan-out behind until a separate sweep collects it.  The bench
``test_ablation_redundant_elim`` quantifies the gap.
"""

from __future__ import annotations

from ..dfg.graph import DFGraph, Port
from ..dfg.nodes import OpKind

_PURE_VALUE_KINDS = (OpKind.CONST, OpKind.BINOP, OpKind.UNOP)


def eliminate_redundant_switches(
    g: DFGraph, removed_log: list[int] | None = None
) -> int:
    """Remove every switch whose two outputs feed the same merge, iterating
    until no more are found (the cascade).  Returns the number of switches
    removed.  Follow with :func:`sweep_dead_value_nodes` to collect
    predicate subgraphs that lost all consumers.

    ``removed_log``, if given, collects the removed switch node ids (the
    pass certificate's witness).
    """
    removed = 0
    changed = True
    while changed:
        changed = False
        for nid in list(g.nodes):
            node = g.nodes.get(nid)
            if node is None or node.kind is not OpKind.SWITCH:
                continue
            outs0 = g.consumers(nid, 0)
            outs1 = g.consumers(nid, 1)
            if len(outs0) != 1 or len(outs1) != 1:
                continue
            (a0,), (a1,) = outs0, outs1
            if a0.dst != a1.dst:
                continue
            merge = g.node(a0.dst)
            if merge.kind is not OpKind.MERGE:
                continue
            _collapse(g, node, merge, a0, a1)
            if removed_log is not None:
                removed_log.append(nid)
            removed += 1
            changed = True
    return removed


def _collapse(g: DFGraph, sw, merge, a0, a1) -> None:
    """The switch's token reaches ``merge`` either way: route it directly,
    shrinking the merge by one port (and splicing the merge away entirely
    if only one input remains)."""
    data_in = g.producer(sw.id, 0)
    assert data_in is not None
    data_src = Port(data_in.src, data_in.src_port)
    is_access = data_in.is_access

    # detach the switch completely (its predicate input arc too)
    other_arcs = [
        a
        for a in g.in_arcs(merge.id)
        if not (a.src == sw.id)
    ]
    g.remove_node(sw.id)

    # re-pack the merge's remaining inputs plus the direct token
    for a in other_arcs:
        g.disconnect(a)
    inputs = [(Port(a.src, a.src_port), a.is_access) for a in other_arcs]
    inputs.append((data_src, is_access))
    if len(inputs) == 1:
        # single-input merge is a wire: splice it out
        consumers = g.consumers(merge.id, 0)
        for c in consumers:
            g.disconnect(c)
        g.remove_node(merge.id)
        (src, acc), = inputs
        for c in consumers:
            g.connect(src, c.dst, c.dst_port, is_access=acc)
    else:
        merge.nports = len(inputs)
        for i, (src, acc) in enumerate(inputs):
            g.connect(src, merge.id, i, is_access=acc)


def sweep_dead_value_nodes(
    g: DFGraph, removed_log: list[int] | None = None
) -> int:
    """Remove pure value operators (constants, arithmetic) none of whose
    outputs have consumers — the predicate subgraphs orphaned by switch
    elimination.  Iterates (removing a consumer can orphan its inputs).
    Returns the number of nodes removed.  ``removed_log``, if given,
    collects the removed node ids."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for nid in list(g.nodes):
            node = g.nodes.get(nid)
            if node is None or node.kind not in _PURE_VALUE_KINDS:
                continue
            if any(g.consumers(nid, p) for p in range(1)):
                continue
            g.remove_node(nid)
            if removed_log is not None:
                removed_log.append(nid)
            removed += 1
            changed = True
    return removed
