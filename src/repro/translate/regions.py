"""Multiresolution region compiler: parallel, memoized, near-linear.

The monolithic pipeline recompiles the whole program on every edit and
its cost grows superlinearly with program size (switch placement and
source-vector propagation are quadratic in the worst case).  This module
compiles *regions* instead:

1. **Partition** the top-level statement list at *legal cuts* — points no
   label/goto reference crosses — grouped greedily to
   ``CompileOptions.region_target_stmts`` statements per region.  Because
   every backward or forward goto stays inside its region, control enters
   each region only by textual fall-through: regions are single-entry,
   single-exit, exactly the interval-style coarsening of the flow graph.
2. **Compile** each region independently through the ordinary
   :func:`~repro.translate.pipeline.compile_program` pipeline (so every
   schema, pass, and certificate applies per region unchanged).  Each
   region source carries a *header* declaring the names the region
   references — closed over alias groups, in the monolithic declaration
   order — which pins the region's stream interface to a by-name subset
   of the monolithic one.  (Schemas whose constructions wire *every*
   stream through every control construct — the all-paths schema 2/3
   builds, or schema 3 under the ``whole`` cover — instead redeclare
   the full program so the subgraphs stay bit-identical; see
   :func:`_reduced_header`.)  Keeping each region's header to its own
   working set is what makes total compile cost near-linear: a region's
   cost depends on its slice, not on the whole program's variable count.
3. **Stitch** the region subgraphs by splicing out each region's
   START/END and threading every stream's source vector from one
   region's producers into the next region's consumers, matched by
   stream *name*; streams a region never declares flow straight across
   it.  With single-source crossings this reproduces the monolithic
   graph node-for-node (the N-way oracle checks it).
4. **Memoize**: region compiles route through the content-addressed
   :class:`~repro.engine.cache.GraphCache` when one is supplied, keyed
   on (region source slice, options fingerprint) — the interface
   signature is the header, which is part of the region source.  An
   edit therefore recompiles only the region whose slice changed (plus
   the cheap stitch).  A worker pool fans cold region compiles out
   across processes.

Programs whose goto structure admits no cut (fully-goto, flat) fall
back to the monolithic pipeline; so do option sets that enable
whole-graph post passes (``optimize``, istructures, …), which are not
region-local.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, replace

from ..obs.trace import tracer

from ..lang.ast_nodes import (
    Assign,
    CondGoto,
    Goto,
    If,
    Program,
    Stmt,
    While,
    expr_vars,
)
from ..lang.parser import parse
from ..lang.pretty import pretty
from ..lang.subroutines import expand_subroutines
from ..analysis.alias import AliasStructure
from ..dfg.graph import DFGraph, Port
from ..dfg.nodes import OpKind, Seed
from .allpaths import Translation
from .passes import Certificate
from .streams import Stream, cover_streams, streams_for
from .verify import CertificateError

#: option knobs the region path cannot honor: they run global analyses or
#: whole-graph rewrites after translation, which are not region-local.
#: Engaging any of them silently falls back to the monolithic pipeline.
INCOMPATIBLE_KNOBS = (
    "optimize",
    "parallel_reads",
    "forward_stores",
    "parallelize_arrays",
    "use_istructures",
    "redundant_elim",
)


def region_eligible(options) -> bool:
    """True when the option set is compatible with region compilation
    (the partition itself may still collapse to a single region)."""
    if not options.insert_loops:
        return False
    return not any(getattr(options, k) for k in INCOMPATIBLE_KNOBS)


# --------------------------------------------------------------------------
# partitioning


def _labels(s: Stmt):
    """Yield every label defined anywhere within statement ``s``."""
    if s.label:
        yield s.label
    if isinstance(s, If):
        for t in s.then_body:
            yield from _labels(t)
        for t in s.else_body:
            yield from _labels(t)
    elif isinstance(s, While):
        for t in s.body:
            yield from _labels(t)


def _targets(s: Stmt):
    """Yield every goto target referenced anywhere within ``s``."""
    if isinstance(s, Goto):
        yield s.target
    elif isinstance(s, CondGoto):
        yield s.then_target
        if s.else_target is not None:
            yield s.else_target
    elif isinstance(s, If):
        for t in s.then_body:
            yield from _targets(t)
        for t in s.else_body:
            yield from _targets(t)
    elif isinstance(s, While):
        for t in s.body:
            yield from _targets(t)


def _weight(s: Stmt) -> int:
    """Statement count including nested bodies — the unit the region
    target budget is expressed in."""
    if isinstance(s, If):
        return 1 + sum(map(_weight, s.then_body)) + sum(map(_weight, s.else_body))
    if isinstance(s, While):
        return 1 + sum(map(_weight, s.body))
    return 1


def legal_cuts(body: list[Stmt]) -> list[int]:
    """Cut positions ``c`` (between statements ``c-1`` and ``c``) that no
    label/goto reference crosses.  A goto at top-level index ``q`` whose
    target label lives at top-level index ``p`` blocks every cut with
    ``min(p, q) < c <= max(p, q)``; unknown targets block everything
    (the compile error surfaces in the monolithic path)."""
    label_at: dict[str, int] = {}
    for i, s in enumerate(body):
        for lab in _labels(s):
            label_at[lab] = i
    blocked = [False] * (len(body) + 1)
    for q, s in enumerate(body):
        for tgt in _targets(s):
            p = label_at.get(tgt)
            if p is None:
                return []
            lo, hi = min(p, q), max(p, q)
            for c in range(lo + 1, hi + 1):
                blocked[c] = True
    return [c for c in range(1, len(body)) if not blocked[c]]


def partition_spans(
    body: list[Stmt], target_stmts: int
) -> list[tuple[int, int]]:
    """Greedy partition of ``body`` into half-open index spans, cutting at
    the first legal position once a region's statement weight reaches
    ``target_stmts``.  Always returns at least one span covering the
    whole body."""
    cuts = set(legal_cuts(body))
    spans: list[tuple[int, int]] = []
    start = 0
    acc = 0
    for i, s in enumerate(body):
        acc += _weight(s)
        nxt = i + 1
        if acc >= target_stmts and nxt < len(body) and nxt in cuts:
            spans.append((start, nxt))
            start = nxt
            acc = 0
    spans.append((start, len(body)))
    return spans


# --------------------------------------------------------------------------
# region sources


def region_header(prog: Program) -> str:
    """Full declaration header: *all* of the monolithic program's
    variables (in ``Program.variables()`` order — the parser accepts
    array names in ``var`` declarations), arrays, and alias groups.
    Used for the schemas that need the whole interface (see
    :func:`_reduced_header`).  The header *is* a region's interface
    signature: it is part of the region source text, so the
    content-addressed cache key covers it."""
    lines = []
    names = prog.variables()
    if names:
        lines.append(f"var {', '.join(names)};")
    if prog.arrays:
        decl = ", ".join(f"{n}[{sz}]" for n, sz in prog.arrays.items())
        lines.append(f"array {decl};")
    for group in prog.alias_groups:
        lines.append(f"alias ({', '.join(group)});")
    return "\n".join(lines) + ("\n" if lines else "")


def _reduced_header(options) -> bool:
    """True when region sources may declare only the names they touch.

    Safe exactly for the constructions that emit nodes (switches, loop
    controls, memory ops) only for streams a statement references —
    then a region's subgraph is independent of how many *other*
    variables the program has, and per-region compile cost stops
    scaling with whole-program size.  The all-paths schema 2/3 builds
    thread every declared stream through every control construct, and
    the ``whole`` cover fuses all variables into one stream whose name
    depends on the full variable set — those keep the full header."""
    if options.schema in ("schema1", "schema2_opt", "memory_elim"):
        return True
    return options.schema == "schema3_opt" and options.cover != "whole"


def _stmt_names(s: Stmt, out: set[str]) -> None:
    if isinstance(s, Assign):
        out.update(expr_vars(s.target))
        out.update(expr_vars(s.expr))
    elif isinstance(s, CondGoto):
        out.update(expr_vars(s.pred))
    elif isinstance(s, If):
        out.update(expr_vars(s.cond))
        for t in s.then_body:
            _stmt_names(t, out)
        for t in s.else_body:
            _stmt_names(t, out)
    elif isinstance(s, While):
        out.update(expr_vars(s.cond))
        for t in s.body:
            _stmt_names(t, out)


def _span_names(prog: Program, lo: int, hi: int) -> set[str]:
    """Names referenced by ``prog.body[lo:hi]``, closed over alias
    groups: declaring any member of a group drags in the whole group
    (transitively), so the region's alias classes — and therefore its
    stream set and memory-elimination decisions — match the monolithic
    program's for every declared name."""
    used: set[str] = set()
    for s in prog.body[lo:hi]:
        _stmt_names(s, used)
    groups = [set(g) for g in prog.alias_groups]
    changed = True
    while changed:
        changed = False
        for g in groups:
            if used & g and not g <= used:
                used |= g
                changed = True
    return used


def region_programs(
    prog: Program, spans: list[tuple[int, int]], options=None
) -> list[Program]:
    """Each span as a standalone sub-program: header declarations +
    statement slice.  With ``options`` asking for a reduced header, each
    region declares only its own working set; otherwise every region
    carries the full program interface.

    Header names keep the monolithic ``Program.variables()`` order —
    bit-identity demands it (stream construction order follows
    declaration order, so a region compiled under any other order
    stitches into a graph that diverges from the monolithic one under
    the cycle-level oracle).  The flip side: for programs with no
    explicit ``var`` line that order is body-first-appearance, so an
    edit that moves a variable's first reference reorders every header
    and conservatively invalidates every region key.  Pin the order with
    :meth:`Program.with_declared_variables` before rendering sources to
    make headers — and therefore region cache keys — edit-stable."""
    reduced = options is not None and _reduced_header(options)
    out = []
    names = prog.variables()
    for lo, hi in spans:
        if reduced:
            used = _span_names(prog, lo, hi)
            scalars = [v for v in names if v in used]
            arrays = {n: sz for n, sz in prog.arrays.items() if n in used}
            groups = [list(g) for g in prog.alias_groups if used & set(g)]
        else:
            scalars = names
            arrays = dict(prog.arrays)
            groups = list(prog.alias_groups)
        out.append(
            Program(
                body=prog.body[lo:hi],
                arrays=arrays,
                scalars=scalars,
                alias_groups=groups,
            )
        )
    return out


def region_sources(
    prog: Program, spans: list[tuple[int, int]], options=None
) -> list[str]:
    """:func:`region_programs` rendered by :func:`pretty` — the region
    *source slices* the content-addressed cache is keyed on."""
    return [pretty(sub) for sub in region_programs(prog, spans, options)]


# --------------------------------------------------------------------------
# stitching


def stitch(
    region_cps: list, streams: list[Stream]
) -> Translation:
    """Splice region subgraphs into one whole-program graph.

    Each region graph's START/END pair is removed; arcs out of a
    region's START are rewired to the *current* producer port of that
    stream (the previous region's END input, or the global START for the
    first region), and arcs into a region's END update the current
    producer.  Region streams are matched to global streams by *name*
    — a region's interface may be any subset of the global one, and
    streams a region never declares (or declares but never touches:
    START->END pass-through arcs) flow straight across it with no
    extra nodes."""
    g = DFGraph()
    out = Translation(graph=g, streams=list(streams))

    def seed_for(s: Stream) -> Seed:
        if s.carries_value:
            return Seed("value", next(iter(s.members)))
        return Seed("access", s.name)

    start = g.add(OpKind.START, seeds=tuple(seed_for(s) for s in streams))
    end = g.add(
        OpKind.END,
        returns=tuple(
            next(iter(s.members)) if s.carries_value else None
            for s in streams
        ),
    )
    current: dict[str, Port] = {
        s.name: Port(start.id, i) for i, s in enumerate(streams)
    }

    global_names = {s.name for s in streams}
    for cp in region_cps:
        rg = cp.graph
        rstreams = cp.streams
        missing = [s.name for s in rstreams if s.name not in global_names]
        if missing:
            raise CertificateError(
                "region_stitch",
                f"region streams {missing} not in the global interface "
                f"{sorted(global_names)}",
            )
        sname_at = [s.name for s in rstreams]
        rstart, rend = rg.start, rg.end
        # interior nodes and arcs go over in one bulk splice; only the
        # boundary arcs (out of the region's START, into its END) need
        # the per-arc rewiring below
        idmap = g.splice_from(rg, rstart, rend)
        # the region's END inputs become the new current producers.
        # A START->END arc resolves through `current`: same-stream ones
        # are pass-throughs (streams the region never touches), but
        # cross-stream ones are real — value-carrying copies like
        # ``z := x`` forward the x seed straight to z's return
        nxt = dict(current)
        for arc in rg.in_arcs(rend):
            if arc.src == rstart:
                nxt[sname_at[arc.dst_port]] = current[sname_at[arc.src_port]]
            else:
                nxt[sname_at[arc.dst_port]] = Port(idmap[arc.src], arc.src_port)
        for arc in rg.out_arcs(rstart):
            if arc.dst == rend:
                continue
            src, src_port = current[sname_at[arc.src_port]]
            g.connect_unchecked(
                src, src_port, idmap[arc.dst], arc.dst_port, arc.is_access
            )
        current = nxt

    for i, s in enumerate(streams):
        g.connect(current[s.name], end.id, i, is_access=not s.carries_value)
    g.validate(allow_dangling_outputs=True)
    return out


# --------------------------------------------------------------------------
# driver


@dataclass(frozen=True)
class RegionPlan:
    """A partition decision: spans over the expanded top-level body, the
    rendered per-region sources (the cache keys), and the matching
    sub-program ASTs (what actually gets compiled — skipping the
    re-parse of every region source)."""

    spans: tuple[tuple[int, int], ...]
    sources: tuple[str, ...]
    progs: tuple[Program, ...]
    total_stmts: int


def plan_regions(prog: Program, options) -> RegionPlan | None:
    """Partition ``prog`` (already subroutine-expanded) or return None
    when region compilation should fall back to monolithic: ineligible
    options, too small under ``auto``, or a single-region partition
    (fully-goto programs with no legal cut)."""
    if options.region_compile == "off" or not region_eligible(options):
        return None
    total = sum(map(_weight, prog.body))
    if options.region_compile == "auto" and total < options.region_min_stmts:
        return None
    target = max(1, options.region_target_stmts)
    spans = partition_spans(prog.body, target)
    if len(spans) < 2:
        return None
    progs = region_programs(prog, spans, options)
    return RegionPlan(
        spans=tuple(spans),
        sources=tuple(pretty(sub) for sub in progs),
        progs=tuple(progs),
        total_stmts=total,
    )


def _region_options(options):
    """Options a region is compiled under: identical knobs with the
    region machinery switched off (a region compile is a plain
    monolithic compile of a small program)."""
    return replace(
        options,
        region_compile="off",
        region_min_stmts=type(options)().region_min_stmts,
        region_target_stmts=type(options)().region_target_stmts,
    )


def _annotate(exc: CertificateError, plan: RegionPlan, i: int):
    if exc.region:
        return exc
    lo, hi = plan.spans[i]
    return CertificateError(
        exc.pass_name, exc.diff, region=f"region {i} [stmts {lo}:{hi})"
    )


#: minimum host cores before cold regions fan out on a process pool.
#: With one core there is no parallelism to buy, only pickle/IPC cost —
#: a pool compiles every region in a worker and ships the subgraph back,
#: which measures *slower* than the serial loop.  Tests drop this to 1
#: to exercise the worker path regardless of host shape.
POOL_MIN_CORES = 2


def _use_pool(pool) -> bool:
    import os

    return pool is not None and (os.cpu_count() or 1) >= POOL_MIN_CORES


def slim_region_cp(cp):
    """A region cache entry stripped to what stitching (and the
    per-region certificate) consume: the subgraph, its stream interface,
    and the verified pass log.  The CFG and the pass context duplicate
    the whole compile-time object graph (~10x the subgraph's pickle) and
    no consumer of a *region* entry reads them — regions were verified
    when compiled, re-verification recompiles from source."""
    return replace(cp, cfg=None, pass_ctx=None, opt_report=None)


def _compile_regions(
    plan: RegionPlan, options, cache, pool
) -> tuple[list, int]:
    """Compile every region, via the cache / worker pool when available.
    Returns (compiled regions in order, cache hits).  Region compiles
    start from the plan's sub-program ASTs — the source text is only
    the cache key — so nothing re-parses the region sources.
    CertificateErrors are re-raised annotated with the guilty region."""
    from .pipeline import compile_program

    sources = list(plan.sources)
    ropts = _region_options(options)
    cps: list = [None] * len(sources)
    hits = 0
    misses = list(range(len(sources)))
    if cache is not None:
        misses = []
        for i, src in enumerate(sources):
            cached = cache.peek(src, ropts)
            if cached is not None:
                cps[i] = cached
                hits += 1
            else:
                misses.append(i)
    if misses and _use_pool(pool):
        from ..engine.batch import compile_sources_pooled

        try:
            compiled = compile_sources_pooled(
                pool,
                [(sources[i], ropts, plan.progs[i]) for i in misses],
            )
        except CertificateError as exc:
            # pool.map loses the item index; recompile serially on
            # the error path to name the guilty region
            raise _annotate(exc, plan, _blame_region(plan, options)) from exc
        for i, cp in zip(misses, compiled):
            if cp is not None:
                if cache is not None:
                    cache.insert(sources[i], ropts, cp)
                cps[i] = cp
    for i in misses:
        if cps[i] is None:
            try:
                cp = compile_program(plan.progs[i], options=ropts)
            except CertificateError as exc:
                raise _annotate(exc, plan, i) from exc
            cps[i] = slim_region_cp(cp)
            if cache is not None:
                cache.insert(sources[i], ropts, cps[i])
    return cps, hits


def _stitch_certificate(
    plan: RegionPlan, streams, translation, per_region, hits
) -> Certificate:
    keys = [
        hashlib.sha256(src.encode()).hexdigest()[:16] for src in plan.sources
    ]
    return Certificate(
        pass_name="region_stitch",
        kind="construct",
        witness={
            "spans": [list(sp) for sp in plan.spans],
            "n_regions": len(plan.spans),
            "total_stmts": plan.total_stmts,
            "region_keys": keys,
            "streams": [s.name for s in streams],
            "nodes": len(translation.graph.nodes),
            "arcs": translation.graph.num_arcs(),
            "per_region": per_region,
        },
        metrics={
            "regions": len(plan.spans),
            "region_cache_hits": hits,
            "stitched_nodes": len(translation.graph.nodes),
        },
    )


def compile_with_regions(source, options, *, cache=None, pool=None):
    """Region-partitioned compile of ``source`` under ``options``.

    Falls back to the monolithic pipeline (returning an ordinary
    :class:`CompiledProgram`) when no multi-region plan exists.  When a
    :class:`~repro.engine.cache.GraphCache` is supplied, region
    subgraphs are memoized in it; when a worker pool is supplied too,
    cold regions compile in parallel."""
    from .passes import PassContext
    from .pipeline import CompiledProgram, compile_program

    mono_opts = replace(options, region_compile="off")
    if isinstance(source, Program):
        prog, text = source, pretty(source)
    else:
        text = source
        prog = parse(source)
    expansion = None
    if prog.subs:
        prog, expansion = expand_subroutines(prog)

    plan = plan_regions(prog, options)
    if plan is None:
        cp = compile_program(text, options=mono_opts)
        cp.options = options  # reflect the requested options verbatim
        return cp

    with tracer.span(
        "compile.regions", regions=len(plan.spans), schema=options.schema
    ):
        region_cps, hits = _compile_regions(plan, options, cache, pool)

    from .pipeline import _pick_cover

    alias = AliasStructure.from_program(prog)
    if options.schema in ("schema3", "schema3_opt"):
        streams = cover_streams(_pick_cover(alias, options.cover))
    else:
        schema = "schema2" if options.schema == "schema2_opt" else options.schema
        streams = streams_for(prog, schema, alias=alias)

    t0 = time.perf_counter()
    with tracer.span("compile.stitch"):
        translation = stitch(region_cps, streams)
    per_region = [
        {
            "span": list(sp),
            "nodes": len(cp.graph.nodes),
            "arcs": cp.graph.num_arcs(),
            "passes": [c.pass_name for c in cp.pass_log],
        }
        for sp, cp in zip(plan.spans, region_cps)
    ]
    cert = _stitch_certificate(plan, streams, translation, per_region, hits)
    cert.elapsed_ms = (time.perf_counter() - t0) * 1000.0

    ctx = PassContext(options=options, prog=prog, alias=alias)
    ctx.streams = streams
    ctx.translation = translation
    if options.verify_passes != "off":
        from .verify import VERIFIERS

        # raises CertificateError("region_stitch", ...) on failure,
        # mirroring PassManager's verify-immediately discipline
        t1 = time.perf_counter()
        VERIFIERS["region_stitch"](ctx, cert.witness, options.verify_passes)
        cert.verified = options.verify_passes
        cert.verify_ms = (time.perf_counter() - t1) * 1000.0

    return CompiledProgram(
        source=text,
        prog=prog,
        options=options,
        cfg=None,
        loops=[],
        streams=streams,
        translation=translation,
        alias=alias,
        pass_log=[cert],
        pass_ctx=ctx,
        expansion=expansion,
    )


def _blame_region(plan: RegionPlan, options) -> int:
    """Recompile regions serially to find which one raised — only used
    on the error path, so the extra compile cost is acceptable."""
    from .pipeline import compile_program

    ropts = _region_options(options)
    for i, src in enumerate(plan.sources):
        try:
            compile_program(src, options=ropts)
        except CertificateError:
            return i
    return 0
