"""Source vectors — Section 4.2, Figure 11.

For each node ``N`` and stream ``s``, ``SV_N(s)`` is the set of sources
⟨M, out-direction⟩ from which ``s``'s token can arrive at ``N``.  The
computation is the forward pass of Figure 11 over the loop-augmented CFG in
reverse postorder (the worklist's "all predecessors visited, backedges
ignored" discipline), with the paper's non-local step: a fork that does not
switch ``s`` propagates its sources directly to its immediate postdominator
— this is what lets tokens bypass conditionals and whole loops.

Deviations from the figure's literal text, noted for fidelity:

* the figure's join case always contributes ⟨N, true⟩; we contribute the
  single source itself when ``|SV_N(s)| == 1`` (the figure's build step
  says such a join "is equivalent to no operator", so the wire-through is
  where the single-source rule actually lands), and nothing when the token
  never reaches the join;
* forks that *reference* a stream without switching it (e.g. the predicate
  reads ``w`` but no switch for ``w`` is needed, Figure 9) consume the
  token for their loads and forward it to the immediate postdominator;
* LOOP_ENTRY/LOOP_EXIT (absent from the figure) act as referencing
  statements for the streams the loop carries and as pass-throughs for the
  rest; backedge wiring into a loop entry is resolved by
  :func:`edge_sources` at construction time, since backedge sources are
  computed after the header in the forward pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.dominance import DomTree, postdominator_tree
from ..cfg.graph import CFG, Edge, NodeKind
from ..cfg.intervals import Loop
from .streams import Stream

#: A token source: (producing CFG node, out-direction).  Non-fork producers
#: use True as their single out-direction, per the paper.
Source = tuple[int, bool]


def _src_key(s: Source):
    return (s[0], s[1])


@dataclass
class SourceVectors:
    """SV for every (node, stream), plus the analysis inputs needed to
    resolve edges at construction time."""

    cfg: CFG
    streams: list[Stream]
    placement: dict[str, frozenset[int]]
    pdom: DomTree
    sv: dict[str, dict[int, frozenset[Source]]] = field(default_factory=dict)
    loops_by_entry: dict[int, Loop] = field(default_factory=dict)
    # extra *backedge-side* sources for loop entries: tokens whose fork
    # bypass (from inside the loop body) lands on the loop entry are
    # arrivals for the next iteration, not fresh external entries
    back_bypass: dict[str, dict[int, frozenset[Source]]] = field(
        default_factory=dict
    )

    def needs_switch(self, fork: int, sname: str) -> bool:
        """Physical switch placement (start never gets one)."""
        return fork != self.cfg.entry and fork in self.placement[sname]

    def at(self, node: int, sname: str) -> frozenset[Source]:
        return self.sv[sname].get(node, frozenset())

    def back_extra(self, le_node: int, sname: str) -> frozenset[Source]:
        return self.back_bypass.get(sname, {}).get(le_node, frozenset())

    def single(self, node: int, sname: str) -> Source:
        srcs = self.at(node, sname)
        if len(srcs) != 1:
            raise AssertionError(
                f"SV of stream {sname!r} at node {node} "
                f"({self.cfg.node(node).describe()}) should be a single "
                f"source, got {sorted(srcs, key=_src_key)}"
            )
        return next(iter(srcs))

    def edge_sources(self, e: Edge, sname: str) -> frozenset[Source]:
        """Sources of stream ``s`` physically flowing along CFG edge ``e``
        — used for backedges into loop entries, whose producers are
        computed after the header in the forward pass."""
        n = e.src
        node = self.cfg.node(n)
        stream = next(s for s in self.streams if s.name == sname)
        if node.kind in (NodeKind.FORK, NodeKind.START):
            if self.needs_switch(n, sname):
                return frozenset({(n, bool(e.direction))})
            if stream.referenced_by(node):
                # read the token for the predicate, forward unswitched
                return frozenset({(n, True)})
            return frozenset()  # bypassed around this fork entirely
        if stream.referenced_by(node):
            return frozenset({(n, True)})
        if node.kind is NodeKind.JOIN:
            srcs = self.at(n, sname)
            if len(srcs) > 1:
                return frozenset({(n, True)})
            return srcs
        return self.at(n, sname)


def _is_backedge(cfg: CFG, e: Edge, loops_by_entry: dict[int, Loop]) -> bool:
    lp = loops_by_entry.get(e.dst)
    return lp is not None and e.src in lp.body


def compute_source_vectors(
    cfg: CFG,
    streams: list[Stream],
    placement: dict[str, frozenset[int]],
    loops: list[Loop],
    pdom: DomTree | None = None,
) -> SourceVectors:
    """The Figure 11 forward pass (see module docstring for the handled
    generalizations)."""
    if pdom is None:
        pdom = postdominator_tree(cfg)
    loops_by_entry = {lp.entry_node: lp for lp in loops}
    res = SourceVectors(
        cfg=cfg,
        streams=streams,
        placement=placement,
        pdom=pdom,
        loops_by_entry=loops_by_entry,
    )
    sv: dict[str, dict[int, set[Source]]] = {
        s.name: {n: set() for n in cfg.nodes} for s in streams
    }
    back_bypass: dict[str, dict[int, set[Source]]] = {
        s.name: {} for s in streams
    }

    convention = (cfg.entry, cfg.exit, False)

    def bypass_to(fork: int, name: str, contribution: set[Source]) -> None:
        """Deliver a fork's unswitched sources to its immediate
        postdominator.  If that is a loop entry and the fork sits inside
        that loop's body, the token is coming *around* the loop: it belongs
        on the backedge side."""
        if not contribution:
            return
        p = pdom.idom[fork]
        lp = loops_by_entry.get(p)
        if lp is not None and fork in lp.body:
            back_bypass[name].setdefault(p, set()).update(contribution)
        else:
            sv[name][p].update(contribution)

    def forward_edges(nid: int) -> list[Edge]:
        out = []
        for e in cfg.out_edges(nid):
            if (e.src, e.dst, e.direction) == convention:
                continue
            if _is_backedge(cfg, e, loops_by_entry):
                continue  # resolved at build time via edge_sources
            out.append(e)
        return out

    order = cfg.reverse_postorder()
    for nid in order:
        node = cfg.node(nid)
        kind = node.kind
        for s in streams:
            name = s.name
            if kind is NodeKind.START:
                # Figure 11's start case: all tokens enter along True; the
                # start->end convention edge carries nothing.
                true_succ = next(
                    e.dst for e in cfg.out_edges(nid) if e.direction is True
                )
                sv[name][true_succ].add((nid, True))
            elif kind is NodeKind.END:
                continue
            elif kind is NodeKind.FORK:
                if nid != cfg.entry and nid in placement[name]:
                    for e in forward_edges(nid):
                        sv[name][e.dst].add((nid, bool(e.direction)))
                elif s.referenced_by(node):
                    bypass_to(nid, name, {(nid, True)})
                else:
                    bypass_to(nid, name, sv[name][nid])
            elif kind is NodeKind.JOIN:
                srcs = sv[name][nid]
                if len(srcs) > 1:
                    contribution = {(nid, True)}
                elif len(srcs) == 1:
                    contribution = set(srcs)
                else:
                    contribution = set()
                for e in forward_edges(nid):
                    sv[name][e.dst].update(contribution)
            elif kind is NodeKind.LOOP_ENTRY and not s.referenced_by(node):
                # Section 4: a token for a variable the loop never touches
                # bypasses the loop entirely — jump its sources to the first
                # postdominator outside the loop body (the loop-exit
                # region).  Like a join, a multi-entry loop entry merges
                # alternative incoming paths, so a bypassing stream with
                # several sources gets a plain merge here.
                lp = loops_by_entry[nid]
                target = nid
                for p in pdom.walk_up(pdom.idom[nid]):
                    if p not in lp.body and p != nid:
                        target = p
                        break
                srcs = sv[name][nid]
                if len(srcs) > 1:
                    sv[name][target].add((nid, True))
                else:
                    sv[name][target].update(srcs)
            else:  # ASSIGN, carried LOOP_ENTRY, LOOP_EXIT
                if s.referenced_by(node):
                    contribution = {(nid, True)}
                else:
                    contribution = sv[name][nid]
                for e in forward_edges(nid):
                    sv[name][e.dst].update(contribution)

    res.sv = {
        name: {n: frozenset(v) for n, v in per_node.items()}
        for name, per_node in sv.items()
    }
    res.back_bypass = {
        name: {n: frozenset(v) for n, v in per_le.items()}
        for name, per_le in back_bypass.items()
    }
    return res
