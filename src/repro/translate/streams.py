"""Token streams: the unifying abstraction behind all three schemas.

A *stream* is one circulating token identity:

* Schema 1 — a single access stream governing every variable;
* Schema 2 — one access stream per variable;
* Schema 3 — one access stream per cover element (Definition 7), governing
  every variable whose alias class the element intersects;
* memory elimination (Section 6.1) — unaliased scalars become *value*
  streams: the token carries the variable's current value, loads/stores
  disappear, and merges act as the implicit phi-functions.

``governs`` is the set of variables whose memory operations must collect
this stream's token; a CFG node *references* the stream iff it references
a governed variable.  All wiring layers (sequential, all-paths, optimized)
and the switch-placement machinery are written against this interface.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.alias import AliasStructure, Cover
from ..cfg.graph import CFGNode
from ..lang.ast_nodes import Program


@dataclass(frozen=True)
class Stream:
    """One circulating token identity.

    * ``name`` — stable printable identity ("x", or "x+z" for covers).
    * ``members`` — the cover element (singleton for schemas 1-applied
      per-variable and 2).
    * ``governs`` — variables whose memory ops collect this token.
    * ``carries_value`` — value stream (memory elimination); ``members``
      is then a single unaliased scalar.
    """

    name: str
    members: frozenset[str]
    governs: frozenset[str]
    carries_value: bool = False

    def referenced_by(self, node: CFGNode) -> bool:
        if node.carried_streams is not None:
            # loop controls with an explicit carried-stream set (the
            # optimized construction's closure, see optimized.py)
            return self.name in node.carried_streams
        return bool(node.refs() & self.governs)

    def __repr__(self) -> str:
        k = "val" if self.carries_value else "acc"
        return f"Stream({self.name}:{k})"


def single_stream(variables: list[str], name: str = "pc") -> list[Stream]:
    """Schema 1: one access token governing everything — the dataflow
    program counter."""
    vs = frozenset(variables)
    if not vs:
        return []
    return [Stream(name, vs, vs)]


def per_variable_streams(variables: list[str]) -> list[Stream]:
    """Schema 2 (no aliasing assumed): one access token per variable."""
    return [Stream(v, frozenset({v}), frozenset({v})) for v in variables]


def cover_streams(cover: Cover) -> list[Stream]:
    """Schema 3: one access token per cover element; the element governs
    every variable whose alias class it intersects (the access-set rule
    C[x] = {c : c ∩ [x] != {}})."""
    alias = cover.alias
    out = []
    for el in cover.elements:
        governs = frozenset(
            x for x in alias.variables if el & alias.alias_class(x)
        )
        out.append(Stream("+".join(sorted(el)), el, governs))
    return out


def value_streams(
    prog: Program, alias: AliasStructure | None = None
) -> list[Stream]:
    """Section 6.1 memory elimination: unaliased scalars carry their value
    on the token; aliased scalars and arrays keep per-variable access
    streams (with schema-3 collection if aliased)."""
    variables = prog.variables()
    if alias is None:
        alias = AliasStructure.from_program(prog)
    out: list[Stream] = []
    arrays = set(prog.arrays)
    for v in variables:
        if v not in arrays and alias.is_unaliased(v):
            out.append(
                Stream(v, frozenset({v}), frozenset({v}), carries_value=True)
            )
        else:
            governs = frozenset(
                x for x in alias.variables if {v} & set(alias.alias_class(x))
            )
            out.append(Stream(v, frozenset({v}), governs))
    return out


def streams_for(
    prog: Program,
    schema: str,
    cover: Cover | None = None,
    alias: AliasStructure | None = None,
) -> list[Stream]:
    """Stream set for a named schema.

    Schemas 2 and 2-opt require an alias-free program (the paper assumes no
    aliasing until Section 5); pass a cover for schema 3, or use
    ``memory_elim`` which handles mixed aliasing automatically.
    """
    variables = prog.variables()
    if alias is None:
        alias = AliasStructure.from_program(prog)
    if schema == "schema1":
        return single_stream(variables)
    if schema in ("schema2", "schema2_opt"):
        if alias.pairs:
            raise ValueError(
                "schema 2 assumes no aliasing (Section 3); use schema3 with "
                "a cover, or memory_elim"
            )
        return per_variable_streams(variables)
    if schema == "schema3":
        c = cover if cover is not None else Cover.singletons(alias)
        return cover_streams(c)
    if schema == "memory_elim":
        return value_streams(prog, alias)
    raise ValueError(f"unknown schema {schema!r}")
