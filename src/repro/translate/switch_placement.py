"""Switch placement — Section 4.1, Figure 10.

``F`` needs a switch for a stream's access token iff some node referencing
the stream lies between ``F`` and its immediate postdominator; by Theorem 1
this is exactly ``F ∈ CD+(reference sites)``.  The Figure 10 algorithm is a
worklist over control dependences, which is
:func:`~repro.analysis.control_dep.cd_plus_of_set` run per stream.

The start node is formally a fork (the start->end convention edge) and is
marked like any other; the construction layer never places a *physical*
switch at start — its tokens always enter the program (Figure 11's start
case).
"""

from __future__ import annotations

from ..analysis.control_dep import cd_plus_of_set, control_dependence
from ..cfg.graph import CFG
from .streams import Stream


def switch_placement(
    cfg: CFG,
    streams: list[Stream],
    cd: dict[int, set[int]] | None = None,
) -> dict[str, frozenset[int]]:
    """For each stream, the set of fork nodes that need a switch for its
    token (Figure 10 run once per stream).  Includes the start node when it
    formally qualifies; physical construction skips it."""
    if cd is None:
        cd = control_dependence(cfg)
    out: dict[str, frozenset[int]] = {}
    for s in streams:
        sites = {n for n in cfg.nodes if s.referenced_by(cfg.node(n))}
        out[s.name] = frozenset(cd_plus_of_set(cfg, sites, cd))
    return out


def count_physical_switches(
    cfg: CFG, placement: dict[str, frozenset[int]]
) -> int:
    """Total switches the optimized construction will create (excluding the
    start node, which gets none)."""
    return sum(
        len(forks - {cfg.entry}) for forks in placement.values()
    )
