"""Section 6.2 dataflow-graph transforms: parallel reads and store-to-load
forwarding.

Both are graph-to-graph rewrites applied after any schema's construction.
"""

from __future__ import annotations

from ..dfg.graph import DFGraph, Port
from ..dfg.nodes import OpKind

_LOAD_KINDS = (OpKind.LOAD, OpKind.ALOAD)


def _acc_in_port(kind: OpKind) -> int:
    return 0 if kind is OpKind.LOAD else 1  # ALOAD: index is port 0


def _is_load(g: DFGraph, nid: int) -> bool:
    return g.node(nid).kind in _LOAD_KINDS


def _chain_next(g: DFGraph, nid: int) -> int | None:
    """The single load directly chained after ``nid`` on its access output,
    or None."""
    outs = g.consumers(nid, 1)  # access-out is port 1 for both load kinds
    if len(outs) != 1:
        return None
    (arc,) = outs
    if not _is_load(g, arc.dst):
        return None
    if arc.dst_port != _acc_in_port(g.node(arc.dst).kind):
        return None
    return arc.dst


def parallelize_reads(
    g: DFGraph, chain_log: list[dict] | None = None
) -> int:
    """Section 6.2: "The predecessor of the first load can safely replicate
    access and pass it to every operation in the sequence.  The replicas
    must be collected and passed to the successor of the last operation."

    Finds every maximal chain of >= 2 loads linked access-out -> access-in,
    fans the head's access source to all of them, and collects their
    completions with a synch tree.  Returns the number of chains rewritten.

    ``chain_log``, if given, collects one ``{"loads": [...], "synch": id}``
    record per rewritten chain (the pass certificate's witness).
    """
    nexts: dict[int, int] = {}
    for nid in list(g.nodes):
        if _is_load(g, nid):
            nxt = _chain_next(g, nid)
            if nxt is not None:
                nexts[nid] = nxt
    chained_into = set(nexts.values())
    rewritten = 0
    for head in sorted(nexts):
        if head in chained_into:
            continue  # not a chain head
        chain = [head]
        while chain[-1] in nexts:
            chain.append(nexts[chain[-1]])
        if len(chain) < 2:
            continue
        # the head's access source
        head_in = g.producer(head, _acc_in_port(g.node(head).kind))
        assert head_in is not None
        src = Port(head_in.src, head_in.src_port)
        g.disconnect(head_in)
        # the tail's continuation
        tail = chain[-1]
        tail_outs = g.consumers(tail, 1)
        for a in tail_outs:
            g.disconnect(a)
        # break the internal links
        for a, b in zip(chain, chain[1:]):
            link = g.producer(b, _acc_in_port(g.node(b).kind))
            g.disconnect(link)
        # replicate access to every load; collect with a synch
        synch = g.add(OpKind.SYNCH, nports=len(chain), tag="parallel-reads")
        for i, nid in enumerate(chain):
            g.connect(src, nid, _acc_in_port(g.node(nid).kind), is_access=True)
            g.connect(Port(nid, 1), synch.id, i, is_access=True)
        for a in tail_outs:
            g.connect(Port(synch.id, 0), a.dst, a.dst_port, is_access=True)
        if chain_log is not None:
            chain_log.append({"loads": list(chain), "synch": synch.id})
        rewritten += 1
    return rewritten


def forward_stores(
    g: DFGraph, eliminated_log: list[int] | None = None
) -> int:
    """Section 6.2: "If a store to a variable z is followed sequentially by
    a read from z, with no intervening stores to any variable that could be
    aliased to z, then the value stored can be passed directly to the
    output of the load."

    Implemented for the direct pattern STORE v --access--> LOAD v: the load
    disappears; its value consumers read the stored value, its access
    continuation comes from the store's completion.  Iterates to a
    fixpoint (forwarding can expose further pairs).  Returns the number of
    loads eliminated.  ``eliminated_log``, if given, collects the removed
    load node ids (the pass certificate's witness).
    """
    eliminated = 0
    changed = True
    while changed:
        changed = False
        for nid in list(g.nodes):
            node = g.nodes.get(nid)
            if node is None or node.kind is not OpKind.LOAD:
                continue
            acc_in = g.producer(nid, 0)
            if acc_in is None:
                continue
            producer = g.node(acc_in.src)
            if producer.kind is not OpKind.STORE or producer.var != node.var:
                continue
            if acc_in.src_port != 0:
                continue
            # the stored value's source
            val_in = g.producer(producer.id, 0)
            assert val_in is not None
            val_src = Port(val_in.src, val_in.src_port)
            value_consumers = g.consumers(nid, 0)
            access_consumers = g.consumers(nid, 1)
            for a in value_consumers + access_consumers:
                g.disconnect(a)
            g.remove_node(nid)
            for a in value_consumers:
                g.connect(val_src, a.dst, a.dst_port)
            for a in access_consumers:
                g.connect(Port(producer.id, 0), a.dst, a.dst_port, is_access=True)
            if eliminated_log is not None:
                eliminated_log.append(nid)
            eliminated += 1
            changed = True
    return eliminated
