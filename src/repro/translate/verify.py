"""Independent certificate verifiers for the pass-manager pipeline.

Each compilation pass (see :mod:`repro.translate.passes`) emits a compact,
serializable *witness* of what it claims to have computed; the verifiers
here check a witness against the IR snapshot **without re-running the
pass** — the WaveCert recipe applied to the paper's transformations:

* ``intervals`` — loop descriptors re-checked structurally (single entry,
  edge coverage, nesting) and, at ``full``, against an independent
  recursive SCC recomputation of the loop nesting forest;
* ``switch_placement`` — the carried-set fixpoint equation plus, at
  ``full``, the brute-force Theorem 1 path search: ``F`` needs a switch
  for ``s`` iff a reference site of ``s`` lies between ``F`` and its
  immediate postdominator;
* ``source_vectors`` — the witness is checked to be *the* fixpoint of the
  Figure 11 transfer rules by recomputing every node's inflow from the
  witness itself (order-free: forward propagation over the backedge-free
  graph has a unique solution, so equality proves correctness);
* ``construct`` — graph inventory, switch table vs placement, and graph
  well-formedness;
* ``redundant_elim`` / ``forward_stores`` / ``parallel_reads`` — removed
  nodes are gone, the rewrite's enabling pattern no longer matches
  anywhere (the pass ran to its fixpoint), and the graph still validates;
* ``array_parallel`` — Figure 14 plumbing exists per pipelined (loop,
  array) and, at ``full``, the iteration-independence gate and the done
  token's linearity are re-established;
* ``istructures`` — promoted arrays carry no A-ops, unpromoted arrays no
  I-ops, and at ``full`` the write-once/read-after-writes gate is
  recomputed for *every* array in both directions.

Verification levels: ``cheap`` runs the structural/consistency checks
(linear in the IR); ``full`` adds the independent-algorithm recomputations
(brute-force path searches, recursive SCCs, per-array analyses).
"""

from __future__ import annotations

from collections import deque

from ..analysis.array_dep import (
    array_is_write_once,
    store_is_iteration_independent,
)
from ..analysis.control_dep import between_set
from ..analysis.dominance import postdominator_tree
from ..cfg.graph import CFG, NodeKind
from ..cfg.intervals import IrreducibleCFGError, find_loops, _sccs
from ..dfg.nodes import OpKind
from .redundant_elim import _PURE_VALUE_KINDS
from .transforms import _acc_in_port, _chain_next, _is_load

#: schemas wired by the Section 4 optimized construction (placement +
#: source vectors); the rest use the all-paths wiring
OPTIMIZED_SCHEMAS = ("schema2_opt", "schema3_opt", "memory_elim")


class CertificateError(Exception):
    """A pass certificate failed verification: the named pass is the
    guilty one (verification runs immediately after each pass, so blame
    cannot leak downstream)."""

    def __init__(self, pass_name: str, diff: str, region: str = ""):
        self.pass_name = pass_name
        self.diff = diff
        #: set by the region compiler when the failing pass ran inside a
        #: region compile: names the guilty region alongside the pass
        self.region = region
        msg = f"pass {pass_name!r}: {diff}"
        if region:
            msg = f"{region}: {msg}"
        super().__init__(msg)

    def __reduce__(self):
        # default Exception pickling would replay __init__ with the
        # formatted message only; region compiles cross process-pool
        # boundaries, so reconstruct from the real fields
        return (CertificateError, (self.pass_name, self.diff, self.region))


def _fail(pass_name: str, diff: str) -> None:
    raise CertificateError(pass_name, diff)


# -- intervals --------------------------------------------------------------


def _witness_loops(witness) -> list[dict]:
    loops = witness.get("loops") if isinstance(witness, dict) else None
    if not isinstance(loops, list):
        _fail("intervals", f"malformed witness: {witness!r}")
    return loops


def verify_intervals(ctx, witness, level: str) -> None:
    name = "intervals"
    cfg: CFG = ctx.cfg
    wloops = _witness_loops(witness)
    try:
        cfg.validate()
    except Exception as exc:
        _fail(name, f"transformed CFG invalid: {exc}")

    actual_entries = sorted(
        n for n in cfg.nodes if cfg.node(n).kind is NodeKind.LOOP_ENTRY
    )
    actual_exits = sorted(
        n for n in cfg.nodes if cfg.node(n).kind is NodeKind.LOOP_EXIT
    )
    w_entries = sorted(int(lp["entry"]) for lp in wloops)
    w_exits = sorted(int(x) for lp in wloops for x in lp["exits"])
    if w_entries != actual_entries:
        _fail(name, f"LOOP_ENTRY nodes {actual_entries} != witness {w_entries}")
    if w_exits != actual_exits:
        _fail(name, f"LOOP_EXIT nodes {actual_exits} != witness {w_exits}")

    by_id = {int(lp["id"]): lp for lp in wloops}
    if len(by_id) != len(wloops):
        _fail(name, "duplicate loop ids in witness")

    for lp in wloops:
        lid = int(lp["id"])
        entry, header = int(lp["entry"]), int(lp["header"])
        body = {int(n) for n in lp["body"]}
        exits = [int(x) for x in lp["exits"]]
        en = cfg.node(entry)
        if en.kind is not NodeKind.LOOP_ENTRY or en.loop_id != lid:
            _fail(name, f"loop {lid}: node {entry} is not its LOOP_ENTRY")
        if cfg.succ_ids(entry) != [header]:
            _fail(name, f"loop {lid}: entry {entry} does not lead to "
                        f"header {header} alone")
        if header not in body:
            _fail(name, f"loop {lid}: header {header} outside body")
        allowed_in = body | {entry}
        for n in body:
            for e in cfg.in_edges(n):
                if e.src not in allowed_in:
                    _fail(name, f"loop {lid}: body node {n} entered from "
                                f"outside ({e.src}) — not single-entry")
            for e in cfg.out_edges(n):
                if (e.dst not in body and e.dst != entry
                        and e.dst not in exits):
                    _fail(name, f"loop {lid}: edge {n}->{e.dst} leaves the "
                                f"body without a LOOP_EXIT")
        for x in exits:
            xn = cfg.node(x)
            if xn.kind is not NodeKind.LOOP_EXIT or xn.loop_id != lid:
                _fail(name, f"loop {lid}: node {x} is not its LOOP_EXIT")
            ins = cfg.in_edges(x)
            if len(ins) != 1 or ins[0].src not in body:
                _fail(name, f"loop {lid}: exit {x} not fed by exactly one "
                            f"body node")
            outs = cfg.out_edges(x)
            if len(outs) != 1 or outs[0].dst in body or outs[0].dst == entry:
                _fail(name, f"loop {lid}: exit {x} does not leave the loop")
        refs = frozenset().union(
            frozenset(), *(cfg.node(n).refs() for n in body)
        )
        if refs != frozenset(lp["refs"]):
            _fail(name, f"loop {lid}: refs {sorted(refs)} != witness "
                        f"{sorted(lp['refs'])}")
        parent = lp["parent"]
        if parent is None:
            if int(lp["depth"]) != 0:
                _fail(name, f"loop {lid}: top-level loop at depth "
                            f"{lp['depth']}")
        else:
            pw = by_id.get(int(parent))
            if pw is None:
                _fail(name, f"loop {lid}: unknown parent {parent}")
            pbody = {int(n) for n in pw["body"]}
            if not body < pbody:
                _fail(name, f"loop {lid}: body not nested in parent "
                            f"{parent}'s body")
            if int(lp["depth"]) != int(pw["depth"]) + 1:
                _fail(name, f"loop {lid}: depth {lp['depth']} != parent "
                            f"depth {pw['depth']} + 1")

    if level == "full":
        _verify_intervals_full(ctx, witness, wloops, by_id)


def _verify_intervals_full(ctx, witness, wloops, by_id) -> None:
    """Independent recomputation: the loop nesting forest of the
    *transformed* graph, found by recursive SCC analysis, must match the
    witness one-to-one (matched on entry nodes)."""
    name = "intervals"
    cfg: CFG = ctx.cfg

    def descendants(lid: int) -> set[int]:
        out, frontier = set(), [lid]
        while frontier:
            cur = frontier.pop()
            for other in by_id.values():
                if other["parent"] is not None and int(other["parent"]) == cur:
                    oid = int(other["id"])
                    if oid not in out:
                        out.add(oid)
                        frontier.append(oid)
        return out

    def check_region(region: set[int], expected: list[dict]) -> None:
        expected_by_entry = {int(lp["entry"]): lp for lp in expected}
        seen = set()
        for scc in _sccs(region, cfg):
            entries = {
                e.dst
                for nid in scc
                for e in cfg.in_edges(nid)
                if e.src not in scc
            }
            if len(entries) != 1:
                _fail(name, f"transformed graph still has a multi-entry "
                            f"cyclic region {sorted(scc)}")
            entry = entries.pop()
            lp = expected_by_entry.get(entry)
            if lp is None:
                _fail(name, f"SCC entered at {entry} matches no witness "
                            f"loop at this nesting level")
            lid = int(lp["id"])
            seen.add(entry)
            body = {int(n) for n in lp["body"]}
            extra = scc - body - {entry}
            if extra:
                _fail(name, f"loop {lid}: SCC nodes {sorted(extra)} missing "
                            f"from witness body")
            # body may keep control nodes of descendant loops that the
            # cyclic region no longer passes through (an inner exit
            # chained straight into this loop's exit)
            desc = descendants(lid)
            ctrl = {
                int(n)
                for d in desc
                for n in ([by_id[d]["entry"]] + list(by_id[d]["exits"]))
            }
            leftovers = body - scc
            bad = {
                n for n in leftovers
                if n not in ctrl
                or cfg.node(n).kind not in (NodeKind.LOOP_ENTRY,
                                            NodeKind.LOOP_EXIT)
            }
            if bad:
                _fail(name, f"loop {lid}: witness body nodes {sorted(bad)} "
                            f"not in the recomputed cyclic region")
            children = [
                c for c in by_id.values()
                if c["parent"] is not None and int(c["parent"]) == lid
            ]
            check_region(scc - {entry}, children)
        missing = set(expected_by_entry) - seen
        if missing:
            _fail(name, f"witness loops entered at {sorted(missing)} have "
                        f"no cyclic region in the graph")

    top = [lp for lp in wloops if lp["parent"] is None]
    check_region(set(cfg.nodes), top)

    if ctx.raw_cfg is not None:
        irreducible = False
        try:
            find_loops(ctx.raw_cfg)
        except IrreducibleCFGError:
            irreducible = True
        if bool(witness.get("split_applied")) != irreducible:
            _fail(name, f"split_applied={witness.get('split_applied')} but "
                        f"raw CFG irreducible={irreducible}")


# -- switch placement -------------------------------------------------------


def _parse_placement(witness) -> dict[str, frozenset[int]]:
    placement = witness.get("placement") if isinstance(witness, dict) else None
    if not isinstance(placement, dict):
        _fail("switch_placement", f"malformed witness: {witness!r}")
    return {
        str(sname): frozenset(int(f) for f in forks)
        for sname, forks in placement.items()
    }


def verify_switch_placement(ctx, witness, level: str) -> None:
    name = "switch_placement"
    cfg: CFG = ctx.cfg
    placement = _parse_placement(witness)
    carried_w = {
        int(lid): frozenset(names)
        for lid, names in (witness.get("carried") or {}).items()
    }
    snames = {s.name for s in ctx.streams}
    if set(placement) != snames:
        _fail(name, f"placement streams {sorted(placement)} != "
                    f"{sorted(snames)}")
    if ctx.placement is not None:
        actual = {k: frozenset(v) for k, v in ctx.placement.items()}
        if placement != actual:
            bad = [k for k in placement if placement[k] != actual.get(k)]
            _fail(name, f"witness placement disagrees with the IR for "
                        f"streams {sorted(bad)}")
    for sname, forks in placement.items():
        for f in forks:
            if f not in cfg.nodes or not cfg.is_fork(f):
                _fail(name, f"stream {sname!r}: placed node {f} is not "
                            f"a fork")

    by_name = {s.name: s for s in ctx.streams}
    for lp in ctx.loops:
        want = carried_w.get(lp.id)
        if want is None:
            _fail(name, f"loop {lp.id}: no carried set in witness")
        for nid in [lp.entry_node, *lp.exit_nodes]:
            got = cfg.node(nid).carried_streams
            if got is None:
                _fail(name, f"loop {lp.id}: control node {nid} has no "
                            f"carried-stream annotation")
            if got != want:
                _fail(name, f"loop {lp.id}: node {nid} carries "
                            f"{sorted(got)} != witness {sorted(want)}")
        # the carried set must be a fixpoint of the closure equation:
        # base references plus any stream some body fork switches
        base = {
            s.name for s in ctx.streams if s.governs & lp.refs
        }
        body_forks = [
            n for n in lp.body if cfg.node(n).kind is NodeKind.FORK
        ]
        closed = base | {
            sname
            for sname in snames
            if any(f in placement[sname] for f in body_forks)
        }
        if closed != want:
            _fail(name, f"loop {lp.id}: carried set {sorted(want)} is not "
                        f"the closure fixpoint {sorted(closed)}")

    if level == "cheap":
        from .switch_placement import switch_placement as _recompute

        recomputed = _recompute(cfg, ctx.streams)
        if {k: frozenset(v) for k, v in recomputed.items()} != placement:
            bad = [k for k in placement
                   if placement[k] != frozenset(recomputed.get(k, ()))]
            _fail(name, f"recomputed placement differs for streams "
                        f"{sorted(bad)}")
        return

    # full: Theorem 1 by brute-force path search, per (stream, fork)
    pdom = postdominator_tree(cfg)
    between_cache: dict[int, set[int]] = {}
    candidates = [n for n in cfg.nodes if cfg.is_fork(n)]
    for sname in sorted(snames):
        s = by_name[sname]
        sites = {n for n in cfg.nodes if s.referenced_by(cfg.node(n))}
        for f in candidates:
            if f not in between_cache:
                between_cache[f] = between_set(cfg, f, pdom)
            needs = bool(between_cache[f] & sites)
            placed = f in placement[sname]
            if needs != placed:
                _fail(name, f"stream {sname!r} fork {f}: brute-force "
                            f"needs_switch={needs} but placement says "
                            f"{placed}")
        extra = placement[sname] - set(candidates)
        if extra:
            _fail(name, f"stream {sname!r}: non-fork nodes {sorted(extra)} "
                        f"in placement")


# -- source vectors ---------------------------------------------------------


def _parse_sv_table(table) -> dict[str, dict[int, frozenset]]:
    out: dict[str, dict[int, frozenset]] = {}
    for sname, per_node in (table or {}).items():
        out[str(sname)] = {
            int(nid): frozenset((int(m), bool(d)) for m, d in srcs)
            for nid, srcs in per_node.items()
        }
    return out


def _sv_inflow(cfg: CFG, streams, placement, loops, pdom, W):
    """One application of the Figure 11 transfer rules, reading every
    node's inflow from the witness ``W`` instead of from accumulated
    state.  Order-free: each node's contribution depends only on ``W``
    at that node, so any traversal order yields the same result."""
    loops_by_entry = {lp.entry_node: lp for lp in loops}
    inflow: dict[str, dict[int, set]] = {
        s.name: {n: set() for n in cfg.nodes} for s in streams
    }
    bb: dict[str, dict[int, set]] = {s.name: {} for s in streams}
    convention = (cfg.entry, cfg.exit, False)

    def w_at(name: str, nid: int) -> frozenset:
        return W.get(name, {}).get(nid, frozenset())

    def bypass_to(fork: int, name: str, contribution) -> None:
        if not contribution:
            return
        p = pdom.idom[fork]
        lp = loops_by_entry.get(p)
        if lp is not None and fork in lp.body:
            bb[name].setdefault(p, set()).update(contribution)
        else:
            inflow[name][p].update(contribution)

    def forward_edges(nid: int):
        out = []
        for e in cfg.out_edges(nid):
            if (e.src, e.dst, e.direction) == convention:
                continue
            lp = loops_by_entry.get(e.dst)
            if lp is not None and e.src in lp.body:
                continue
            out.append(e)
        return out

    for nid in cfg.nodes:
        node = cfg.node(nid)
        kind = node.kind
        for s in streams:
            name = s.name
            if kind is NodeKind.START:
                true_succ = next(
                    e.dst for e in cfg.out_edges(nid) if e.direction is True
                )
                inflow[name][true_succ].add((nid, True))
            elif kind is NodeKind.END:
                continue
            elif kind is NodeKind.FORK:
                if nid != cfg.entry and nid in placement[name]:
                    for e in forward_edges(nid):
                        inflow[name][e.dst].add((nid, bool(e.direction)))
                elif s.referenced_by(node):
                    bypass_to(nid, name, {(nid, True)})
                else:
                    bypass_to(nid, name, w_at(name, nid))
            elif kind is NodeKind.JOIN:
                srcs = w_at(name, nid)
                if len(srcs) > 1:
                    contribution = {(nid, True)}
                else:
                    contribution = set(srcs)
                for e in forward_edges(nid):
                    inflow[name][e.dst].update(contribution)
            elif kind is NodeKind.LOOP_ENTRY and not s.referenced_by(node):
                lp = loops_by_entry[nid]
                target = nid
                for p in pdom.walk_up(pdom.idom[nid]):
                    if p not in lp.body and p != nid:
                        target = p
                        break
                srcs = w_at(name, nid)
                if len(srcs) > 1:
                    inflow[name][target].add((nid, True))
                else:
                    inflow[name][target].update(srcs)
            else:
                if s.referenced_by(node):
                    contribution = {(nid, True)}
                else:
                    contribution = set(w_at(name, nid))
                for e in forward_edges(nid):
                    inflow[name][e.dst].update(contribution)
    return inflow, bb


def verify_source_vectors(ctx, witness, level: str) -> None:
    name = "source_vectors"
    cfg: CFG = ctx.cfg
    if not isinstance(witness, dict):
        _fail(name, f"malformed witness: {witness!r}")
    W = _parse_sv_table(witness.get("sv"))
    BB = _parse_sv_table(witness.get("back_bypass"))
    snames = {s.name for s in ctx.streams}
    if set(W) - snames or set(BB) - snames:
        _fail(name, f"witness names unknown streams "
                    f"{sorted((set(W) | set(BB)) - snames)}")

    if ctx.svs is not None:
        for s in ctx.streams:
            actual = {
                n: v for n, v in ctx.svs.sv.get(s.name, {}).items() if v
            }
            if W.get(s.name, {}) != actual:
                _fail(name, f"witness SV for {s.name!r} disagrees with "
                            f"the IR snapshot")
            actual_bb = {
                n: v
                for n, v in ctx.svs.back_bypass.get(s.name, {}).items()
                if v
            }
            if BB.get(s.name, {}) != actual_bb:
                _fail(name, f"witness back-bypass for {s.name!r} disagrees "
                            f"with the IR snapshot")

    pdom = postdominator_tree(cfg)
    inflow, bb = _sv_inflow(
        cfg, ctx.streams, ctx.placement, ctx.loops, pdom, W
    )
    for s in ctx.streams:
        per_node = inflow[s.name]
        for n in cfg.nodes:
            got = frozenset(per_node.get(n, ()))
            want = W.get(s.name, {}).get(n, frozenset())
            if got != want:
                _fail(name, f"stream {s.name!r} node {n}: the witness is "
                            f"not a fixpoint of the Figure 11 rules "
                            f"({sorted(want)} vs recomputed {sorted(got)})")
        got_bb = {n: frozenset(v) for n, v in bb[s.name].items() if v}
        want_bb = BB.get(s.name, {})
        if got_bb != want_bb:
            _fail(name, f"stream {s.name!r}: back-bypass table is not a "
                        f"fixpoint of the Figure 11 rules")

    if level != "full":
        return

    # full: every recorded source exists and can reach its consumer, and
    # every site the construction will consume with .single() has exactly
    # one source (so the build cannot crash later)
    reach_cache: dict[int, set[int]] = {}

    def reaches(m: int, n: int) -> bool:
        if m not in reach_cache:
            seen = set()
            frontier = deque([m])
            while frontier:
                cur = frontier.popleft()
                for sid in cfg.succ_ids(cur):
                    if sid not in seen:
                        seen.add(sid)
                        frontier.append(sid)
            reach_cache[m] = seen
        return n in reach_cache[m]

    for sname, per_node in list(W.items()) + list(BB.items()):
        for n, srcs in per_node.items():
            if n not in cfg.nodes:
                _fail(name, f"stream {sname!r}: SV recorded at unknown "
                            f"node {n}")
            for (m, _d) in srcs:
                if m not in cfg.nodes:
                    _fail(name, f"stream {sname!r} node {n}: source {m} "
                                f"is not a CFG node")
                if not reaches(m, n):
                    _fail(name, f"stream {sname!r} node {n}: source {m} "
                                f"cannot reach it")

    for s in ctx.streams:
        for n in cfg.nodes:
            node = cfg.node(n)
            needs_single = (
                (node.kind is NodeKind.ASSIGN and s.referenced_by(node))
                or (node.kind is NodeKind.FORK and n != cfg.entry
                    and (s.referenced_by(node)
                         or n in ctx.placement[s.name]))
                or (node.kind is NodeKind.LOOP_EXIT
                    and s.referenced_by(node))
            )
            if needs_single:
                srcs = W.get(s.name, {}).get(n, frozenset())
                if len(srcs) != 1:
                    _fail(name, f"stream {s.name!r} node {n}: consuming "
                                f"site has {len(srcs)} sources, wants 1")


# -- graph construction -----------------------------------------------------


def verify_construct(ctx, witness, level: str) -> None:
    name = "construct"
    t = ctx.translation
    g = t.graph
    cfg: CFG = ctx.cfg
    if not isinstance(witness, dict):
        _fail(name, f"malformed witness: {witness!r}")
    if witness.get("nodes") != len(g.nodes):
        _fail(name, f"node count {len(g.nodes)} != witness "
                    f"{witness.get('nodes')}")
    if witness.get("arcs") != g.num_arcs():
        _fail(name, f"arc count {g.num_arcs()} != witness "
                    f"{witness.get('arcs')}")
    by_kind = {}
    for n in g.nodes.values():
        by_kind[n.kind.name] = by_kind.get(n.kind.name, 0) + 1
    if dict(witness.get("by_kind") or {}) != by_kind:
        _fail(name, f"kind inventory {by_kind} != witness "
                    f"{witness.get('by_kind')}")
    try:
        g.validate(allow_dangling_outputs=True)
    except Exception as exc:
        _fail(name, f"graph invalid: {exc}")

    switches = {
        int(f): {str(sn): int(did) for sn, did in table.items()}
        for f, table in (witness.get("switches") or {}).items()
    }
    if switches != t.switches:
        _fail(name, "witness switch table disagrees with the IR")
    for f, table in switches.items():
        for sname, did in table.items():
            node = g.nodes.get(did)
            if node is None or node.kind is not OpKind.SWITCH:
                _fail(name, f"fork {f} stream {sname!r}: node {did} is "
                            f"not a SWITCH")

    snames = [s.name for s in ctx.streams]
    actual_pairs = {
        (f, sn) for f, table in switches.items() for sn in table
    }
    if ctx.options.schema in OPTIMIZED_SCHEMAS:
        expected_pairs = {
            (f, sname)
            for sname in snames
            for f in ctx.placement[sname]
            if f != cfg.entry and cfg.node(f).kind is NodeKind.FORK
        }
        if actual_pairs != expected_pairs:
            _fail(name, f"switch set disagrees with placement: extra "
                        f"{sorted(actual_pairs - expected_pairs)}, missing "
                        f"{sorted(expected_pairs - actual_pairs)}")
    elif snames:
        forks = [
            n for n in cfg.nodes if cfg.node(n).kind is NodeKind.FORK
        ]
        expected_pairs = {(f, sn) for f in forks for sn in snames}
        if actual_pairs != expected_pairs:
            _fail(name, f"all-paths wiring must switch every stream at "
                        f"every fork; got {len(actual_pairs)} switches, "
                        f"expected {len(expected_pairs)}")

    if level == "full" and ctx.options.schema in OPTIMIZED_SCHEMAS:
        for f, table in switches.items():
            preds = set()
            for did in table.values():
                arc = g.producer(did, 1)
                if arc is None:
                    _fail(name, f"fork {f}: switch {did} has no predicate "
                                f"input")
                preds.add((arc.src, arc.src_port))
            if len(preds) > 1:
                _fail(name, f"fork {f}: its switches read {len(preds)} "
                            f"different predicate sources")


# -- redundant elimination --------------------------------------------------


def verify_redundant_elim(ctx, witness, level: str) -> None:
    name = "redundant_elim"
    g = ctx.translation.graph
    if not isinstance(witness, dict):
        _fail(name, f"malformed witness: {witness!r}")
    removed = [int(n) for n in witness.get("switches_removed", [])]
    swept = [int(n) for n in witness.get("dead_swept", [])]
    for nid in removed + swept:
        if nid in g.nodes:
            _fail(name, f"node {nid} reported removed but still present")
    if ctx.redundant_eliminated != len(removed):
        _fail(name, f"counter {ctx.redundant_eliminated} != "
                    f"{len(removed)} recorded removals")
    # the pass claims a fixpoint: no redundant switch may remain
    for nid, node in g.nodes.items():
        if node.kind is not OpKind.SWITCH:
            continue
        outs0 = g.consumers(nid, 0)
        outs1 = g.consumers(nid, 1)
        if len(outs0) == 1 and len(outs1) == 1:
            (a0,), (a1,) = outs0, outs1
            if (a0.dst == a1.dst
                    and g.node(a0.dst).kind is OpKind.MERGE):
                _fail(name, f"switch {nid} still feeds merge {a0.dst} on "
                            f"both outputs (fixpoint not reached)")
    for nid, node in g.nodes.items():
        if node.kind in _PURE_VALUE_KINDS and not g.consumers(nid, 0):
            _fail(name, f"dead value node {nid} ({node.kind.name}) "
                        f"survived the sweep")
    try:
        g.validate(allow_dangling_outputs=True)
    except Exception as exc:
        _fail(name, f"graph invalid after elimination: {exc}")


# -- array-store pipelining (Figure 14) -------------------------------------


def verify_array_parallel(ctx, witness, level: str) -> None:
    name = "array_parallel"
    g = ctx.translation.graph
    cfg: CFG = ctx.cfg
    if not isinstance(witness, dict):
        _fail(name, f"malformed witness: {witness!r}")
    pipelined = [(int(lid), str(arr)) for lid, arr in
                 witness.get("pipelined", [])]
    skipped = [(int(lid), str(arr), str(why)) for lid, arr, why in
               witness.get("skipped", [])]
    if ctx.array_report is not None:
        if (tuple(pipelined) != ctx.array_report.pipelined
                or tuple(skipped) != ctx.array_report.skipped):
            _fail(name, "witness disagrees with the recorded report")
    overlap = {(l, a) for l, a in pipelined} & {
        (l, a) for l, a, _ in skipped
    }
    if overlap:
        _fail(name, f"(loop, array) pairs both pipelined and skipped: "
                    f"{sorted(overlap)}")

    les = {
        n.loop_id: n for n in g.nodes.values()
        if n.kind is OpKind.LOOP_ENTRY
    }
    for lid, arr in pipelined:
        done = f"~done:{arr}"
        le = les.get(lid)
        if le is None or done not in le.channel_labels:
            _fail(name, f"loop {lid}: LOOP_ENTRY lacks the {done!r} "
                        f"completion channel")
        if not any(
            n.kind is OpKind.LOOP_EXIT and n.loop_id == lid
            and done in n.channel_labels
            for n in g.nodes.values()
        ):
            _fail(name, f"loop {lid}: no LOOP_EXIT carries {done!r}")

    def count_tagged(kind: OpKind, tag: str) -> int:
        return sum(
            1 for n in g.nodes.values() if n.kind is kind and n.tag == tag
        )

    per_arr: dict[str, int] = {}
    for _lid, arr in pipelined:
        per_arr[arr] = per_arr.get(arr, 0) + 1
    for arr, cnt in per_arr.items():
        for kind, tag in (
            (OpKind.SYNCH, f"fig14-done:{arr}"),
            (OpKind.SWITCH, f"fig14-switch:{arr}"),
            (OpKind.SYNCH, f"fig14-exit:{arr}"),
        ):
            got = count_tagged(kind, tag)
            if got != cnt:
                _fail(name, f"array {arr!r}: {got} {tag!r} nodes for "
                            f"{cnt} pipelined loops")
    try:
        g.validate(allow_dangling_outputs=True)
    except Exception as exc:
        _fail(name, f"graph invalid after rewrite: {exc}")

    if level != "full":
        return

    loops_by_id = {lp.id: lp for lp in ctx.loops}
    for lid, arr in pipelined:
        lp = loops_by_id.get(lid)
        if lp is None:
            _fail(name, f"pipelined loop {lid} does not exist")
        stores = [
            n for n in lp.body
            if cfg.node(n).kind is NodeKind.ASSIGN
            and cfg.node(n).stores() == {arr}
        ]
        if len(stores) != 1:
            _fail(name, f"loop {lid}: {len(stores)} stores to {arr!r}, "
                        f"pipelining needs exactly one")
        if not store_is_iteration_independent(cfg, lp, stores[0]):
            _fail(name, f"loop {lid}: store to {arr!r} is not iteration "
                        f"independent — the rewrite was unsound")
        # done-token linearity: the completion channel output feeds
        # exactly one consumer, the per-iteration synch
        le = les[lid]
        ci = le.channel_labels.index(f"~done:{arr}")
        outs = g.consumers(le.id, ci)
        if len(outs) != 1 or g.node(outs[0].dst).kind is not OpKind.SYNCH:
            _fail(name, f"loop {lid}: {arr!r} completion token is not "
                        f"linear (consumers: {len(outs)})")


# -- I-structure promotion --------------------------------------------------


def verify_istructures(ctx, witness, level: str) -> None:
    name = "istructures"
    g = ctx.translation.graph
    cfg: CFG = ctx.cfg
    if not isinstance(witness, dict):
        _fail(name, f"malformed witness: {witness!r}")
    promoted = [str(a) for a in witness.get("promoted", [])]
    if promoted != list(ctx.istructure_arrays):
        _fail(name, f"witness promoted {promoted} != recorded "
                    f"{list(ctx.istructure_arrays)}")
    pset = set(promoted)
    for n in g.nodes.values():
        if n.kind in (OpKind.ASTORE, OpKind.ALOAD) and n.var in pset:
            _fail(name, f"promoted array {n.var!r} still has a "
                        f"{n.kind.name} (node {n.id})")
        if n.kind in (OpKind.ISTORE, OpKind.ILOAD) and n.var not in pset:
            _fail(name, f"unpromoted array {n.var!r} has a {n.kind.name} "
                        f"(node {n.id})")
    try:
        g.validate(allow_dangling_outputs=True)
    except Exception as exc:
        _fail(name, f"graph invalid after promotion: {exc}")

    if level != "full":
        return
    from .array_parallel import _reads_strictly_after_writing_loops

    for arr in sorted(ctx.prog.arrays):
        eligible = array_is_write_once(cfg, ctx.loops, arr) and (
            _reads_strictly_after_writing_loops(cfg, ctx.loops, arr)
        )
        if eligible != (arr in pset):
            verb = "missed eligible" if eligible else "wrongly promoted"
            _fail(name, f"{verb} array {arr!r}")


# -- store forwarding -------------------------------------------------------


def verify_forward_stores(ctx, witness, level: str) -> None:
    name = "forward_stores"
    g = ctx.translation.graph
    if not isinstance(witness, dict):
        _fail(name, f"malformed witness: {witness!r}")
    removed = [int(n) for n in witness.get("loads_removed", [])]
    for nid in removed:
        if nid in g.nodes:
            _fail(name, f"load {nid} reported forwarded but still present")
    if ctx.stores_forwarded != len(removed):
        _fail(name, f"counter {ctx.stores_forwarded} != {len(removed)} "
                    f"recorded removals")
    if level == "full":
        for nid, node in g.nodes.items():
            if node.kind is not OpKind.LOAD:
                continue
            arc = g.producer(nid, 0)
            if arc is None or arc.src_port != 0:
                continue
            producer = g.node(arc.src)
            if (producer.kind is OpKind.STORE
                    and producer.var == node.var):
                _fail(name, f"forwardable STORE->LOAD pair "
                            f"({arc.src}->{nid}, var {node.var!r}) "
                            f"survived the fixpoint")
    try:
        g.validate(allow_dangling_outputs=True)
    except Exception as exc:
        _fail(name, f"graph invalid after forwarding: {exc}")


# -- parallel reads ---------------------------------------------------------


def verify_parallel_reads(ctx, witness, level: str) -> None:
    name = "parallel_reads"
    g = ctx.translation.graph
    if not isinstance(witness, dict):
        _fail(name, f"malformed witness: {witness!r}")
    chains = witness.get("chains", [])
    if ctx.reads_parallelized != len(chains):
        _fail(name, f"counter {ctx.reads_parallelized} != {len(chains)} "
                    f"recorded chains")
    for chain in chains:
        loads = [int(n) for n in chain["loads"]]
        synch_id = int(chain["synch"])
        synch = g.nodes.get(synch_id)
        if (synch is None or synch.kind is not OpKind.SYNCH
                or synch.tag != "parallel-reads"):
            _fail(name, f"chain collector {synch_id} is not a "
                        f"parallel-reads SYNCH")
        if synch.nports != len(loads):
            _fail(name, f"collector {synch_id} has {synch.nports} ports "
                        f"for {len(loads)} loads")
        srcs = set()
        for nid in loads:
            node = g.nodes.get(nid)
            if node is None or not _is_load(g, nid):
                _fail(name, f"chain member {nid} is not a load")
            arc = g.producer(nid, _acc_in_port(node.kind))
            if arc is None:
                _fail(name, f"load {nid} lost its access input")
            srcs.add((arc.src, arc.src_port))
            if not any(
                a.dst == synch_id for a in g.consumers(nid, 1)
            ):
                _fail(name, f"load {nid} does not report completion to "
                            f"collector {synch_id}")
        if len(srcs) != 1:
            _fail(name, f"chain via {synch_id}: loads read access from "
                        f"{len(srcs)} different sources, want one fan-out")
    if level == "full":
        for nid in g.nodes:
            if _is_load(g, nid) and _chain_next(g, nid) is not None:
                _fail(name, f"sequential load chain through {nid} "
                            f"survived the rewrite")
    try:
        g.validate(allow_dangling_outputs=True)
    except Exception as exc:
        _fail(name, f"graph invalid after rewrite: {exc}")


# -- region stitch ----------------------------------------------------------


def verify_region_stitch(ctx, witness, level: str) -> None:
    """Check the region compiler's stitch certificate.

    Cheap: the partition is a contiguous cover of the top-level body
    with >= 2 regions, the stream interface matches the context, the
    recorded node/arc totals match the stitched graph, and the graph
    validates.  Full additionally recompiles the program monolithically
    and demands identical structural statistics — an independent
    end-to-end check that region composition lost nothing (the N-way
    oracle covers behavior)."""
    name = "region_stitch"
    g = ctx.translation.graph
    spans = witness.get("spans") or []
    if len(spans) < 2:
        _fail(name, f"partition has {len(spans)} regions (need >= 2)")
    if witness.get("n_regions") != len(spans):
        _fail(name, "n_regions disagrees with spans")
    n_body = len(ctx.prog.body)
    pos = 0
    for lo, hi in spans:
        if lo != pos or hi <= lo:
            _fail(name, f"spans not a contiguous cover at [{lo},{hi})")
        pos = hi
    if pos != n_body:
        _fail(name, f"spans cover [0,{pos}) but body has {n_body} statements")
    keys = witness.get("region_keys") or []
    if len(keys) != len(spans):
        _fail(name, "one region key required per region")
    names = [s.name for s in ctx.streams]
    if witness.get("streams") != names:
        _fail(name, f"stream interface {witness.get('streams')} != {names}")
    if witness.get("nodes") != len(g.nodes):
        _fail(name, f"witness records {witness.get('nodes')} nodes, "
                    f"graph has {len(g.nodes)}")
    if witness.get("arcs") != g.num_arcs():
        _fail(name, f"witness records {witness.get('arcs')} arcs, "
                    f"graph has {g.num_arcs()}")
    try:
        g.validate(allow_dangling_outputs=True)
    except Exception as exc:
        _fail(name, f"stitched graph invalid: {exc}")
    if level != "full":
        return

    from ..dfg.stats import graph_stats
    from .pipeline import compile_program

    mono = compile_program(
        ctx.prog, options=_replace_options(ctx.options, region_compile="off")
    )
    got, want = graph_stats(g), graph_stats(mono.graph)
    if got != want:
        _fail(
            name,
            f"stitched graph differs from monolithic: "
            f"stitched [{got.summary()}] vs monolithic [{want.summary()}]",
        )


def _replace_options(options, **kw):
    from dataclasses import replace

    return replace(options, **kw)


#: pass name -> verifier(ctx, witness, level)
VERIFIERS = {
    "region_stitch": verify_region_stitch,
    "intervals": verify_intervals,
    "switch_placement": verify_switch_placement,
    "source_vectors": verify_source_vectors,
    "construct": verify_construct,
    "redundant_elim": verify_redundant_elim,
    "array_parallel": verify_array_parallel,
    "istructures": verify_istructures,
    "forward_stores": verify_forward_stores,
    "parallel_reads": verify_parallel_reads,
}
