"""Translation-validation subsystem: grammar-directed program generation,
an N-way differential oracle over every semantic route the repo offers,
and a delta-debugging minimizer that turns any divergence into a small,
seed-pinned regression case.

The three pieces compose into the ``repro fuzz`` CLI and the standing
correctness gate every future backend must pass:

* :mod:`~repro.validate.progen` — seeded generator of well-formed source
  programs (tunable nesting, goto density incl. irreducible CFGs, array
  ops, alias declarations, integer ranges) plus input vectors;
* :mod:`~repro.validate.oracle` — runs one program through the AST
  interpreter, the CFG interpreter, and every legal translation schema
  under the fast/step/packed simulator loops (cached and uncached), and
  classifies any disagreement;
* :mod:`~repro.validate.reduce` — ddmin-style shrinking of a diverging
  program at statement/block granularity, emitting a replayable repro;
* :mod:`~repro.validate.fuzz` — the budgeted fuzzing driver behind
  ``repro fuzz``, wired into the obs metrics/span layers.
"""

from .fuzz import Finding, FuzzReport, run_fuzz
from .oracle import (
    DETERMINISTIC_METRIC_FIELDS,
    Divergence,
    OracleReport,
    assign_blame,
    check_batch_routes,
    check_program,
    legal_schemas,
)
from .progen import GeneratedProgram, GenKnobs, generate
from .reduce import (
    MinimizeResult,
    RegressionFormatError,
    minimize,
    parse_regression,
    parse_regression_strict,
    write_regression,
)

__all__ = [
    "DETERMINISTIC_METRIC_FIELDS",
    "Divergence",
    "Finding",
    "FuzzReport",
    "GenKnobs",
    "GeneratedProgram",
    "MinimizeResult",
    "OracleReport",
    "RegressionFormatError",
    "assign_blame",
    "check_batch_routes",
    "check_program",
    "generate",
    "legal_schemas",
    "minimize",
    "parse_regression",
    "parse_regression_strict",
    "run_fuzz",
    "write_regression",
]
