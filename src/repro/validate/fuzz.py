"""Budgeted fuzzing driver behind ``repro fuzz``.

One campaign generates ``count`` seeded programs (seed, seed+1, …),
pushes each through the full N-way oracle, and finishes with the
batch-engine route check (serial vs pooled ``run_batch``) over every
generated program.  A wall-clock budget caps the campaign; divergences
are optionally minimized and persisted as replayable regression cases.

Observability: the campaign records ``validate.*`` spans through the
global tracer and counts programs / routes / divergences plus per-check
latency in a :class:`~repro.obs.metrics.MetricsRegistry` (its snapshot
rides on the report, and the CLI prints it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from ..obs.metrics import MetricsRegistry
from ..obs.trace import tracer
from ..translate.pipeline import SCHEMAS, CompileOptions, compile_program
from ..translate.verify import CertificateError
from .oracle import (
    Divergence,
    OracleReport,
    assign_blame,
    check_batch_routes,
    check_program,
)
from .progen import GeneratedProgram, GenKnobs, generate
from .reduce import minimize, write_regression

#: minimum wall-clock slice a finding's minimization gets even when the
#: campaign budget is already spent — each predicate call is a full
#: N-way oracle run, so an unbounded minimize can dwarf the campaign
#: itself; a small floor still shrinks the common shallow divergences
_MINIMIZE_GRACE_S = 10.0

#: one fuzz finding: the program, its oracle report, and (if minimization
#: ran) the shrunken source + where it was persisted
@dataclass
class Finding:
    program: GeneratedProgram
    report: OracleReport
    minimized: str | None = None
    minimized_lines: int = 0
    regression_path: Path | None = None
    #: which predicate drove minimization: "oracle" (full N-way re-check)
    #: or "pass:<name>" (the blamed pass's verifier alone)
    minimized_via: str = ""

    @property
    def divergence(self) -> Divergence:
        return self.report.divergences[0]


@dataclass
class FuzzReport:
    """Outcome of one :func:`run_fuzz` campaign."""

    seed: int
    count_requested: int
    programs_run: int = 0
    routes_run: int = 0
    elapsed_s: float = 0.0
    budget_exhausted: bool = False
    findings: list[Finding] = field(default_factory=list)
    batch_divergences: list[Divergence] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.batch_divergences

    @property
    def total_divergences(self) -> int:
        return (
            sum(len(f.report.divergences) for f in self.findings)
            + len(self.batch_divergences)
        )

    def summary(self) -> str:
        tail = "budget exhausted, " if self.budget_exhausted else ""
        verdict = (
            "no divergences"
            if self.ok
            else f"{self.total_divergences} divergences in "
            f"{len(self.findings)} programs"
            + (f" + {len(self.batch_divergences)} batch" if
               self.batch_divergences else "")
        )
        return (
            f"{self.programs_run}/{self.count_requested} programs, "
            f"{self.routes_run} routes in {self.elapsed_s:.1f}s "
            f"({tail}{verdict})"
        )


def _same_kind_predicate(finding_kind: str, inputs, **oracle_kwargs):
    """The minimization predicate: the reduced program still produces a
    divergence of the same kind (any route — routes shift as statements
    disappear, the fault class is what must survive)."""

    def predicate(source: str) -> bool:
        report = check_program(source, inputs, **oracle_kwargs)
        return any(d.kind == finding_kind for d in report.divergences)

    return predicate


def _pass_verifier_predicate(schema: str, pass_name: str):
    """Minimization predicate for a blamed finding: compile-only, with
    per-pass verification at ``full`` — the candidate still reproduces
    iff the *same pass's* certificate is rejected.  No simulation, no
    N-way fan-out: each ddmin probe is one compile."""

    options = CompileOptions(schema=schema, verify_passes="full")

    def predicate(source: str) -> bool:
        try:
            compile_program(source, options=options)
        except CertificateError as exc:
            return exc.pass_name == pass_name
        except Exception:
            return False
        return False

    return predicate


def run_fuzz(
    seed: int = 0,
    count: int = 100,
    budget_s: float | None = None,
    knobs: GenKnobs | None = None,
    minimize_findings: bool = False,
    out_dir: str | Path | None = None,
    pooled: bool = True,
    pool_size: int = 2,
    cache_dir=None,
    max_findings: int = 10,
    registry: MetricsRegistry | None = None,
    progress=None,
    verify_passes: str = "off",
    blame: bool = False,
) -> FuzzReport:
    """Run one fuzz campaign; see the module docstring.

    * ``budget_s`` — wall-clock cap; generation stops once exceeded.
    * ``minimize_findings`` — shrink each diverging program and persist
      it (``out_dir``, default ``tests/corpus/regressions/``).
    * ``pooled`` — run the serial-vs-pooled batch route at the end.
    * ``max_findings`` — stop early after this many diverging programs
      (a broken build diverges everywhere; there is nothing to learn
      from finding #200).
    * ``progress`` — optional callable ``(i, report)`` per program.
    * ``verify_passes`` — per-pass translation validation level during
      the oracle's compiles (``off``/``cheap``/``full``).
    * ``blame`` — recompile each finding at ``verify_passes="full"`` to
      attach a guilty-pass label to its divergences; a blamed finding is
      then minimized against that pass's verifier alone (compile-only
      probes) instead of the whole oracle.
    """
    k = knobs or GenKnobs()
    reg = registry or MetricsRegistry()
    programs_counter = reg.counter("fuzz.programs")
    routes_counter = reg.counter("fuzz.routes")
    div_counter = reg.counter("fuzz.divergences")
    check_ms = reg.histogram("fuzz.check_ms")

    report = FuzzReport(seed=seed, count_requested=count)
    clean: list[GeneratedProgram] = []
    t0 = time.perf_counter()

    with tracer.span("validate.fuzz", seed=seed, count=count):
        for i in range(count):
            if budget_s is not None and time.perf_counter() - t0 > budget_s:
                report.budget_exhausted = True
                break
            gp = generate(seed + i, k)
            t_check = time.perf_counter()
            oracle_report = check_program(
                gp.source, gp.inputs, cache_dir=cache_dir,
                verify_passes=verify_passes,
            )
            check_ms.observe((time.perf_counter() - t_check) * 1e3)
            report.programs_run += 1
            report.routes_run += oracle_report.routes_run
            programs_counter.inc()
            routes_counter.inc(oracle_report.routes_run)
            if oracle_report.ok:
                clean.append(gp)
            else:
                div_counter.inc(len(oracle_report.divergences))
                if blame:
                    assign_blame(oracle_report)
                finding = Finding(program=gp, report=oracle_report)
                report.findings.append(finding)
                if minimize_findings:
                    deadline = None
                    if budget_s is not None:
                        deadline = max(
                            t0 + budget_s,
                            time.perf_counter() + _MINIMIZE_GRACE_S,
                        )
                    _minimize_finding(finding, out_dir, cache_dir, deadline)
            if progress is not None:
                progress(i, oracle_report)
            if len(report.findings) >= max_findings:
                break

        # engine parity: the pooled path ships packed payloads through
        # worker processes — run it over every clean program at once
        if pooled and clean and not report.budget_exhausted:
            report.batch_divergences = check_batch_routes(
                clean, pool_size=pool_size
            )
            report.routes_run += 2 * len(clean)
            routes_counter.inc(2 * len(clean))
            div_counter.inc(len(report.batch_divergences))

    report.elapsed_s = time.perf_counter() - t0
    report.metrics = reg.snapshot()
    return report


def _minimize_finding(
    finding: Finding, out_dir, cache_dir, deadline: float | None = None
) -> None:
    """Shrink one diverging program and persist the repro.

    A blamed divergence minimizes against the guilty pass's verifier
    (one compile per probe); anything else re-runs the whole oracle per
    probe and matches on the divergence kind."""
    gp = finding.program
    d = finding.divergence
    schema = d.route.split("/", 1)[0]
    if d.guilty_pass and schema in SCHEMAS:
        predicate = _pass_verifier_predicate(schema, d.guilty_pass)
        finding.minimized_via = f"pass:{d.guilty_pass}"
    else:
        predicate = _same_kind_predicate(
            d.kind, gp.inputs, cache_dir=cache_dir
        )
        finding.minimized_via = "oracle"
    try:
        result = minimize(gp.source, predicate, deadline=deadline)
    except ValueError:
        # flaky divergence (did not reproduce on re-check): keep the
        # full program as the repro rather than dropping the finding
        result = None
    finding.minimized = result.source if result else gp.source
    finding.minimized_lines = (
        result.lines if result else len(gp.source.splitlines())
    )
    finding.regression_path = write_regression(
        finding.minimized,
        seed=gp.seed,
        knobs=gp.knobs.describe(),
        kind=d.kind,
        route=d.route,
        baseline=d.baseline,
        detail=d.detail,
        inputs=gp.inputs,
        out_dir=out_dir,
        guilty_pass=d.guilty_pass,
        certificate=d.certificate,
    )


def replay(path: str | Path, cache_dir=None) -> OracleReport:
    """Re-run the full oracle on a persisted regression file.

    Raises :class:`~repro.validate.reduce.RegressionFormatError` when the
    file's replay header no longer parses (stale knobs, bad inputs JSON)
    so callers can report the file as broken instead of replaying it
    under silently-defaulted settings."""
    from .reduce import parse_regression_strict

    meta = parse_regression_strict(path)
    return check_program(
        meta["source"], meta["inputs"], cache_dir=cache_dir
    )
