"""N-way differential oracle: one program, every semantic route.

The paper's claim is semantic preservation — Schema 1, Schema 2, and the
optimized constructions all compute what the imperative program
computes.  This module checks it mechanically.  For one source program
and one input vector it executes:

* the **AST interpreter** (the reference operational semantics);
* the **CFG interpreter** (raw CFG and, implicitly, the loop-augmented
  one every compiled program carries);
* every **legal translation schema** × the **step/fast/packed/
  vectorized** simulator loops, plus a finite-PE stepped run
  (memory-only check);
* the **region-compiled** route (``region_compile=on`` with a small
  region budget) against the monolithic graph of the same schema —
  structural statistics plus a stepped run;
* the **cached** compile path (memory tier, and the disk tier when a
  ``cache_dir`` is given) against the fresh compile;
* the **tier-promotion** route: a :class:`~repro.engine.tiering.
  TierController` with tiny thresholds walks the cached graph
  fast → packed → vectorized across three hits, and every promoted run
  must match the reference memory and the entry tier's end values and
  deterministic metrics (the boundary the service's adaptive JIT
  crosses in production).

and classifies any disagreement as a :class:`Divergence`:

====================  ======================================================
kind                  meaning
====================  ======================================================
``compile_crash``     a translation route raised where the reference ran
``pass_certificate``  per-pass translation validation rejected a pass's
                      certificate (``verify_passes`` on): the divergence
                      carries the guilty pass's name
``sim_divergence``    final memory / end values differ between two routes
                      (includes a simulator crash on one route)
``metrics_drift``     deterministic Metrics fields differ between two loops
                      that simulated the *same* graph
``region_mismatch``   the multiresolution region compiler
                      (``region_compile=on``) produced a graph whose
                      structure or behavior differs from the monolithic
                      compile of the same schema
``ref_crash``         the reference interpreter itself failed — a generator
                      bug, not a compiler bug (should never happen)
====================  ======================================================

A divergence found with ``verify_passes="off"`` can be *blamed* after the
fact: :func:`assign_blame` recompiles the failing schema with
``verify_passes="full"`` and, if a certificate check fires, records the
guilty pass and the certificate diff on the divergence.

Batch-engine routes (serial vs pooled ``run_batch``) compare whole job
lists and live in :func:`check_batch_routes`; the fuzz driver runs them
once per campaign rather than per program.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..cfg.builder import build_cfg
from ..engine.cache import GraphCache, graph_key
from ..engine.tiering import TierController, TieringConfig
from ..interp.ast_interp import run_ast
from ..interp.cfg_interp import run_cfg
from ..lang.errors import CompileError
from ..lang.parser import parse
from ..machine.config import MachineConfig
from ..obs.trace import tracer
from ..translate.pipeline import SCHEMAS, CompileOptions, compile_program, simulate
from ..translate.verify import CertificateError

#: Metrics fields that must be bit-identical across every idealized loop
#: for one compiled graph (occupancy samples and ``peak_waiting_frames``
#: are loop-dependent by design and excluded — see
#: ``OCCUPANCY_COMPARABLE_MODES`` for the narrower family where they are
#: still held bit-identical).
DETERMINISTIC_METRIC_FIELDS = (
    "cycles",
    "operations",
    "by_kind",
    "memory_ops",
    "switch_ops",
    "merge_ops",
    "synch_ops",
    "clashes",
    "peak_tokens_in_flight",
    "peak_enabled",
    "profile",
)

#: idealized-machine loops the oracle runs per schema
SIM_MODES = ("step", "fast", "packed", "vectorized")

#: The occupancy timeline and ``peak_waiting_frames`` are sampled at
#: loop checkpoints, so they depend on *where* a loop samples, not on
#: the graph's semantics.  The per-cycle step loop checkpoints every
#: cycle; the event-driven loops (fast, packed, vectorized) share
#: checkpoint placement (token-count peaks at event times) and must
#: agree bit for bit among themselves.  This is the explicit allowlist:
#: occupancy is compared within this family and never against ``step``.
OCCUPANCY_COMPARABLE_MODES = frozenset({"fast", "packed", "vectorized"})


@dataclass(frozen=True)
class Divergence:
    """One classified disagreement between two semantic routes."""

    kind: str  # compile_crash | pass_certificate | sim_divergence | ...
    route: str  # e.g. "schema2_opt/packed"
    baseline: str  # e.g. "ast" or "schema2_opt/step"
    detail: str
    #: the compilation pass whose certificate failed ("" = not blamed)
    guilty_pass: str = ""
    #: the certificate diff (truncated) when a pass was blamed
    certificate: str = ""

    def __str__(self) -> str:
        s = f"[{self.kind}] {self.route} vs {self.baseline}: {self.detail}"
        if self.guilty_pass:
            s += f" [guilty pass: {self.guilty_pass}]"
        return s


@dataclass
class OracleReport:
    """Outcome of one :func:`check_program` call."""

    source: str
    inputs: tuple[dict, ...]
    schemas: tuple[str, ...]
    routes_run: int = 0
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        if self.ok:
            return f"{self.routes_run} routes agree"
        kinds: dict[str, int] = {}
        for d in self.divergences:
            kinds[d.kind] = kinds.get(d.kind, 0) + 1
        inventory = ", ".join(f"{n} {k}" for k, n in sorted(kinds.items()))
        return f"{len(self.divergences)} divergences ({inventory})"


def legal_schemas(source: str) -> tuple[str, ...]:
    """The schemas a program can legally compile under: the Schema 2
    family rejects aliased programs (paper Section 3 assumes no
    aliasing)."""
    from ..analysis.alias import AliasStructure
    from ..lang.subroutines import expand_subroutines

    prog = parse(source)
    if prog.subs:
        prog, _ = expand_subroutines(prog)
    if AliasStructure.from_program(prog).pairs:
        return ("schema1", "schema3", "schema3_opt", "memory_elim")
    return SCHEMAS


def _truncate(obj, limit: int = 200) -> str:
    s = repr(obj)
    return s if len(s) <= limit else s[: limit - 3] + "..."


def _diff_memory(got: dict, want: dict) -> str:
    keys = sorted(set(got) | set(want))
    bad = [k for k in keys if got.get(k) != want.get(k)]
    return "; ".join(
        f"{k}: {_truncate(got.get(k), 60)} != {_truncate(want.get(k), 60)}"
        for k in bad[:4]
    ) + ("" if len(bad) <= 4 else f" (+{len(bad) - 4} more)")


def _metric_values(metrics) -> dict:
    return {f: getattr(metrics, f) for f in DETERMINISTIC_METRIC_FIELDS}


def check_program(
    source: str,
    inputs: tuple[dict, ...] | list[dict] | None = None,
    schemas: tuple[str, ...] | None = None,
    sim_modes: tuple[str, ...] = SIM_MODES,
    cache: GraphCache | None = None,
    cache_dir=None,
    finite_pes: bool = True,
    seeds: tuple[int, ...] = (0,),
    max_steps: int = 2_000_000,
    verify_passes: str = "off",
) -> OracleReport:
    """Run one program through every route and cross-check the results.

    ``cache`` defaults to a *fresh* :class:`GraphCache` per call (with
    the optional ``cache_dir`` disk tier), so the cached-vs-fresh
    comparison always covers a real miss→hit cycle and no state leaks
    between checks.

    ``verify_passes`` turns on per-pass translation validation during the
    schema compiles; a rejected certificate classifies as a
    ``pass_certificate`` divergence carrying the guilty pass's name.
    """
    input_vectors = tuple(inputs) if inputs else ({},)
    if schemas is None:
        schemas = legal_schemas(source)
    report = OracleReport(
        source=source, inputs=input_vectors, schemas=schemas
    )
    div = report.divergences.append

    with tracer.span("validate.check", schemas=len(schemas)):
        try:
            prog = parse(source)
            references = [
                run_ast(prog, ins, max_steps=max_steps)
                for ins in input_vectors
            ]
        except Exception as exc:  # generator bug: reference must be total
            div(Divergence("ref_crash", "ast", "ast",
                           f"{type(exc).__name__}: {exc}"))
            return report
        report.routes_run += 1

        # CFG interpreter against the reference
        try:
            cfg = build_cfg(prog)
            for ins, ref in zip(input_vectors, references):
                got = run_cfg(cfg, prog, ins, max_steps=max_steps)
                if got != ref:
                    div(Divergence("sim_divergence", "cfg", "ast",
                                   _diff_memory(got, ref)))
        except Exception as exc:
            div(Divergence("compile_crash", "cfg", "ast",
                           f"{type(exc).__name__}: {exc}"))
        report.routes_run += 1

        if cache is None:
            cache = GraphCache(cache_dir=cache_dir)
        for schema in schemas:
            _check_schema(
                report, schema, source, input_vectors, references,
                sim_modes, cache, finite_pes, seeds, verify_passes,
            )
    return report


def _check_schema(
    report: OracleReport,
    schema: str,
    source: str,
    input_vectors: tuple[dict, ...],
    references: list[dict],
    sim_modes: tuple[str, ...],
    cache: GraphCache,
    finite_pes: bool,
    seeds: tuple[int, ...],
    verify_passes: str = "off",
) -> None:
    div = report.divergences.append
    options = CompileOptions(schema=schema, verify_passes=verify_passes)
    try:
        with tracer.span("validate.compile", schema=schema):
            cp = compile_program(source, options=options)
    except CertificateError as exc:
        div(Divergence(
            "pass_certificate", schema, "ast", str(exc),
            guilty_pass=exc.pass_name,
            certificate=_truncate(exc.diff, 300),
        ))
        return
    except CompileError as exc:
        # front-end rejection is only legal if *every* route rejects;
        # the reference already ran, so any compile error here is a
        # translation-route crash
        div(Divergence("compile_crash", schema, "ast",
                       f"{type(exc).__name__}: {exc}"))
        return
    except Exception as exc:
        div(Divergence("compile_crash", schema, "ast",
                       f"{type(exc).__name__}: {exc}"))
        return

    for ins, ref in zip(input_vectors, references):
        per_mode: dict[str, object] = {}
        for mode in sim_modes:
            route = f"{schema}/{mode}"
            try:
                with tracer.span("validate.simulate", route=route):
                    res = simulate(cp, ins, MachineConfig(sim_mode=mode))
            except Exception as exc:
                div(Divergence("sim_divergence", route, "ast",
                               f"crash {type(exc).__name__}: {exc}"))
                continue
            report.routes_run += 1
            per_mode[mode] = res
            if res.memory != ref:
                div(Divergence("sim_divergence", route, "ast",
                               _diff_memory(res.memory, ref)))

        # deterministic metrics + end values must agree across the loops
        # that simulated this same graph
        base_mode = next((m for m in sim_modes if m in per_mode), None)
        if base_mode is not None:
            base = per_mode[base_mode]
            base_metrics = _metric_values(base.metrics)
            for mode, res in per_mode.items():
                if mode == base_mode:
                    continue
                route = f"{schema}/{mode}"
                baseline = f"{schema}/{base_mode}"
                if res.end_values != base.end_values:
                    div(Divergence(
                        "sim_divergence", route, baseline,
                        f"end_values {_truncate(res.end_values)} != "
                        f"{_truncate(base.end_values)}",
                    ))
                got = _metric_values(res.metrics)
                if got != base_metrics:
                    bad = [f for f in DETERMINISTIC_METRIC_FIELDS
                           if got[f] != base_metrics[f]]
                    div(Divergence(
                        "metrics_drift", route, baseline,
                        "; ".join(
                            f"{f}: {_truncate(got[f], 60)} != "
                            f"{_truncate(base_metrics[f], 60)}"
                            for f in bad[:3]
                        ),
                    ))

        # occupancy timeline + peak_waiting_frames: loop-dependent in
        # general (sampled at loop checkpoints), but the event-driven
        # family shares checkpoint placement and must agree exactly
        occ_base_mode = next(
            (m for m in sim_modes
             if m in OCCUPANCY_COMPARABLE_MODES and m in per_mode),
            None,
        )
        if occ_base_mode is not None:
            occ_base = per_mode[occ_base_mode]
            for mode, res in per_mode.items():
                if mode == occ_base_mode:
                    continue
                if mode not in OCCUPANCY_COMPARABLE_MODES:
                    continue
                route = f"{schema}/{mode}"
                baseline = f"{schema}/{occ_base_mode}"
                if res.occupancy != occ_base.occupancy:
                    div(Divergence(
                        "metrics_drift", route, baseline,
                        f"occupancy {_truncate(res.occupancy, 60)} != "
                        f"{_truncate(occ_base.occupancy, 60)}",
                    ))
                pwf = res.metrics.peak_waiting_frames
                base_pwf = occ_base.metrics.peak_waiting_frames
                if pwf != base_pwf:
                    div(Divergence(
                        "metrics_drift", route, baseline,
                        f"peak_waiting_frames {pwf} != {base_pwf}",
                    ))

        # finite-PE stepped runs: scheduling changes cycle counts but a
        # valid graph's final memory must be seed- and width-independent
        if finite_pes:
            for seed in seeds:
                route = f"{schema}/step@pes2,seed{seed}"
                try:
                    res = simulate(
                        cp, ins,
                        MachineConfig(num_pes=2, seed=seed),
                    )
                except Exception as exc:
                    div(Divergence("sim_divergence", route, "ast",
                                   f"crash {type(exc).__name__}: {exc}"))
                    continue
                report.routes_run += 1
                if res.memory != ref:
                    div(Divergence("sim_divergence", route, "ast",
                                   _diff_memory(res.memory, ref)))

    # region-compiled route: the multiresolution compiler (forced on,
    # with a small region budget so even short programs partition) must
    # produce a graph with identical structural statistics that
    # simulates to the same memory, end values, and deterministic
    # metrics as the monolithic compile of the same schema
    region_opts = dataclasses.replace(
        options, region_compile="on", region_target_stmts=4
    )
    route = f"{schema}/region"
    rcp = None
    try:
        with tracer.span("validate.region", schema=schema):
            rcp = compile_program(source, options=region_opts)
    except CertificateError as exc:
        div(Divergence(
            "pass_certificate", route, "ast", str(exc),
            guilty_pass=exc.pass_name,
            certificate=_truncate(exc.diff, 300),
        ))
    except Exception as exc:
        div(Divergence("compile_crash", route, schema,
                       f"{type(exc).__name__}: {exc}"))
    if rcp is not None:
        report.routes_run += 1
        from ..dfg.stats import graph_stats

        got_stats, want_stats = graph_stats(rcp.graph), graph_stats(cp.graph)
        if got_stats != want_stats:
            div(Divergence(
                "region_mismatch", route, schema,
                f"stitched graph stats differ: [{got_stats.summary()}] "
                f"vs [{want_stats.summary()}]",
            ))
        for ins, ref in zip(input_vectors, references):
            try:
                res = simulate(rcp, ins, MachineConfig(sim_mode="step"))
                base = simulate(cp, ins, MachineConfig(sim_mode="step"))
            except Exception as exc:
                div(Divergence("sim_divergence", route, schema,
                               f"crash {type(exc).__name__}: {exc}"))
                continue
            report.routes_run += 1
            if res.memory != ref:
                div(Divergence("sim_divergence", route, "ast",
                               _diff_memory(res.memory, ref)))
            if res.end_values != base.end_values:
                div(Divergence(
                    "region_mismatch", route, f"{schema}/step",
                    f"end_values {_truncate(res.end_values)} != "
                    f"{_truncate(base.end_values)}",
                ))
            got_m = _metric_values(res.metrics)
            base_m = _metric_values(base.metrics)
            if got_m != base_m:
                bad = [f for f in DETERMINISTIC_METRIC_FIELDS
                       if got_m[f] != base_m[f]]
                div(Divergence(
                    "region_mismatch", route, f"{schema}/step",
                    "; ".join(
                        f"{f}: {_truncate(got_m[f], 60)} != "
                        f"{_truncate(base_m[f], 60)}"
                        for f in bad[:3]
                    ),
                ))

    # cached-vs-fresh: a graph served from the cache (memory or disk
    # tier) must simulate identically to the fresh compile
    try:
        with tracer.span("validate.cached", schema=schema):
            first, hit_first = cache.lookup(source, options)
            again, hit_again = cache.lookup(source, options)
    except Exception as exc:
        div(Divergence("compile_crash", f"{schema}/cached", schema,
                       f"{type(exc).__name__}: {exc}"))
        return
    if not hit_again:
        div(Divergence("compile_crash", f"{schema}/cached", schema,
                       "second lookup missed the cache"))
    for cached, tag in ((first, "cached-cold"), (again, "cached-warm")):
        route = f"{schema}/{tag}"
        for ins, ref in zip(input_vectors, references):
            try:
                res = simulate(cached, ins, MachineConfig(sim_mode="step"))
            except Exception as exc:
                div(Divergence("sim_divergence", route, schema,
                               f"crash {type(exc).__name__}: {exc}"))
                continue
            report.routes_run += 1
            if res.memory != ref:
                div(Divergence("sim_divergence", route, "ast",
                               _diff_memory(res.memory, ref)))

    # tier promotion: the adaptive tiering controller walks a hot graph
    # up the backend ladder mid-stream; the same cached graph, simulated
    # at each tier the controller picks across the promotion boundaries,
    # must agree with the reference memory and stay bit-identical in
    # end values and deterministic metrics from first hit to last
    if {"fast", "packed", "vectorized"} <= set(sim_modes):
        key = graph_key(source, options)
        for ins, ref in zip(input_vectors, references):
            ctl = TierController(TieringConfig(
                entry_tier="fast", thresholds=(2, 3), prewarm=False,
            ))
            base = None
            base_metrics: dict | None = None
            base_tier = ""
            for _hit in range(3):
                tier = ctl.record(key)
                route = f"{schema}/tier_promotion/{tier}"
                try:
                    with tracer.span("validate.tier", route=route):
                        res = simulate(
                            again, ins, MachineConfig(sim_mode=tier)
                        )
                except Exception as exc:
                    div(Divergence(
                        "sim_divergence", route,
                        f"{schema}/tier_promotion",
                        f"crash {type(exc).__name__}: {exc}",
                    ))
                    continue
                report.routes_run += 1
                if res.memory != ref:
                    div(Divergence("sim_divergence", route, "ast",
                                   _diff_memory(res.memory, ref)))
                if base is None:
                    base = res
                    base_metrics = _metric_values(res.metrics)
                    base_tier = tier
                    continue
                baseline = f"{schema}/tier_promotion/{base_tier}"
                if res.end_values != base.end_values:
                    div(Divergence(
                        "sim_divergence", route, baseline,
                        f"end_values {_truncate(res.end_values)} != "
                        f"{_truncate(base.end_values)}",
                    ))
                got = _metric_values(res.metrics)
                if got != base_metrics:
                    bad = [f for f in DETERMINISTIC_METRIC_FIELDS
                           if got[f] != base_metrics[f]]
                    div(Divergence(
                        "metrics_drift", route, baseline,
                        "; ".join(
                            f"{f}: {_truncate(got[f], 60)} != "
                            f"{_truncate(base_metrics[f], 60)}"
                            for f in bad[:3]
                        ),
                    ))
            ctl.close()


def assign_blame(report: OracleReport) -> OracleReport:
    """Post-hoc blame for a report produced with ``verify_passes="off"``:
    recompile each diverging schema with per-pass verification at
    ``full`` and, when a certificate check fires, annotate that schema's
    divergences with the guilty pass and the certificate diff.

    Mutates and returns ``report``.  Divergences the verifiers cannot
    explain (e.g. a simulator-loop disagreement on a correctly built
    graph) are left unblamed.
    """
    blamed: dict[str, tuple[str, str]] = {}
    for i, d in enumerate(report.divergences):
        if d.guilty_pass:
            continue
        schema = d.route.split("/", 1)[0]
        if schema not in SCHEMAS:
            continue
        if schema not in blamed:
            try:
                with tracer.span("validate.blame", schema=schema):
                    compile_program(
                        report.source,
                        options=CompileOptions(
                            schema=schema, verify_passes="full"
                        ),
                    )
            except CertificateError as exc:
                blamed[schema] = (
                    exc.pass_name, _truncate(exc.diff, 300)
                )
            except Exception:
                blamed[schema] = ("", "")  # crashes before any certificate
            else:
                blamed[schema] = ("", "")
        pass_name, diff = blamed[schema]
        if pass_name:
            report.divergences[i] = dataclasses.replace(
                d, guilty_pass=pass_name, certificate=diff
            )
    return report


def check_batch_routes(
    programs,
    schema_pick: str | None = None,
    pool_size: int = 2,
    pool=None,
) -> list[Divergence]:
    """Serial vs pooled ``run_batch`` over one job per program: results
    must be identical in memory, end values, deterministic metrics, and
    error strings.  ``programs`` is an iterable of
    :class:`~repro.validate.progen.GeneratedProgram` (or any object with
    ``source``/``inputs``/``name``).

    One job per program keeps the route cheap; per-schema coverage comes
    from :func:`check_program`.
    """
    from ..engine.batch import BatchJob, run_batch

    jobs = []
    for gp in programs:
        schema = schema_pick or legal_schemas(gp.source)[-1]
        jobs.append(
            BatchJob(
                source=gp.source,
                options=CompileOptions(schema=schema),
                inputs=dict(gp.inputs[0]) if gp.inputs else {},
                name=getattr(gp, "name", "prog"),
            )
        )
    if not jobs:
        return []
    divergences: list[Divergence] = []
    with tracer.span("validate.batch_routes", jobs=len(jobs)):
        serial = run_batch(jobs)
        pooled = run_batch(jobs, pool_size=pool_size, pool=pool)
    for s, p in zip(serial, pooled):
        route, baseline = f"batch-pooled/{p.name}", f"batch-serial/{s.name}"
        if s.ok != p.ok or (not s.ok and s.error != p.error):
            divergences.append(Divergence(
                "sim_divergence", route, baseline,
                f"error {p.error!r} != {s.error!r}",
            ))
            continue
        if not s.ok:
            continue
        if p.result.memory != s.result.memory:
            divergences.append(Divergence(
                "sim_divergence", route, baseline,
                _diff_memory(p.result.memory, s.result.memory),
            ))
        if p.result.end_values != s.result.end_values:
            divergences.append(Divergence(
                "sim_divergence", route, baseline,
                f"end_values {_truncate(p.result.end_values)} != "
                f"{_truncate(s.result.end_values)}",
            ))
        if _metric_values(p.result.metrics) != _metric_values(s.result.metrics):
            divergences.append(Divergence(
                "metrics_drift", route, baseline, "metrics differ",
            ))
    return divergences
