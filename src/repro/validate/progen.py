"""Grammar-directed random program generator.

Every program this module emits is *well-formed by construction* — it
parses, validates, and terminates:

* loops are bounded counting loops over fresh counter variables the rest
  of the program never assigns;
* backward gotos are guarded by fresh counters in properly nested
  regions (reducible), except for the deliberate **irreducible gadget**:
  a two-entry bounded cycle that exercises the paper's code-copying
  transform (``split_irreducible``);
* array subscripts are always ``(expr) % size`` — in bounds for any
  expression value;
* division and modulus are total in the language semantics, so no
  generated expression can trap.

Statements are emitted **one per line** (block braces on their own
lines), which is what lets :mod:`~repro.validate.reduce` shrink programs
by deleting line subsets and re-parsing.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, fields, replace

#: hard floor/ceiling applied to knob values parsed from the CLI so a typo
#: cannot ask for a gigabyte of source text (raised from 2000 for the
#: region compiler's giant-program legs: 100k statements is ~3 MB of
#: source, still harmless)
_MAX_STMTS = 100_000


@dataclass(frozen=True)
class GenKnobs:
    """Tunable generation knobs.  All randomness is derived from the seed
    passed to :func:`generate`; equal (seed, knobs) pairs yield equal
    programs and input vectors."""

    #: scalar variable pool (``v0..v{n-1}``); inputs range over these
    n_vars: int = 4
    #: top-level statement budget (structured + goto blocks)
    n_stmts: int = 10
    #: structured nesting depth (if/while inside if/while)
    max_depth: int = 2
    #: probability a goto block ends in a forward (cond or plain) goto
    goto_density: float = 0.4
    #: probability the program contains a two-entry irreducible cycle
    irreducible: float = 0.2
    #: probability the program declares arrays; also the per-statement
    #: weight of array reads/writes once declared
    array_ops: float = 0.3
    n_arrays: int = 1
    array_size: int = 8
    #: probability of an ``alias (…)`` declaration over the scalar pool
    #: (restricts the legal schema set to the Schema 3 family)
    alias_density: float = 0.2
    #: integer-literal range (inclusive) for expressions and inputs
    int_min: int = -8
    int_max: int = 9
    #: bound of every counting loop / counted backedge
    max_loop_iters: int = 4
    #: input vectors generated per program
    n_inputs: int = 2
    #: when nonzero, append a wide-fan-out gadget: one scalar consumed
    #: by this many strict two-input consumers in a single fan-out row
    #: (exercises the vectorized backend's bulk delivery plans; 0 keeps
    #: the generated stream byte-identical to earlier releases)
    fanout_width: int = 0
    #: when nonzero, bound every goto's reach (backedge regions and
    #: forward jumps) to this many blocks, keeping goto structure local —
    #: what giant generated programs need for the region compiler to
    #: find legal cuts.  0 (the default) leaves spans unbounded and the
    #: generated stream byte-identical to earlier releases.
    max_region_span: int = 0

    def __post_init__(self) -> None:
        if self.n_vars < 1:
            raise ValueError("n_vars must be >= 1")
        if not 0 < self.n_stmts <= _MAX_STMTS:
            raise ValueError(f"n_stmts must be in 1..{_MAX_STMTS}")
        if self.int_min > self.int_max:
            raise ValueError("int_min must be <= int_max")
        if self.array_size < 1 or self.n_arrays < 0:
            raise ValueError("bad array knobs")
        if self.max_loop_iters < 1:
            raise ValueError("max_loop_iters must be >= 1")
        if self.n_inputs < 1:
            raise ValueError("n_inputs must be >= 1")
        for name in ("goto_density", "irreducible", "array_ops",
                     "alias_density"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be a probability, got {v}")
        if self.max_region_span < 0:
            raise ValueError("max_region_span must be >= 0")

    @classmethod
    def giant(cls, n_stmts: int = 10_000) -> "GenKnobs":
        """Scaled preset for compile-throughput work: depth and variable
        pool grown with the statement budget, goto reach bounded by
        ``max_region_span`` so the multiresolution region compiler finds
        legal cuts in programs this size (unbounded spans would let one
        goto pin half the program into a single region)."""
        return replace(
            cls(),
            n_vars=8,
            n_stmts=n_stmts,
            max_depth=3,
            goto_density=0.2,
            max_region_span=6,
        )

    @classmethod
    def from_items(cls, items: list[str]) -> GenKnobs:
        """Build knobs from CLI ``k=v`` strings, e.g.
        ``["n_stmts=20", "irreducible=0.5"]``.  Values are coerced to the
        field's declared type; unknown names raise."""
        by_name = {f.name: f for f in fields(cls)}
        updates: dict = {}
        for item in items:
            name, sep, raw = item.partition("=")
            if not sep or name not in by_name:
                raise ValueError(
                    f"bad knob {item!r}: expected name=value with name in "
                    f"{sorted(by_name)}"
                )
            typ = by_name[name].type
            try:
                updates[name] = (
                    float(raw) if typ in ("float", float) else int(raw)
                )
            except ValueError:
                raise ValueError(f"bad knob value {item!r}") from None
        return replace(cls(), **updates)

    def describe(self) -> str:
        """Compact ``k=v`` rendering of the non-default knobs (all of
        them when none differ) — what regression headers record."""
        default = GenKnobs()
        diff = [
            f"{f.name}={getattr(self, f.name)}"
            for f in fields(self)
            if getattr(self, f.name) != getattr(default, f.name)
        ]
        return " ".join(diff) if diff else "defaults"


@dataclass(frozen=True)
class GeneratedProgram:
    """One generated program: its source text, the seed/knobs that made
    it, and the input vectors the oracle should run it under."""

    seed: int
    knobs: GenKnobs
    source: str
    inputs: tuple[dict, ...]

    @property
    def name(self) -> str:
        return f"gen{self.seed}"


def generate(seed: int, knobs: GenKnobs | None = None) -> GeneratedProgram:
    """Generate one well-formed program and its input vectors."""
    k = knobs or GenKnobs()
    # seed with a string: str seeding is deterministic across processes
    # (hash() of tuples is not, under hash randomization)
    rng = random.Random(f"repro.validate.progen|{seed}|{k}")
    scalars = [f"v{i}" for i in range(k.n_vars)]
    lines: list[str] = []

    arrays: list[tuple[str, int]] = []
    if k.n_arrays and rng.random() < k.array_ops:
        arrays = [(f"a{i}", k.array_size) for i in range(k.n_arrays)]
        decl = ", ".join(f"{name}[{size}]" for name, size in arrays)
        lines.append(f"array {decl};")
    if len(scalars) >= 2 and rng.random() < k.alias_density:
        group = rng.sample(scalars, rng.randint(2, min(3, len(scalars))))
        lines.append(f"alias ({', '.join(group)});")

    fresh = itertools.count()  # loop counters / backedge guards

    def literal() -> str:
        v = rng.randint(k.int_min, k.int_max)
        return f"({v})" if v < 0 else str(v)

    def expr(depth: int = 0) -> str:
        r = rng.random()
        if depth >= 2 or r < 0.3:
            return rng.choice(scalars) if rng.random() < 0.6 else literal()
        if arrays and r < 0.3 + k.array_ops * 0.3:
            name, size = rng.choice(arrays)
            return f"{name}[({expr(depth + 1)}) % {size}]"
        if r < 0.45:
            op = rng.choice(["-", "not"])
            return f"({op} {expr(depth + 1)})"
        op = rng.choice(["+", "-", "*", "/", "%", "+", "-", "*"])
        return f"({expr(depth + 1)} {op} {expr(depth + 1)})"

    def cond() -> str:
        op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
        c = f"{rng.choice(scalars)} {op} {expr(1)}"
        if rng.random() < 0.2:
            glue = rng.choice(["and", "or"])
            c = f"{c} {glue} {rng.choice(scalars)} {op} {literal()}"
        return c

    def assign(indent: str) -> None:
        if arrays and rng.random() < k.array_ops:
            name, size = rng.choice(arrays)
            lines.append(
                f"{indent}{name}[({expr(1)}) % {size}] := {expr()};"
            )
        else:
            lines.append(f"{indent}{rng.choice(scalars)} := {expr()};")

    def structured(count: int, depth: int, indent: str) -> None:
        for _ in range(count):
            r = rng.random()
            if depth < k.max_depth and r < 0.18:
                c = f"c{next(fresh)}"
                lines.append(f"{indent}{c} := 0;")
                lines.append(
                    f"{indent}while {c} < "
                    f"{rng.randint(1, k.max_loop_iters)} do {{"
                )
                structured(rng.randint(1, 2), depth + 1, indent + "  ")
                lines.append(f"{indent}  {c} := {c} + 1;")
                lines.append(f"{indent}}}")
            elif depth < k.max_depth and r < 0.42:
                lines.append(f"{indent}if {cond()} then {{")
                structured(rng.randint(1, 2), depth + 1, indent + "  ")
                if rng.random() < 0.5:
                    lines.append(f"{indent}}} else {{")
                    structured(rng.randint(1, 2), depth + 1, indent + "  ")
                lines.append(f"{indent}}}")
            else:
                assign(indent)

    # -- goto section: labeled blocks, forward gotos, counted backedges --
    n_blocks = max(2, k.n_stmts // 3)
    regions: list[tuple[int, int]] = []
    for _ in range(rng.randint(0, max(1, int(n_blocks * k.goto_density)))):
        s = rng.randint(0, n_blocks - 2)
        if k.max_region_span:
            e = rng.randint(s + 1, min(s + k.max_region_span, n_blocks - 1))
        else:
            e = rng.randint(s + 1, n_blocks - 1)
        ok = True
        for rs, re_ in regions:
            disjoint = e < rs or re_ < s
            nested = (rs <= s and e <= re_) or (s <= rs and re_ <= e)
            if not (disjoint or nested) or e == re_:
                ok = False
                break
        if ok:
            regions.append((s, e))

    def forward_targets(b: int) -> list[int]:
        # a forward goto may not jump into a backedge region from outside
        # (that would add a second entry; irreducibility is injected only
        # by the dedicated gadget below)
        out = []
        hi = n_blocks
        if k.max_region_span:
            hi = min(hi, b + 1 + k.max_region_span)
        for t in range(b + 1, hi):
            if all(
                t == rs or not (rs < t <= re_) or (rs <= b <= re_)
                for rs, re_ in regions
            ):
                out.append(t)
        return out

    structured(max(1, k.n_stmts - n_blocks), 0, "")

    for b in range(n_blocks):
        lines.append(f"blk{b}: skip;")
        structured(rng.randint(1, 2), max(0, k.max_depth - 1), "")
        targets = forward_targets(b)
        if targets and rng.random() < k.goto_density:
            t = rng.choice(targets)
            if rng.random() < 0.6:
                lines.append(
                    f"if {cond()} then goto blk{t};"
                )
            elif all(re_ != b for _, re_ in regions):
                # unconditional jumps never originate at a region end —
                # they would dead-code the backedge guard
                lines.append(f"goto blk{t};")
        for rs, re_ in regions:
            if re_ == b:
                c = f"g{next(fresh)}"
                lines.append(f"{c} := {c} + 1;")
                lines.append(
                    f"if {c} < {rng.randint(1, k.max_loop_iters)} "
                    f"then goto blk{rs};"
                )

    if rng.random() < k.irreducible:
        # two-entry bounded cycle: fallthrough enters at irrA, the branch
        # at irrB; the A->B->A cycle is therefore irreducible and forces
        # the code-copying transform in every loop-aware schema
        g = f"g{next(fresh)}"
        v = rng.choice(scalars)
        lines.append(f"if {v} % 2 == 0 then goto irrB;")
        lines.append(f"irrA: {v} := {v} + 1;")
        lines.append(f"irrB: {g} := {g} + 1;")
        lines.append(f"if {g} < {rng.randint(2, k.max_loop_iters)} "
                     f"then goto irrA;")

    if k.fanout_width:
        # no rng draws unless enabled: default knobs must reproduce the
        # exact historical program stream for regression replay
        v = rng.choice(scalars)
        for i in range(k.fanout_width):
            lines.append(f"fan{i} := {v} + {i};")

    inputs = tuple(
        {v: rng.randint(k.int_min, k.int_max) for v in scalars}
        for _ in range(k.n_inputs)
    )
    return GeneratedProgram(
        seed=seed, knobs=k, source="\n".join(lines) + "\n", inputs=inputs
    )
