"""Delta-debugging minimizer for diverging programs.

Classic ddmin over *source lines*: try dropping chunks of lines, keep a
candidate only if it still parses (structure stays well-formed — a
dangling ``}`` or orphaned ``goto`` is rejected by the front end, so
statement/block granularity falls out of re-validation) **and** the
caller's divergence predicate still holds.  A final greedy pass retries
single-line deletions until a fixed point.

Minimized programs are persisted as seed-pinned regression cases under
``tests/corpus/regressions/`` with a ``#``-comment replay header the
regression replayer test parses, so every divergence ever found stays a
permanent tier-1 case.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

from ..lang.errors import CompileError
from ..lang.parser import parse
from ..obs.trace import tracer

#: where minimized repros land (relative to the repo root) by default
REGRESSION_DIR = Path("tests") / "corpus" / "regressions"


@dataclass
class MinimizeResult:
    """Outcome of one :func:`minimize` run."""

    source: str  # the minimized program
    original_lines: int
    lines: int
    predicate_calls: int

    @property
    def line_count(self) -> int:
        return self.lines


def _well_formed(source: str) -> bool:
    try:
        parse(source)
    except CompileError:
        return False
    return True


def _lines_of(source: str) -> list[str]:
    return [ln for ln in source.splitlines() if ln.strip()]


def minimize(
    source: str,
    predicate,
    max_predicate_calls: int = 2000,
    deadline: float | None = None,
) -> MinimizeResult:
    """Shrink ``source`` while ``predicate(candidate_source)`` holds.

    ``predicate`` receives candidate source text and returns True when
    the divergence of interest is still present; it is only ever called
    on candidates that parse.  The original source must satisfy the
    predicate (checked).  The call budget and the optional ``deadline``
    (an absolute ``time.perf_counter()`` value — each predicate call can
    be a full N-way oracle run, so call counts alone don't bound wall
    clock) cap worst-case runtime on stubborn inputs; hitting either
    returns the best candidate so far.  The initial reproduction check
    is exempt from the deadline so a non-reproducing original is always
    reported as ``ValueError``, never as deadline exhaustion.
    """
    lines = _lines_of(source)
    original = len(lines)
    calls = 0

    def holds(candidate_lines: list[str]) -> bool:
        nonlocal calls
        if not candidate_lines:
            return False
        if calls >= max_predicate_calls:
            return False
        if (
            deadline is not None
            and calls > 0
            and time.perf_counter() >= deadline
        ):
            return False
        text = "\n".join(candidate_lines) + "\n"
        if not _well_formed(text):
            return False
        calls += 1
        return bool(predicate(text))

    if not holds(lines):
        raise ValueError(
            "minimize(): the original program does not satisfy the "
            "divergence predicate"
        )

    with tracer.span("validate.minimize", lines=original):
        # ddmin: partition into n chunks, try dropping each chunk
        # (complement test); refine granularity when nothing drops
        n = 2
        while len(lines) >= 2 and calls < max_predicate_calls:
            chunk = max(1, len(lines) // n)
            reduced = False
            start = 0
            while start < len(lines):
                candidate = lines[:start] + lines[start + chunk:]
                if holds(candidate):
                    lines = candidate
                    n = max(2, n - 1)
                    reduced = True
                    # retry from the same offset: the next chunk slid in
                else:
                    start += chunk
            if not reduced:
                if chunk == 1:
                    break
                n = min(len(lines), n * 2)

        # greedy single-line sweep to a fixed point (ddmin with chunk=1
        # restarts; this catches late-enabled deletions cheaply)
        changed = True
        while changed and calls < max_predicate_calls:
            changed = False
            i = 0
            while i < len(lines):
                candidate = lines[:i] + lines[i + 1:]
                if holds(candidate):
                    lines = candidate
                    changed = True
                else:
                    i += 1

    return MinimizeResult(
        source="\n".join(lines) + "\n",
        original_lines=original,
        lines=len(lines),
        predicate_calls=calls,
    )


# -- regression corpus ------------------------------------------------------

_HEADER_MAGIC = "# repro.validate regression"


def _header_safe(value: str, limit: int = 300) -> str:
    """Collapse a free-text header value onto one line.

    ``detail`` fields come from ``str(exc)`` and can carry newlines; a
    raw newline would break out of the ``#`` comment and inject source
    lines into the replayed program, so every header value is flattened
    before it is written.
    """
    return " ".join(str(value).split())[:limit]


def write_regression(
    source: str,
    *,
    seed: int,
    knobs: str,
    kind: str,
    route: str,
    baseline: str,
    detail: str,
    inputs: tuple[dict, ...] | list[dict],
    out_dir: str | Path | None = None,
    name: str | None = None,
    guilty_pass: str = "",
    certificate: str = "",
) -> Path:
    """Persist one minimized repro with its replay header.

    The header is plain ``#`` comments, so the file is itself a valid
    source program — ``repro run FILE`` replays it directly, and the
    regression replayer test re-runs the full oracle on it.
    ``guilty_pass``/``certificate`` (the blame fields) are written only
    when a pass was blamed; like ``detail`` they are flattened to one
    line so multi-line certificate diffs cannot break out of the header.
    """
    out = Path(out_dir) if out_dir is not None else REGRESSION_DIR
    out.mkdir(parents=True, exist_ok=True)
    stem = name or f"seed{seed}_{kind}"
    path = out / f"{stem}.df"
    suffix = 1
    while path.exists():
        suffix += 1
        path = out / f"{stem}_{suffix}.df"
    header = [
        _HEADER_MAGIC,
        f"# seed={seed}",
        f"# knobs={_header_safe(knobs)}",
        f"# kind={_header_safe(kind)}",
        f"# route={_header_safe(route)}",
        f"# baseline={_header_safe(baseline)}",
        f"# detail={_header_safe(detail)}",
    ]
    if guilty_pass:
        header.append(f"# guilty_pass={_header_safe(guilty_pass)}")
    if certificate:
        header.append(f"# certificate={_header_safe(certificate)}")
    header += [
        f"# inputs={json.dumps(list(inputs))}",
        f"# replay: repro fuzz --replay {path.as_posix()}",
    ]
    path.write_text("\n".join(header) + "\n" + source)
    return path


def parse_regression(path: str | Path) -> dict:
    """Read one regression file back: returns ``{"source", "inputs",
    "seed", "kind", "route", ...}``.  Tolerates hand-written files with
    a partial header (missing keys default sensibly)."""
    text = Path(path).read_text()
    meta: dict = {"source": text, "inputs": ({},), "seed": None,
                  "kind": "", "route": "", "knobs": "",
                  "guilty_pass": "", "certificate": ""}
    for line in text.splitlines():
        if not line.startswith("#"):
            continue
        body = line.lstrip("#").strip()
        key, sep, value = body.partition("=")
        if not sep:
            continue
        key = key.strip()
        value = value.strip()
        if key == "inputs":
            try:
                meta["inputs"] = tuple(json.loads(value))
            except (ValueError, TypeError):
                pass
        elif key == "seed":
            try:
                meta["seed"] = int(value)
            except ValueError:
                pass
        elif key in ("kind", "route", "baseline", "knobs", "detail",
                     "guilty_pass", "certificate"):
            meta[key] = value
    return meta


class RegressionFormatError(ValueError):
    """A regression file's replay header no longer parses."""


def parse_regression_strict(path: str | Path) -> dict:
    """Like :func:`parse_regression` but rejects malformed headers
    instead of silently defaulting — the replayer uses this so a stale
    regression file fails with a clear diagnostic, not a raw traceback
    (or worse, a silent replay under the wrong knobs)."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise RegressionFormatError(
            f"cannot read regression file {path}: {exc}"
        ) from exc
    meta = parse_regression(path)

    for line in text.splitlines():
        if not line.startswith("#"):
            continue
        body = line.lstrip("#").strip()
        key, sep, value = body.partition("=")
        if not sep:
            continue
        key, value = key.strip(), value.strip()
        if key == "seed" and value:
            try:
                int(value)
            except ValueError:
                raise RegressionFormatError(
                    f"{path}: header seed={value!r} is not an integer"
                ) from None
        elif key == "inputs":
            try:
                inputs = json.loads(value)
            except ValueError as exc:
                raise RegressionFormatError(
                    f"{path}: header inputs= is not valid JSON: {exc}"
                ) from exc
            if not isinstance(inputs, list) or not all(
                isinstance(i, dict) for i in inputs
            ):
                raise RegressionFormatError(
                    f"{path}: header inputs= must be a JSON list of objects"
                )
        elif key == "knobs" and value not in ("", "defaults"):
            from .progen import GenKnobs

            try:
                GenKnobs.from_items(value.split())
            except ValueError as exc:
                raise RegressionFormatError(
                    f"{path}: header knobs={value!r} no longer parses: {exc}"
                ) from exc
    return meta
