"""Fixed-seed region-differential sweep.

CI's ``region-differential`` step: run the N-way oracle — which includes
the ``region_compile=on`` route against the monolithic graph of every
legal schema — over a pinned progen seed range and fail on any
divergence.  The same entry point backs the acceptance sweep for the
multiresolution region compiler (``repro.translate.regions``): zero
divergences over >= 100 seeds x all legal schemas.

Usage::

    python -m repro.validate.region_sweep --count 100 [--start 0]
        [--knob n_stmts=40 ...] [--verify-passes cheap]
"""

from __future__ import annotations

import argparse
import sys
import time

from .oracle import check_program
from .progen import GenKnobs, generate


def run_region_sweep(
    seeds,
    knobs: GenKnobs | None = None,
    verify_passes: str = "off",
    progress=None,
) -> list[tuple[int, object]]:
    """Oracle-check every seed; returns ``(seed, divergence)`` pairs
    (empty = clean sweep).  Every check runs the full route set, so the
    region route is compared against a monolithic compile per schema."""
    findings: list[tuple[int, object]] = []
    for seed in seeds:
        gp = generate(seed, knobs)
        report = check_program(
            gp.source, gp.inputs, verify_passes=verify_passes
        )
        findings.extend((seed, d) for d in report.divergences)
        if progress is not None:
            progress(seed, report)
    return findings


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro.validate.region_sweep", description=__doc__
    )
    ap.add_argument("--count", type=int, default=100,
                    help="number of progen seeds to sweep")
    ap.add_argument("--start", type=int, default=0, help="first seed")
    ap.add_argument("--knob", action="append", default=[],
                    metavar="NAME=VALUE", help="progen knob (repeatable)")
    ap.add_argument("--verify-passes", default="off",
                    choices=("off", "cheap", "full"))
    args = ap.parse_args(argv)

    knobs = GenKnobs.from_items(args.knob) if args.knob else None
    t0 = time.perf_counter()
    done = 0

    def progress(seed, report):
        nonlocal done
        done += 1
        if done % 10 == 0:
            rate = done / (time.perf_counter() - t0)
            print(
                f"  {done}/{args.count} seeds ({rate:.1f}/s)",
                file=sys.stderr, flush=True,
            )

    findings = run_region_sweep(
        range(args.start, args.start + args.count),
        knobs=knobs,
        verify_passes=args.verify_passes,
        progress=progress,
    )
    elapsed = time.perf_counter() - t0
    if findings:
        for seed, d in findings:
            print(f"seed {seed}: {d}")
        print(
            f"region sweep FAILED: {len(findings)} divergence(s) over "
            f"{args.count} seeds in {elapsed:.1f}s"
        )
        return 1
    print(
        f"region sweep clean: {args.count} seeds x all legal schemas, "
        f"0 divergences in {elapsed:.1f}s"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
