"""Tests for alias structures and covers (Section 5, Definitions 6-7)."""

import pytest

from repro.analysis import AliasStructure, Cover
from repro.lang import parse

# The paper's FORTRAN example: SUBROUTINE F(X, Y, Z) called as F(A, B, A)
# and F(C, D, D): X ~ Z and Y ~ Z but X !~ Y.
FORTRAN_SRC = "alias (x, z); alias (y, z); x := 1; y := 2; z := 3;"


def fortran_alias():
    return AliasStructure.from_program(parse(FORTRAN_SRC))


def test_paper_alias_classes():
    """[X] = {X,Z}, [Y] = {Y,Z}, [Z] = {X,Y,Z} (Section 5)."""
    a = fortran_alias()
    assert a.alias_class("x") == {"x", "z"}
    assert a.alias_class("y") == {"y", "z"}
    assert a.alias_class("z") == {"x", "y", "z"}


def test_alias_relation_not_transitive():
    a = fortran_alias()
    assert a.related("x", "z") and a.related("z", "y")
    assert not a.related("x", "y")


def test_alias_relation_reflexive_symmetric():
    a = fortran_alias()
    for v in a.variables:
        assert a.related(v, v)
    for p in a.pairs:
        assert a.related(p[1], p[0])
    a.validate()


def test_trivial_alias_structure():
    a = AliasStructure.trivial(["p", "q"])
    assert a.is_unaliased("p")
    assert a.alias_class("q") == {"q"}


def test_alias_declared_name_becomes_a_variable():
    """Declaring an alias makes the name a program variable even when it is
    never referenced (an unused FORTRAN reference parameter)."""
    a = AliasStructure.from_program(parse("alias (x, unref); x := 1;"))
    assert "unref" in a.variables
    assert a.alias_class("x") == {"x", "unref"}


def test_alias_class_of_unknown_variable_raises():
    with pytest.raises(KeyError):
        fortran_alias().alias_class("nosuch")


# -- covers --------------------------------------------------------------


def test_singleton_cover_access_sets_match_paper():
    """With one token per variable, operations on X or Y collect two tokens
    (their own plus Z's); operations on Z collect all three (Section 5)."""
    a = fortran_alias()
    c = Cover.singletons(a)
    assert c.synch_cost("x") == 2
    assert c.synch_cost("y") == 2
    assert c.synch_cost("z") == 3
    assert set(c.access_set("x")) == {frozenset({"x"}), frozenset({"z"})}
    assert set(c.access_set("z")) == {
        frozenset({"x"}),
        frozenset({"y"}),
        frozenset({"z"}),
    }


def test_whole_cover_minimizes_synchronization():
    a = fortran_alias()
    c = Cover.whole(a)
    for v in a.variables:
        assert c.synch_cost(v) == 1


def test_alias_classes_cover():
    a = fortran_alias()
    c = Cover.alias_classes(a)
    # [x] and [y] are strictly contained in [z], so only [z] remains
    assert c.elements == (frozenset({"x", "y", "z"}),)


def test_alias_classes_cover_with_unaliased_variables():
    src = "alias (x, z); x := 1; z := 2; p := 3; q := 4;"
    a = AliasStructure.from_program(parse(src))
    c = Cover.alias_classes(a)
    els = set(c.elements)
    assert frozenset({"x", "z"}) in els
    assert frozenset({"p"}) in els
    assert frozenset({"q"}) in els
    # unaliased variables keep their own token: full parallelism among them
    assert c.synch_cost("p") == 1
    assert c.synch_cost("q") == 1


def test_cover_must_cover():
    a = fortran_alias()
    with pytest.raises(ValueError):
        Cover(a, (frozenset({"x"}),))


def test_cover_rejects_empty_element():
    a = fortran_alias()
    with pytest.raises(ValueError):
        Cover(a, (frozenset(), frozenset({"x", "y", "z"})))


def test_cover_rejects_foreign_names():
    a = fortran_alias()
    with pytest.raises(ValueError):
        Cover(a, (frozenset({"x", "y", "z", "w"}),))


def test_custom_cover_tradeoff():
    """A custom cover can sit between the extremes."""
    a = fortran_alias()
    c = Cover(a, (frozenset({"x", "z"}), frozenset({"y"})))
    assert c.synch_cost("x") == 1  # only the xz token intersects [x]
    assert c.synch_cost("y") == 2  # [y] = {y,z}: both elements intersect
    assert c.synch_cost("z") == 2


def test_token_names_stable():
    a = fortran_alias()
    c = Cover.singletons(a)
    assert c.token_names() == ["x", "y", "z"]


def test_unaliased_program_singleton_equals_alias_classes():
    src = "p := 1; q := p;"
    a = AliasStructure.from_program(parse(src))
    assert set(Cover.singletons(a).elements) == set(
        Cover.alias_classes(a).elements
    )
