"""Tests for array subscript analysis (Section 6.3)."""

from repro.analysis import (
    AffineSubscript,
    basic_induction_variables,
    extract_affine,
    gcd_test,
    store_is_iteration_independent,
)
from repro.analysis.array_dep import array_is_write_once, array_references_in_loop
from repro.cfg import NodeKind, build_cfg, find_loops
from repro.lang import parse
from repro.lang.parser import parse as parse_prog

# The paper's Section 6.3 loop:
#   start: join; i := i + 1; x[i] := 1; if i < 10 then goto start
PAPER_LOOP = """
array x[16];
i := 0;
s: i := i + 1;
   x[i] := 1;
   if i < 10 then goto s;
"""


def loop_and_cfg(src):
    cfg = build_cfg(parse(src))
    (loop,) = find_loops(cfg)
    return cfg, loop


def expr_of(src):
    return parse_prog(f"q := {src};").body[0].expr


def test_extract_affine_basics():
    assert extract_affine(expr_of("i"), "i") == AffineSubscript("i", 1, 0)
    assert extract_affine(expr_of("i + 1"), "i") == AffineSubscript("i", 1, 1)
    assert extract_affine(expr_of("2 * i - 3"), "i") == AffineSubscript("i", 2, -3)
    assert extract_affine(expr_of("i * 4 + 2"), "i") == AffineSubscript("i", 4, 2)
    assert extract_affine(expr_of("7"), "i") == AffineSubscript("i", 0, 7)
    assert extract_affine(expr_of("-i"), "i") == AffineSubscript("i", -1, 0)


def test_extract_affine_rejects_nonlinear_and_foreign():
    assert extract_affine(expr_of("i * i"), "i") is None
    assert extract_affine(expr_of("i + j"), "i") is None
    assert extract_affine(expr_of("i / 2"), "i") is None


def test_basic_induction_variable_detection():
    cfg, loop = loop_and_cfg(PAPER_LOOP)
    ivs = basic_induction_variables(cfg, loop)
    assert ivs == {"i": 1}


def test_induction_variable_with_negative_step():
    src = """
    array a[16];
    i := 10;
    s: i := i - 2;
       a[i] := 0;
       if i > 0 then goto s;
    """
    cfg, loop = loop_and_cfg(src)
    assert basic_induction_variables(cfg, loop) == {"i": -2}


def test_multiply_defined_variable_is_not_basic_iv():
    src = """
    i := 0;
    s: i := i + 1;
       i := i + 2;
       if i < 10 then goto s;
    """
    cfg, loop = loop_and_cfg(src)
    assert basic_induction_variables(cfg, loop) == {}


def test_conditional_increment_is_not_basic_iv():
    src = """
    i := 0;
    s: if p == 1 then { i := i + 1; }
       j := j + 1;
       if j < 10 then goto s;
    """
    cfg, loop = loop_and_cfg(src)
    ivs = basic_induction_variables(cfg, loop)
    assert "i" not in ivs
    assert ivs["j"] == 1


def test_gcd_test_distinct_strides():
    # a[2i] vs a[2j+1]: never equal
    assert not gcd_test(AffineSubscript("i", 2, 0), AffineSubscript("i", 2, 1))
    # a[2i] vs a[4j+2]: possible (i=1, j=0 wait 2*1=2=4*0+2 yes)
    assert gcd_test(AffineSubscript("i", 2, 0), AffineSubscript("i", 4, 2))
    # same subscript: dependence possible
    assert gcd_test(AffineSubscript("i", 1, 0), AffineSubscript("i", 1, 0))
    # constants: depends on equality
    assert gcd_test(AffineSubscript("i", 0, 5), AffineSubscript("i", 0, 5))
    assert not gcd_test(AffineSubscript("i", 0, 5), AffineSubscript("i", 0, 6))


def test_paper_loop_store_is_iteration_independent():
    cfg, loop = loop_and_cfg(PAPER_LOOP)
    (store,) = [
        n.id
        for n in cfg.nodes.values()
        if n.kind is NodeKind.ASSIGN and "x" in n.stores()
    ]
    assert store_is_iteration_independent(cfg, loop, store)


def test_constant_subscript_store_not_independent():
    src = """
    array a[8];
    i := 0;
    s: i := i + 1;
       a[3] := i;
       if i < 10 then goto s;
    """
    cfg, loop = loop_and_cfg(src)
    (store,) = [
        n.id
        for n in cfg.nodes.values()
        if n.kind is NodeKind.ASSIGN and "a" in n.stores()
    ]
    assert not store_is_iteration_independent(cfg, loop, store)


def test_store_with_read_in_loop_not_independent():
    src = """
    array a[16];
    i := 0;
    s: i := i + 1;
       a[i] := a[i - 1] + 1;
       if i < 10 then goto s;
    """
    cfg, loop = loop_and_cfg(src)
    (store,) = [
        n.id
        for n in cfg.nodes.values()
        if n.kind is NodeKind.ASSIGN and "a" in n.stores()
    ]
    assert not store_is_iteration_independent(cfg, loop, store)


def test_two_stores_to_same_array_not_independent():
    src = """
    array a[32];
    i := 0;
    s: i := i + 1;
       a[i] := 1;
       a[i + 16] := 2;
       if i < 10 then goto s;
    """
    cfg, loop = loop_and_cfg(src)
    stores = [
        n.id
        for n in cfg.nodes.values()
        if n.kind is NodeKind.ASSIGN and "a" in n.stores()
    ]
    for s in stores:
        assert not store_is_iteration_independent(cfg, loop, s)


def test_array_references_in_loop():
    cfg, loop = loop_and_cfg(PAPER_LOOP)
    stores, loads = array_references_in_loop(cfg, loop, "x")
    assert len(stores) == 1
    assert loads == []


def test_write_once_detection():
    cfg, _ = loop_and_cfg(PAPER_LOOP)
    loops = find_loops(cfg)
    assert array_is_write_once(cfg, loops, "x")


def test_write_once_rejected_with_outside_store():
    src = PAPER_LOOP + "x[0] := 99;"
    cfg = build_cfg(parse(src))
    loops = find_loops(cfg)
    assert not array_is_write_once(cfg, loops, "x")


def test_unwritten_array_is_write_once():
    src = "array z[4]; q := z[0];"
    cfg = build_cfg(parse(src))
    assert array_is_write_once(cfg, [], "z")
