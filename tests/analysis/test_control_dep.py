"""Tests for control dependence and CD+ (Definitions 4-5, Theorem 1)."""

from repro.analysis import (
    between_brute_force,
    cd_plus,
    cd_plus_of_set,
    control_dependence,
    control_dependence_directed,
)
from repro.analysis.control_dep import needs_switch_brute_force
from repro.analysis.dominance import postdominator_tree
from repro.cfg import NodeKind, build_cfg
from repro.lang import parse

RUNNING_EXAMPLE = """
x := 0;
l: y := x + 1;
   x := x + 1;
   if x < 5 then goto l;
"""

DIAMOND = "if c == 0 then { y := 1; } else { y := 2; } z := y;"

NESTED_IF = """
if a == 0 then {
  if b == 0 then { x := 1; }
  y := 2;
}
z := 3;
"""


def forks(cfg):
    return [n.id for n in cfg.nodes.values() if n.kind is NodeKind.FORK]


def assigns(cfg, var):
    return [
        n.id
        for n in cfg.nodes.values()
        if n.kind is NodeKind.ASSIGN and n.stores() == {var}
    ]


def test_diamond_branches_depend_on_fork():
    cfg = build_cfg(parse(DIAMOND))
    cd = control_dependence(cfg)
    (fork,) = forks(cfg)
    for n in assigns(cfg, "y"):
        assert cd[n] == {fork}
    (z,) = assigns(cfg, "z")
    # z executes unconditionally: control dependent only on start
    assert cd[z] == {cfg.entry}


def test_directed_control_dependence_directions():
    cfg = build_cfg(parse(DIAMOND))
    cdd = control_dependence_directed(cfg)
    (fork,) = forks(cfg)
    dirs = set()
    for n in assigns(cfg, "y"):
        (pair,) = cdd[n]
        assert pair[0] == fork
        dirs.add(pair[1])
    assert dirs == {True, False}


def test_loop_body_depends_on_loop_fork():
    cfg = build_cfg(parse(RUNNING_EXAMPLE))
    cd = control_dependence(cfg)
    (fork,) = forks(cfg)
    join = next(n.id for n in cfg.nodes.values() if n.kind is NodeKind.JOIN)
    # classic: loop body (including the fork itself) is control dependent on
    # the loop-exit fork
    assert fork in cd[join]
    assert fork in cd[fork]
    # in-loop assigns depend on the fork; the initial x := 0 does not
    x0, x1 = assigns(cfg, "x")
    (y,) = assigns(cfg, "y")
    assert fork not in cd[x0]
    assert fork in cd[x1]
    assert fork in cd[y]


def test_nested_if_iterated_control_dependence():
    cfg = build_cfg(parse(NESTED_IF))
    cd = control_dependence(cfg)
    (x,) = assigns(cfg, "x")
    # x depends directly on the inner fork only
    inner_forks = cd[x] - {cfg.entry}
    assert len(inner_forks) == 1
    # CD+ pulls in the outer fork too
    plus = cd_plus_of_set(cfg, {x})
    outer_and_inner = plus - {cfg.entry}
    assert len(outer_and_inner) == 2


def test_cd_plus_contains_cd():
    cfg = build_cfg(parse(NESTED_IF))
    cd = control_dependence(cfg)
    plus = cd_plus(cfg)
    for n in cfg.nodes:
        assert cd[n] <= plus[n]


def test_theorem_1_on_corpus():
    """F ∈ CD+(N)  <=>  N is between F and ipostdom(F) (Theorem 1)."""
    sources = [RUNNING_EXAMPLE, DIAMOND, NESTED_IF]
    sources.append(
        """
        a := 1;
        l1: a := a + 1;
        if a % 3 == 0 then goto l2;
        b := b + 1;
        if b < 10 then goto l1;
        l2: c := 1;
        if c < a then goto l1;
        d := 2;
        """
    )
    for src in sources:
        cfg = build_cfg(parse(src))
        pdom = postdominator_tree(cfg)
        plus = cd_plus(cfg)
        for f in cfg.nodes:
            for n in cfg.nodes:
                between = between_brute_force(cfg, f, n, pdom)
                assert (f in plus[n]) == between, (src, f, n)


def test_needs_switch_brute_force_figure_9():
    """Figure 9: x is not referenced inside the conditional, so the fork does
    not need a switch for access_x but does for access_y."""
    src = """
    x := x + 1;
    if w == 0 then { y := 1; } else { y := 2; }
    x := 0;
    """
    cfg = build_cfg(parse(src))
    (fork,) = forks(cfg)
    assert not needs_switch_brute_force(cfg, fork, "x")
    assert needs_switch_brute_force(cfg, fork, "y")
    assert needs_switch_brute_force(cfg, fork, "w") is False  # w only read before


def test_start_needs_switch_for_everything_referenced():
    """Every referencing node is between start and end (the convention edge),
    so start formally needs a switch for every variable; the translator
    special-cases start (tokens always enter the program)."""
    cfg = build_cfg(parse(DIAMOND))
    for v in ("c", "y", "z"):
        assert needs_switch_brute_force(cfg, cfg.entry, v)


def test_empty_cd_for_start():
    cfg = build_cfg(parse(DIAMOND))
    cd = control_dependence(cfg)
    assert cd[cfg.entry] == set()
