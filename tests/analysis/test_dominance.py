"""Tests for dominator/postdominator trees and dominance frontiers."""

import pytest

from repro.analysis import dominator_tree, postdominator_tree
from repro.analysis.dominance import dominance_frontier
from repro.cfg import NodeKind, build_cfg
from repro.lang import parse

RUNNING_EXAMPLE = """
x := 0;
l: y := x + 1;
   x := x + 1;
   if x < 5 then goto l;
"""

DIAMOND = "if c == 0 then { y := 1; } else { y := 2; } z := y;"


def find(cfg, kind, pred=None):
    for n in cfg.nodes.values():
        if n.kind is kind and (pred is None or pred(n)):
            return n
    raise LookupError


def test_dominators_linear_chain():
    cfg = build_cfg(parse("a := 1; b := 2; c := 3;"))
    dom = dominator_tree(cfg)
    assigns = sorted(
        n.id for n in cfg.nodes.values() if n.kind is NodeKind.ASSIGN
    )
    a, b, c = assigns
    assert dom.idom[a] == cfg.entry
    assert dom.idom[b] == a
    assert dom.idom[c] == b
    assert dom.idom[cfg.entry] is None


def test_dominator_of_exit_in_diamond():
    cfg = build_cfg(parse(DIAMOND))
    dom = dominator_tree(cfg)
    join = find(cfg, NodeKind.JOIN)
    fork = find(cfg, NodeKind.FORK)
    assert dom.idom[join.id] == fork.id
    assert dom.dominates(fork.id, join.id)
    y1 = [
        n
        for n in cfg.nodes.values()
        if n.kind is NodeKind.ASSIGN and n.stores() == {"y"}
    ]
    for n in y1:
        assert dom.idom[n.id] == fork.id
        assert not dom.dominates(n.id, join.id)


def test_postdominators_diamond():
    cfg = build_cfg(parse(DIAMOND))
    pdom = postdominator_tree(cfg)
    join = find(cfg, NodeKind.JOIN)
    fork = find(cfg, NodeKind.FORK)
    assert pdom.idom[fork.id] == join.id
    # both branch assignments are immediately postdominated by the join
    for n in cfg.nodes.values():
        if n.kind is NodeKind.ASSIGN and n.stores() == {"y"}:
            assert pdom.idom[n.id] == join.id


def test_postdominator_of_start_is_end_by_convention():
    """The start->end convention edge makes end the only strict
    postdominator of start."""
    cfg = build_cfg(parse("a := 1; b := 2;"))
    pdom = postdominator_tree(cfg)
    assert pdom.idom[cfg.entry] == cfg.exit


def test_loop_postdominators():
    cfg = build_cfg(parse(RUNNING_EXAMPLE))
    pdom = postdominator_tree(cfg)
    fork = find(cfg, NodeKind.FORK)
    # the fork's immediate postdominator is end (False edge exits)
    assert pdom.idom[fork.id] == cfg.exit
    join = find(cfg, NodeKind.JOIN)
    # everything in the loop body is postdominated by the fork
    assert pdom.dominates(fork.id, join.id)


def test_dominates_is_reflexive_and_antisymmetric():
    cfg = build_cfg(parse(RUNNING_EXAMPLE))
    dom = dominator_tree(cfg)
    for n in cfg.nodes:
        assert dom.dominates(n, n)
    for a in cfg.nodes:
        for b in cfg.nodes:
            if a != b and dom.dominates(a, b):
                assert not dom.dominates(b, a)


def test_dominance_frontier_diamond():
    cfg = build_cfg(parse(DIAMOND))
    dom = dominator_tree(cfg)
    df = dominance_frontier(cfg, dom)
    join = find(cfg, NodeKind.JOIN)
    branch_assigns = [
        n.id
        for n in cfg.nodes.values()
        if n.kind is NodeKind.ASSIGN and n.stores() == {"y"}
    ]
    for b in branch_assigns:
        assert df[b] == {join.id}
    fork = find(cfg, NodeKind.FORK)
    assert join.id not in df[join.id]
    assert df[fork.id] == {cfg.exit} or df[fork.id] == set()


def test_dominance_frontier_loop_header():
    cfg = build_cfg(parse(RUNNING_EXAMPLE))
    dom = dominator_tree(cfg)
    df = dominance_frontier(cfg, dom)
    join = find(cfg, NodeKind.JOIN)
    # the loop header is in its own dominance frontier (classic property)
    assert join.id in df[join.id]


def test_brute_force_agreement_dominators():
    """Compare against a naive all-paths dominator computation."""
    src = """
    a := 1;
    if a < 2 then goto l1;
    b := 2;
    l1: c := 3;
    l2: c := c + 1;
    if c < 9 then goto l2;
    d := 4;
    """
    cfg = build_cfg(parse(src))
    dom = dominator_tree(cfg)

    # brute force: dominators via fixpoint over full sets
    nodes = set(cfg.nodes)
    doms = {n: set(nodes) for n in nodes}
    doms[cfg.entry] = {cfg.entry}
    changed = True
    while changed:
        changed = False
        for n in nodes - {cfg.entry}:
            preds = cfg.pred_ids(n)
            new = set.intersection(*(doms[p] for p in preds)) | {n}
            if new != doms[n]:
                doms[n] = new
                changed = True
    for n in nodes:
        for d in nodes:
            assert dom.dominates(d, n) == (d in doms[n]), (d, n)


def test_walk_up_terminates_at_root():
    cfg = build_cfg(parse(DIAMOND))
    dom = dominator_tree(cfg)
    for n in cfg.nodes:
        chain = list(dom.walk_up(n))
        assert chain[0] == n
        assert chain[-1] == cfg.entry
